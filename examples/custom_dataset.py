"""Bring your own data: CSV import, custom schema graph, outlier questions.

Shows the full adoption path a downstream user follows:

1. write relations to CSV and load them back (the CSV round-trip is how
   you would import an external dataset);
2. declare foreign keys plus *extra* join conditions the FKs don't cover
   (paper §2.2: the schema graph accepts user-provided conditions);
3. ask a single-point OutlierQuestion ("why is this tuple surprising?")
   as well as a two-point comparison;
4. compare against the provenance-only and CAPE baselines.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro import (
    CajadeConfig,
    CajadeSession,
    ComparisonQuestion,
    Database,
    OutlierQuestion,
    SchemaGraph,
)
from repro.baselines import CapeExplainer, ProvenanceOnlyExplainer
from repro.db import ColumnType, TableSchema
from repro.db.csvio import load_database, save_database


def build_sales_database() -> Database:
    """A small retail schema: orders reference stores and products."""
    db = Database("sales")
    db.create_table(
        TableSchema.build(
            "store",
            {
                "store_id": ColumnType.INT,
                "city": ColumnType.TEXT,
                "size_sqm": ColumnType.INT,
            },
            primary_key=("store_id",),
        ),
        [(0, "NYC", 800), (1, "NYC", 300), (2, "LA", 500), (3, "SF", 450)],
    )
    db.create_table(
        TableSchema.build(
            "product",
            {
                "product_id": ColumnType.INT,
                "category": ColumnType.TEXT,
                "price": ColumnType.FLOAT,
            },
            primary_key=("product_id",),
        ),
        [
            (0, "espresso", 3.0),
            (1, "espresso", 3.5),
            (2, "pastry", 4.5),
            (3, "beans", 14.0),
        ],
    )
    rows = []
    oid = 0
    # Store 0 sells far more espresso in Q4; store 2 is flat.
    for quarter in ("Q3", "Q4"):
        for store_id in range(4):
            base = 6
            if store_id == 0 and quarter == "Q4":
                base = 18
            for i in range(base):
                product_id = 0 if (store_id == 0 and quarter == "Q4") else i % 4
                rows.append((oid, store_id, product_id, quarter, 1 + i % 3))
                oid += 1
    db.create_table(
        TableSchema.build(
            "orders",
            {
                "order_id": ColumnType.INT,
                "store_id": ColumnType.INT,
                "product_id": ColumnType.INT,
                "quarter": ColumnType.TEXT,
                "quantity": ColumnType.INT,
            },
            primary_key=("order_id",),
        ),
        rows,
    )
    db.add_foreign_key("orders", ("store_id",), "store", ("store_id",))
    db.add_foreign_key("orders", ("product_id",), "product", ("product_id",))
    return db


def main() -> None:
    db = build_sales_database()

    # -- CSV round trip (external-data import path) ---------------------
    with tempfile.TemporaryDirectory() as tmp:
        save_database(db, Path(tmp) / "sales")
        db = load_database(Path(tmp) / "sales")
    print(f"loaded from CSV: {db}")

    # -- schema graph: FK edges plus a hand-added condition --------------
    schema_graph = SchemaGraph.from_database(db)
    # Also allow joining stores to stores in the same city (a join the
    # FKs cannot express) — context like "how do sibling stores do?".
    schema_graph.add_edge("store", "store", [[("city", "city")]])

    sql = (
        "SELECT s.store_id, quarter, COUNT(*) AS num_orders "
        "FROM orders o, store s WHERE o.store_id = s.store_id "
        "GROUP BY s.store_id, quarter"
    )
    print("\nquery result:")
    for row in db.sql(sql).sort_by(["store_id", "quarter"]).to_dicts():
        print(" ", row)

    config = CajadeConfig(
        max_join_edges=2,
        top_k=5,
        f1_sample_rate=1.0,
        lca_sample_rate=1.0,
        num_selected_attrs=4,
    )
    session = CajadeSession(db, schema_graph, config)

    # -- two-point comparison -------------------------------------------
    question = ComparisonQuestion(
        {"store_id": 0, "quarter": "Q4"}, {"store_id": 0, "quarter": "Q3"}
    )
    result = session.explain(sql, question)
    print("\nwhy did store 0 sell more in Q4 than Q3?")
    for rank, e in enumerate(result.top(3), start=1):
        print(f"  {rank}. {e.describe()}")

    # -- single-point outlier question -----------------------------------
    outlier = OutlierQuestion({"store_id": 0, "quarter": "Q4"})
    result = session.explain(sql, outlier)
    print("\nwhy is (store 0, Q4) different from everything else?")
    for rank, e in enumerate(result.top(3), start=1):
        print(f"  {rank}. {e.describe()}")

    # -- baselines ---------------------------------------------------------
    prov = ProvenanceOnlyExplainer(db, config).explain(sql, question)
    print("\nprovenance-only top explanation:")
    print(f"  {prov.explanations[0].describe()}")

    per_store = db.sql(
        "SELECT s.store_id, COUNT(*) AS num_orders FROM orders o, store s "
        "WHERE o.store_id = s.store_id GROUP BY s.store_id"
    )
    cape = CapeExplainer(per_store, "store_id", "num_orders")
    out = cape.explain(0, "high")
    print("\nCAPE counterbalances for 'why is store 0's volume high?':")
    for c in out.counterbalances:
        print(f"  {c.describe()}")


if __name__ == "__main__":
    main()
