"""NBA case study (paper §6.1, Table 4).

Generates the synthetic NBA database, runs the five workload queries
(Qnba1..Qnba5) with their user questions, and prints the top-3
explanations for each — the reproduction of Table 4.

Run:  python examples/nba_case_study.py [scale]
"""

import sys
import time

from repro import CajadeConfig, CajadeSession
from repro.datasets import load_nba, nba_queries


def main(scale: float = 0.25) -> None:
    print(f"generating NBA database at scale {scale} ...")
    db, schema_graph = load_nba(scale=scale)
    print(f"  {db}")

    config = CajadeConfig(
        max_join_edges=2,
        top_k=10,
        f1_sample_rate=0.5,
        num_selected_attrs=4,
        seed=3,
    )
    session = CajadeSession(db, schema_graph, config)

    for workload in nba_queries():
        print()
        print(f"=== {workload.name}: {workload.description} ===")
        print(f"question: {workload.question.describe()}")
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question)
        elapsed = time.perf_counter() - start
        for rank, explanation in enumerate(result.top(3), start=1):
            print(f"  {rank}. {explanation.describe()}")
        print(
            f"  ({elapsed:.1f}s, {result.join_graphs_mined} join graphs "
            f"mined, {result.enumeration.generated} generated)"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
