"""Tour of the implemented §8 extensions.

1. Join discovery: profile a database for inclusion-dependency join
   candidates and widen the schema graph with them.
2. The functional-dependency guard: suppress degenerate explanations on
   attributes that merely alias the group key (the paper's Qmimic5
   ethnicity observation).
3. Natural-language and JSON rendering of explanations.
4. EXPLAIN-style plans with the cost estimates that drive λqcost.

Run:  python examples/extensions_tour.py
"""

from repro import CajadeConfig, CajadeSession
from repro.core.join_discovery import (
    augment_schema_graph,
    discover_join_candidates,
)
from repro.datasets import load_mimic, query_by_name
from repro.db import explain_plan


def main() -> None:
    db, schema_graph = load_mimic(scale=0.1)
    workload = query_by_name("Qmimic5")

    # -- 1. join discovery ------------------------------------------------
    candidates = discover_join_candidates(db, min_inclusion=0.95)
    print(f"discovered {len(candidates)} undeclared join candidates, e.g.:")
    for candidate in candidates[:5]:
        print("  ", candidate.describe())
    added = augment_schema_graph(schema_graph, candidates, limit=5)
    print(f"added {added} conditions to the schema graph\n")

    # -- 2. FD guard on the Qmimic5 ethnicity trap -------------------------
    for guard in (False, True):
        config = CajadeConfig(
            max_join_edges=2,
            top_k=5,
            f1_sample_rate=0.5,
            num_selected_attrs=4,
            exclude_group_determined=guard,
            seed=3,
        )
        session = CajadeSession(db, schema_graph, config)
        result = session.explain(workload.sql, workload.question)
        label = "with FD guard" if guard else "without FD guard"
        print(f"Qmimic5 top explanations ({label}):")
        for rank, explanation in enumerate(result.top(3), start=1):
            print(f"  {rank}. {explanation.describe()}")
        degenerate = [
            e
            for e in result.explanations
            for a in e.pattern.attributes
            if a.split(".")[-1] == "ethnicity"
        ]
        print(f"  → ethnicity-aliasing explanations: {len(degenerate)}\n")

    # -- 3. sentences + JSON ------------------------------------------------
    config = CajadeConfig(
        max_join_edges=1, top_k=3, f1_sample_rate=1.0, num_selected_attrs=4
    )
    result = CajadeSession(db, schema_graph, config).explain(
        workload.sql, workload.question
    )
    print("as sentences:")
    for explanation in result.explanations:
        print("  -", explanation.to_sentence())
    print("\nas JSON (first explanation):")
    import json

    print(json.dumps(result.explanations[0].to_dict(), indent=2, default=str)[:600])

    # -- 4. EXPLAIN ---------------------------------------------------------
    print("\nquery plan with cost estimates (λqcost uses the same model):")
    print(explain_plan(workload.sql, db).render())


if __name__ == "__main__":
    main()
