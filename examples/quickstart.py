"""Quickstart: explain a query answer with CaJaDE in ~40 lines.

Builds a tiny two-season NBA-style database, asks the paper's Example 1
question ("why did GSW win more games in 2015-16 than in 2012-13?") and
prints the top explanations, including the star-player signal mined from
a table the query never touched.

Run:  python examples/quickstart.py
"""

from repro import (
    CajadeConfig,
    CajadeSession,
    ComparisonQuestion,
    Database,
    SchemaGraph,
)
from repro.db import ColumnType, TableSchema


def build_database() -> Database:
    db = Database("quickstart")
    db.create_table(
        TableSchema.build(
            "game",
            {
                "year": ColumnType.INT,
                "gameno": ColumnType.INT,
                "home": ColumnType.TEXT,
                "away": ColumnType.TEXT,
                "winner": ColumnType.TEXT,
                "season": ColumnType.TEXT,
            },
            primary_key=("year", "gameno"),
        ),
        _games(),
    )
    db.create_table(
        TableSchema.build(
            "player",
            {"player_id": ColumnType.INT, "player_name": ColumnType.TEXT},
            primary_key=("player_id",),
        ),
        [(0, "Curry"), (1, "Thompson"), (2, "Green")],
    )
    db.create_table(
        TableSchema.build(
            "player_game",
            {
                "player_id": ColumnType.INT,
                "year": ColumnType.INT,
                "gameno": ColumnType.INT,
                "pts": ColumnType.INT,
            },
            primary_key=("player_id", "year", "gameno"),
        ),
        _player_games(),
    )
    # Foreign keys seed the schema graph: they declare which joins CaJaDE
    # may use to pull in context.
    db.add_foreign_key("player_game", ("year", "gameno"), "game", ("year", "gameno"))
    db.add_foreign_key("player_game", ("player_id",), "player", ("player_id",))
    return db


def _games():
    rows = []
    winners = {
        ("2012-13", 2012): ["GSW", "GSW", "GSW", "LAL", "LAL", "LAL", "MIA", "LAL"],
        ("2015-16", 2015): ["GSW", "GSW", "GSW", "GSW", "GSW", "GSW", "LAL", "MIA"],
    }
    for (season, year), names in winners.items():
        for g, winner in enumerate(names):
            home = "GSW" if g % 2 == 0 else "LAL"
            away = "MIA" if home == "GSW" else "GSW"
            rows.append((year, g + 1, home, away, winner, season))
    return rows


def _player_games():
    rows = []
    for year, season in ((2012, "2012-13"), (2015, "2015-16")):
        for gameno in range(1, 9):
            # Curry's scoring jumps in 2015-16 — the signal to discover.
            rows.append((0, year, gameno, 31 if season == "2015-16" else 19))
            rows.append((1, year, gameno, 18))
            rows.append((2, year, gameno, 9 if season == "2015-16" else 4))
    return rows


def main() -> None:
    db = build_database()
    schema_graph = SchemaGraph.from_database(db)
    config = CajadeConfig(
        max_join_edges=2,
        top_k=5,
        f1_sample_rate=1.0,   # exact scores — the data is tiny
        lca_sample_rate=1.0,
        num_selected_attrs=4,
    )
    session = CajadeSession(db, schema_graph, config)

    sql = (
        "SELECT winner AS team, season, COUNT(*) AS win "
        "FROM game g WHERE winner = 'GSW' GROUP BY winner, season"
    )
    print("query result:")
    for row in db.sql(sql).to_dicts():
        print(" ", row)

    question = ComparisonQuestion(
        {"season": "2015-16"}, {"season": "2012-13"}
    )
    result = session.explain(sql, question)
    print()
    print(result.describe())
    print()
    print("top explanation in full:")
    print(result.explanations[0].describe_full())


if __name__ == "__main__":
    main()
