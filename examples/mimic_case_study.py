"""MIMIC case study (paper §6.2, Table 6).

Generates the synthetic MIMIC database, runs Qmimic1..Qmimic5 with their
user questions, and prints the top-3 explanations for each — the
reproduction of Table 6.

Run:  python examples/mimic_case_study.py [scale]
"""

import sys
import time

from repro import CajadeConfig, CajadeSession
from repro.datasets import load_mimic, mimic_queries


def main(scale: float = 0.25) -> None:
    print(f"generating MIMIC database at scale {scale} ...")
    db, schema_graph = load_mimic(scale=scale)
    print(f"  {db}")

    # Show the Qmimic2/4 query result the questions are about.
    rates = db.sql(
        "SELECT insurance, 1.0 * SUM(hospital_expire_flag) / COUNT(*) "
        "AS death_rate FROM admissions GROUP BY insurance"
    )
    print("death rate by insurance:")
    for row in rates.to_dicts():
        print(f"  {row['insurance']:<12s} {row['death_rate']:.3f}")

    config = CajadeConfig(
        max_join_edges=2,
        top_k=10,
        f1_sample_rate=0.5,
        num_selected_attrs=4,
        seed=3,
    )
    session = CajadeSession(db, schema_graph, config)

    for workload in mimic_queries():
        print()
        print(f"=== {workload.name}: {workload.description} ===")
        print(f"question: {workload.question.describe()}")
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question)
        elapsed = time.perf_counter() - start
        for rank, explanation in enumerate(result.top(3), start=1):
            print(f"  {rank}. {explanation.describe()}")
        print(
            f"  ({elapsed:.1f}s, {result.join_graphs_mined} join graphs "
            f"mined)"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
