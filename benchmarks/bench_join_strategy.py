"""Benchmark: join strategy, hash core vs sorted-window searchsorted.

Runs the user-study workload (UQ1) over the paper's Figure-8 join-graph
grid — λ#edges ∈ {1, 2}, where the number of enumerated join graphs
(and therefore FK join steps) explodes — and compares the pluggable
``join_strategy`` modes end to end:

- *hash*: every join step runs the shared ``join_row_indices``
  hash-build core; the trie caches index-vector frames;
- *sorted-window*: FK joins become two ``np.searchsorted`` calls
  against each dimension column's process-shared sort permutation, and
  the trie caches compact :class:`~repro.db.join_strategy.WindowEntry`
  records (probe rows + int32 ``(lo, hi)`` windows + a charge-once
  permutation handle) instead of expanded index vectors;
- *sorted-window workers=N*: the same, mined with a worker pool.

Every mode's ranked explanations must be byte-identical at every grid
point (a strategy changes how join rows are *found*, never which rows
they are); the run fails otherwise.  Both smoke and full runs also
assert the sorted-window trie's median entry bytes are strictly smaller
than the hash run's at the unchanged ``apt_cache_mb`` budget, and that
the sorted-window *Materialize APTs* box does not regress below the
``--min-speedup`` floor (default 1.0x) at the largest grid point.
Machine-readable results go to
``benchmarks/results/BENCH_join_strategy.json`` (the smoke payload
carries ``"smoke": true`` — the committed copy of the file must come
from a full run; regenerate it with no flags before committing it).

Usage:
    PYTHONPATH=src python benchmarks/bench_join_strategy.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import rusage_peak_bytes

from repro.api import CajadeSession
from repro.core.config import CajadeConfig
from repro.core.timing import MATERIALIZE_APTS, StepTimer

RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_join_strategy.json"
)


def ranked_payload(result) -> str:
    """Everything the user sees, minus cache counters (which legitimately
    differ between execution strategies)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def run_mode(db, schema_graph, workload, config, repeats):
    """Fresh-session runs of one mode at one grid point.

    Each repeat is a cold session (cold trie, cold join memo); the
    process-shared sort permutations persist across sessions by design —
    that once-per-process amortization is part of what is being
    measured.  Returns per-repeat timings, the ranked payload, and the
    last session's trie/strategy counters.
    """
    mat_seconds = []
    totals = []
    payload = None
    counters = {}
    for _ in range(repeats):
        timer = StepTimer()
        session = CajadeSession(db, schema_graph, config)
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question, timer=timer)
        totals.append(time.perf_counter() - start)
        mat_seconds.append(timer.seconds(MATERIALIZE_APTS))
        payload = ranked_payload(result)
        stats = session.engine_stats(workload.sql)
        assert stats is not None and stats.cache is not None
        counters = {
            "entries": stats.cache.entries,
            "median_entry_bytes": stats.cache.median_entry_bytes,
            "current_bytes": stats.cache.current_bytes,
            "evictions": stats.cache.evictions,
            "hit_rate": round(stats.cache.hit_rate, 4),
            "steps_reused": stats.steps_reused,
            "steps_computed": stats.steps_computed,
            "windows_built": stats.windows_built,
            "searchsorted_probes": stats.searchsorted_probes,
            "permutation_reuses": stats.permutation_reuses,
        }
    return {
        "materialize_seconds": [round(s, 4) for s in mat_seconds],
        "median_materialize_seconds": round(statistics.median(mat_seconds), 4),
        "median_total_seconds": round(statistics.median(totals), 4),
        "trie": counters,
        "_payload": payload,
    }


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, user_study_query

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    workload = user_study_query()
    base = CajadeConfig(
        num_selected_attrs=3,
        top_k=10,
        seed=2,
        apt_cache_mb=args.apt_cache_mb,
    )
    modes = {
        "hash": {"join_strategy": "hash"},
        "sorted-window": {"join_strategy": "sorted-window"},
        f"sorted-window workers={args.workers}": {
            "join_strategy": "sorted-window",
            "workers": args.workers,
        },
    }
    print(
        f"{workload.name}: Fig-8 join-graph grid, λ#edges={args.edges}, "
        f"apt_cache_mb={args.apt_cache_mb:g}, "
        f"{args.repeats} repeat(s) per mode"
    )

    grid: dict[str, dict[str, dict]] = {}
    failures = []
    for edges in args.edges:
        point = f"edges={edges}"
        grid[point] = {}
        for label, overrides in modes.items():
            config = base.with_overrides(max_join_edges=edges, **overrides)
            record = run_mode(db, schema_graph, workload, config, args.repeats)
            grid[point][label] = record
            shown = " ".join(
                f"{s:.2f}" for s in record["materialize_seconds"]
            )
            print(
                f"{point} {label:>26s}: Materialize APTs {shown}s "
                f"(median {record['median_materialize_seconds']:.2f}s, "
                f"total median {record['median_total_seconds']:.2f}s)"
            )
            print(f"{'':>34s}  trie {record['trie']}")
        reference = grid[point]["hash"]["_payload"]
        for label, record in grid[point].items():
            if record["_payload"] != reference:
                failures.append(
                    f"{point}: {label} explanations differ from hash"
                )

    # Summary at the largest grid point (the paper's interesting one).
    top = f"edges={max(args.edges)}"
    hash_record = grid[top]["hash"]
    window_record = grid[top]["sorted-window"]
    median_hash = hash_record["median_materialize_seconds"]
    median_window = window_record["median_materialize_seconds"]
    speedup = (
        median_hash / median_window if median_window > 0 else float("inf")
    )
    print(
        f"{top} Materialize APTs: {median_hash:.2f}s (hash) -> "
        f"{median_window:.2f}s (sorted-window) = {speedup:.2f}x"
    )
    hash_entry = hash_record["trie"]["median_entry_bytes"]
    window_entry = window_record["trie"]["median_entry_bytes"]
    entry_shrink = hash_entry / window_entry if window_entry else float("inf")
    print(
        f"{top} trie median entry: {hash_entry} B -> {window_entry} B "
        f"= {entry_shrink:.2f}x smaller"
    )

    report = {
        "benchmark": "bench_join_strategy",
        "workload": f"{workload.name} (Fig-8 join-graph grid)",
        "scale": args.scale,
        "edge_grid": args.edges,
        "repeats": args.repeats,
        "workers": args.workers,
        "apt_cache_mb": args.apt_cache_mb,
        "smoke": args.smoke,
        "step_measured": MATERIALIZE_APTS,
        "grid": {
            point: {
                label: {k: v for k, v in record.items() if k != "_payload"}
                for label, record in records.items()
            }
            for point, records in grid.items()
        },
        "median_materialize_seconds_hash": median_hash,
        "median_materialize_seconds_sorted_window": median_window,
        "speedup": round(speedup, 2),
        "trie_median_entry_bytes_hash": hash_entry,
        "trie_median_entry_bytes_sorted_window": window_entry,
        "median_entry_shrink": round(entry_shrink, 2),
        "byte_identical": not failures,
        "peak_rss": {"ru_maxrss_bytes": rusage_peak_bytes()},
    }
    target = RESULTS_PATH
    if args.smoke and RESULTS_PATH.exists():
        try:
            committed = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            committed = {}
        if committed.get("smoke") is False:
            # Never clobber the committed full-run medians with smoke
            # numbers; smoke output goes to a sibling (gitignored) file.
            target = RESULTS_PATH.with_name("BENCH_join_strategy_smoke.json")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {target}")

    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print(
        "ranked explanations byte-identical across join strategies, "
        f"serial and workers={args.workers}, at every grid point"
    )
    if window_record["trie"]["entries"] and window_entry >= hash_entry:
        print(
            "FAIL: sorted-window trie entries are not smaller than hash "
            f"entries ({window_entry} vs {hash_entry} B)"
        )
        return 1
    if speedup < args.min_speedup:
        print(
            f"FAIL: sorted-window Materialize APTs {speedup:.2f}x below "
            f"the {args.min_speedup:g}x no-regression floor"
        )
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: small scale, edges grid {1}, fewer repeats "
             "(byte-identity, entry-shrink and the no-regression floor "
             "still enforced)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.25; smoke 0.04)")
    parser.add_argument("--edges", type=int, nargs="+", default=None,
                        help="λ#edges grid (default 1 2; smoke 1)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per mode per point (default 3; smoke 2)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--apt-cache-mb", type=float, default=256.0,
                        help="trie budget for all modes (default 256; the "
                             "entry-shrink assertion compares strategies "
                             "at this unchanged budget)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="no-regression floor for sorted-window vs "
                             "hash on the Materialize APTs box (default "
                             "1.0x)")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.04 if args.smoke else 0.25
    if args.edges is None:
        args.edges = [1] if args.smoke else [1, 2]
    if args.repeats is None:
        args.repeats = 2 if args.smoke else 3
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
