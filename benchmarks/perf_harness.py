"""Shared benchmark instrumentation: wall-clock + peak-RSS per step.

Every ``benchmarks/results/BENCH_*.json`` written after this harness
landed carries a ``"peak_rss"`` object so runs can be compared on
memory footprint, not just speed.  Two complementary readings:

- ``ru_maxrss`` — the kernel's high-water mark for the whole process
  (monotonic; a step's reading is "the peak so far", which is exactly
  the bound an operator cares about when sizing a box);
- ``VmRSS`` (Linux ``/proc/self/status``) — the *current* resident set,
  sampled before/after a step, so the per-step delta shows which step
  grew the footprint even after the global peak has been set.

Usage:
    meter = StepMeter()
    db = meter.measure("cold ingest", lambda: load_database(csv_dir))
    report["peak_rss"] = meter.report()
"""

from __future__ import annotations

import resource
import sys
import time
from typing import Any, Callable


def rusage_peak_bytes() -> int:
    """The process high-water resident set, in bytes (monotonic)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def current_rss_bytes() -> int:
    """Current resident set from /proc (falls back to the peak)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return rusage_peak_bytes()


class StepMeter:
    """Time + memory accounting for a sequence of named benchmark steps."""

    def __init__(self) -> None:
        self.steps: list[dict[str, Any]] = []

    def measure(self, name: str, fn: Callable[[], Any]) -> Any:
        before = current_rss_bytes()
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        after = current_rss_bytes()
        self.steps.append(
            {
                "step": name,
                "seconds": round(seconds, 4),
                "rss_before_bytes": before,
                "rss_after_bytes": after,
                "rss_delta_bytes": after - before,
                "ru_maxrss_bytes": rusage_peak_bytes(),
            }
        )
        return result

    def seconds(self, name: str) -> float:
        """Latest recorded wall-clock for ``name`` (KeyError if absent)."""
        for entry in reversed(self.steps):
            if entry["step"] == name:
                return entry["seconds"]
        raise KeyError(name)

    def report(self) -> dict[str, Any]:
        """The ``"peak_rss"`` payload for a BENCH_*.json report."""
        return {
            "ru_maxrss_bytes": rusage_peak_bytes(),
            "per_step": self.steps,
        }
