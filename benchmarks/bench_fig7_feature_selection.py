"""FIG7 — feature-selection runtime breakdown (paper Figure 7 / 7a).

Columns: λF1-samp ∈ {0.1, 0.3, 1.0} with feature selection, plus the
'w/o feature sel.' arm.  Rows: the paper's pipeline steps.  The paper's
shape to reproduce: F-score Calc. grows with the sample rate and explodes
without feature selection; Feature Selection itself costs a near-constant
amount.
"""

import pytest

from repro.core import CajadeConfig
from repro.datasets import query_by_name, user_study_query
from repro.experiments import feature_selection_experiment

from conftest import format_table

F1_RATES = [0.1, 0.3, 1.0]
BASE = dict(max_join_edges=2, top_k=10, num_selected_attrs=3, seed=2)


def _run(db, sg, workload):
    return feature_selection_experiment(
        db, sg, workload, F1_RATES, CajadeConfig(**BASE)
    )


def _render(table) -> str:
    steps = sorted({s for col in table.values() for s in col})
    headers = ["Step"] + list(table)
    rows = []
    for step in steps:
        rows.append(
            [step]
            + [f"{table[col].get(step, 0.0):.2f}" for col in table]
        )
    rows.append(
        ["total"] + [f"{sum(table[col].values()):.2f}" for col in table]
    )
    return format_table(headers, rows)


@pytest.mark.benchmark(group="fig7")
def test_fig7_nba_feature_selection(benchmark, nba, report):
    db, sg = nba
    table = benchmark.pedantic(
        lambda: _run(db, sg, user_study_query()), rounds=1, iterations=1
    )
    report("fig7_nba_feature_selection", _render(table))
    naive = table["w/o feature sel."]
    cheapest = table[f"fs λF1={F1_RATES[0]:g}"]
    # Paper shape: the naive arm's F-score calculation dominates.
    assert naive["F-score Calc."] > cheapest["F-score Calc."]


@pytest.mark.benchmark(group="fig7")
def test_fig7_mimic_feature_selection(benchmark, mimic, report):
    db, sg = mimic
    table = benchmark.pedantic(
        lambda: _run(db, sg, query_by_name("Qmimic4")),
        rounds=1,
        iterations=1,
    )
    report("fig7_mimic_feature_selection", _render(table))
    assert all("F-score Calc." in col for col in table.values())
