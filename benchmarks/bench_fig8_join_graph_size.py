"""FIG8 — runtime vs λ#edges × λF1-samp (paper Figure 8).

The paper's shape: runtime increases dramatically in λ#edges (the number
of join graphs explodes), and F-score sampling saves up to ~50% for
λ#edges > 1.  λ#edges = 3 multiplies runtime by another ~40× (the paper's
NBA total was ~285s; ours is in the same range at comparable scale), so
the default grid stops at 2 edges; pass ``--nba-scale`` down and extend
EDGE_COUNTS to reproduce the full figure.
"""

import pytest

from repro.core import CajadeConfig
from repro.datasets import user_study_query
from repro.experiments import join_graph_size_experiment

from conftest import format_table

EDGE_COUNTS = [0, 1, 2]
F1_RATES = [0.1, 0.3, 1.0]
BASE = dict(top_k=10, num_selected_attrs=3, seed=2)


@pytest.mark.benchmark(group="fig8")
def test_fig8_runtime_grid(benchmark, nba, report):
    db, sg = nba
    grid = benchmark.pedantic(
        lambda: join_graph_size_experiment(
            db, sg, user_study_query(), EDGE_COUNTS, F1_RATES,
            CajadeConfig(**BASE),
        ),
        rounds=1,
        iterations=1,
    )
    headers = ["λ#edges"] + [f"λF1={r:g}" for r in F1_RATES]
    rows = [
        [edges] + [f"{grid[(edges, rate)]:.2f}s" for rate in F1_RATES]
        for edges in EDGE_COUNTS
    ]
    report("fig8_join_graph_size", format_table(headers, rows))

    # Paper shape 1: runtime grows steeply with λ#edges.
    for rate in F1_RATES:
        assert grid[(2, rate)] > grid[(0, rate)]
    # Paper shape 2: at the largest size, aggressive sampling is not
    # slower than exact computation (usually much faster).
    assert grid[(2, 0.1)] <= grid[(2, 1.0)] * 1.15
