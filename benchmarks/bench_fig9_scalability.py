"""FIG9 — scalability in database size (paper Figure 9a-9d).

Runs the UQ1 / Qmimic4 questions at increasing scale factors and prints
the per-step runtime breakdown tables (the paper's Figures 9c/9d).  The
shapes to reproduce: total runtime grows sublinearly-to-linearly with the
database (log-scale x-axis in the paper), and F-score calculation is the
dominant step at larger scales.
"""

import pytest

from repro.core import CajadeConfig
from repro.datasets import load_mimic, load_nba, query_by_name, user_study_query
from repro.experiments import scalability_experiment

from conftest import format_table

NBA_SCALES = [0.06, 0.12, 0.25]
MIMIC_SCALES = [0.05, 0.1, 0.2]
BASE = dict(max_join_edges=2, top_k=10, num_selected_attrs=3, seed=2)


def _render(series) -> str:
    steps = sorted({s for col in series.values() for s in col})
    headers = ["Step"] + [f"SF {s:g}" for s in series]
    rows = [
        [step] + [f"{series[s].get(step, 0.0):.2f}" for s in series]
        for step in steps
    ]
    return format_table(headers, rows)


@pytest.mark.benchmark(group="fig9")
def test_fig9_nba_scalability(benchmark, report):
    series = benchmark.pedantic(
        lambda: scalability_experiment(
            lambda s: load_nba(scale=s, seed=5),
            user_study_query(),
            NBA_SCALES,
            f1_rate=0.3,
            base_config=CajadeConfig(**BASE),
        ),
        rounds=1,
        iterations=1,
    )
    report("fig9_nba_scalability", _render(series))
    totals = [series[s]["total"] for s in NBA_SCALES]
    # Paper shape: runtime increases with database size...
    assert totals[-1] > totals[0]
    # ...but sublinearly w.r.t. the ~4x data growth (log-scale plot).
    assert totals[-1] < totals[0] * 16


@pytest.mark.benchmark(group="fig9")
def test_fig9_mimic_scalability(benchmark, report):
    series = benchmark.pedantic(
        lambda: scalability_experiment(
            lambda s: load_mimic(scale=s, seed=5),
            query_by_name("Qmimic4"),
            MIMIC_SCALES,
            f1_rate=0.3,
            base_config=CajadeConfig(**BASE),
        ),
        rounds=1,
        iterations=1,
    )
    report("fig9_mimic_scalability", _render(series))
    totals = [series[s]["total"] for s in MIMIC_SCALES]
    assert totals[-1] > totals[0] * 0.8


@pytest.mark.benchmark(group="fig9")
def test_fig9_sampling_beats_exact_at_scale(benchmark, report):
    """The paper's λF1-samp=0.1 vs 0.7 comparison at the largest size."""
    def run():
        db, sg = load_nba(scale=NBA_SCALES[-1], seed=5)
        from repro.experiments import explain_with_breakdown

        out = {}
        for rate in (0.1, 0.7):
            config = CajadeConfig(**BASE).with_overrides(f1_sample_rate=rate)
            _, breakdown = explain_with_breakdown(
                db, sg, user_study_query(), config
            )
            out[rate] = sum(breakdown.values())
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig9_sampling_vs_exact",
        format_table(
            ["λF1-samp", "total runtime"],
            [[f"{r:g}", f"{t:.2f}s"] for r, t in totals.items()],
        ),
    )
    assert totals[0.1] <= totals[0.7] * 1.15
