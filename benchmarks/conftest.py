"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures and writes
the same rows/series the paper reports to ``benchmarks/results/*.txt``
(absolute numbers differ from the paper's testbed; the shape is what is
reproduced — see EXPERIMENTS.md).

Scales are kept small so the whole suite finishes in minutes; pass
``--nba-scale`` / ``--mimic-scale`` to grow them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption("--nba-scale", type=float, default=0.12)
    parser.addoption("--mimic-scale", type=float, default=0.1)


@pytest.fixture(scope="session")
def nba(request):
    from repro.datasets import load_nba

    return load_nba(scale=request.config.getoption("--nba-scale"), seed=5)


@pytest.fixture(scope="session")
def mimic(request):
    from repro.datasets import load_mimic

    return load_mimic(scale=request.config.getoption("--mimic-scale"), seed=5)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, capsys):
    """Write a named result table to disk and echo it to the terminal."""

    def _report(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return _report


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(values):
        return "  ".join(str(v).ljust(w) for v, w in zip(values, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
