"""FIG11 + TAB10 — comparison with Explanation Tables (Figure 11,
Appendix A.1 Table 10).

Mines one fixed APT (PT – player_game_stats – player, as in the paper)
with both CaJaDE and ET at sample sizes {16, 64, 256, 512}.  The paper's
shape: ET is faster at tiny samples but its quadratic candidate
generation blows up with the sample size while CaJaDE stays flat
(~50× faster at 512).  Also prints ET's first patterns (Table 10).
"""

import numpy as np
import pytest

from repro.core import CajadeConfig, JoinConditionSpec, JoinGraph
from repro.baselines import ExplanationTables, discretize_numeric_columns
from repro.core.apt import materialize_apt
from repro.core.quality import QualityEvaluator
from repro.datasets import user_study_query
from repro.db import ProvenanceTable, parse_sql
from repro.experiments import et_comparison_experiment

from conftest import format_table

SAMPLE_SIZES = [16, 64, 256, 512]
BASE = dict(top_k=10, num_selected_attrs=3, seed=2)


def pgs_join_graph() -> JoinGraph:
    aliases = {"g": "game", "t": "team", "s": "season"}
    game_cond = JoinConditionSpec(
        (("game_date", "game_date"), ("home_id", "home_id"))
    )
    player_cond = JoinConditionSpec((("player_id", "player_id"),))
    return (
        JoinGraph.initial(aliases)
        .with_new_node(0, "player_game_stats", game_cond, "g")
        .with_new_node(1, "player", player_cond, None)
    )


@pytest.mark.benchmark(group="fig11")
def test_fig11_cajade_vs_et_runtime(benchmark, nba, report):
    db, _ = nba
    table = benchmark.pedantic(
        lambda: et_comparison_experiment(
            db, user_study_query(), pgs_join_graph(), SAMPLE_SIZES,
            CajadeConfig(**BASE),
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "fig11_et_comparison",
        format_table(
            ["sample size", "CaJaDE", "ET"],
            [
                [s, f"{table[s]['cajade']:.2f}s", f"{table[s]['et']:.2f}s"]
                for s in SAMPLE_SIZES
            ],
        ),
    )
    # Paper shape: ET's runtime grows much faster with the sample size;
    # at the largest size CaJaDE wins.
    et_growth = table[512]["et"] / max(table[16]["et"], 1e-6)
    cajade_growth = table[512]["cajade"] / max(table[16]["cajade"], 1e-6)
    assert et_growth > cajade_growth
    assert table[512]["et"] > table[512]["cajade"]


@pytest.mark.benchmark(group="fig11")
def test_tab10_et_patterns(benchmark, nba, report):
    """Appendix A.1: the first 20 patterns ET returns on that APT."""
    db, _ = nba
    query = parse_sql(user_study_query().sql)
    pt = ProvenanceTable.compute(query, db)
    resolved = user_study_query().question.resolve(pt)
    restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])
    apt = materialize_apt(
        pgs_join_graph(), pt, db, restrict_row_ids=restrict
    )
    evaluator = QualityEvaluator(
        apt, resolved.row_ids1, resolved.row_ids2, sample_rate=1.0
    )
    columns = discretize_numeric_columns(evaluator.columns())
    outcome = (evaluator.side_labels() == 1).astype(np.float64)

    patterns = benchmark.pedantic(
        lambda: ExplanationTables(
            max_patterns=20, sample_size=64, seed=2
        ).fit(columns, outcome),
        rounds=1,
        iterations=1,
    )
    lines = [f"{i + 1:2d}. {p.describe()}" for i, p in enumerate(patterns)]
    report("tab10_et_patterns", "\n".join(lines))
    assert patterns
