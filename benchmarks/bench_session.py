"""Benchmark: warm CajadeSession vs cold one-shot explanation runs.

The session API exists so an interactive analyst (or a serving tier)
pays the preprocessing cost of a query once: parse + provenance +
join-graph enumeration + the materialization trie + per-graph mining
finalists all persist across questions.  This benchmark measures that
amortization on a Qnba workload:

1. *cold one-shot*: a fresh ``CajadeSession`` per call — exactly what
   the deprecated ``CajadeExplainer`` shim does — repeated ``--runs``
   times; the best (fastest) run is the baseline, giving the cold path
   every benefit of OS/page-cache warmth;
2. *warm session*: one session; the first ask pays the cold cost, the
   **second ask of the same question** rides the warm trie and mining
   memo.  Asserts the warm second ask is >= 2x faster than the best
   cold run (the real factor is typically far higher) and that its
   ranked explanations are byte-identical to the cold path's;
3. *cross-question*: a different question (outlier on t1) against the
   same query — reuses parse/provenance/enumeration and engine context
   state, reports the observed timing and per-request engine counters;
4. *batch*: the same requests through ``session.explain_batch`` with
   ``--workers``, verifying byte-identical output once more.

Usage:
    PYTHONPATH=src python benchmarks/bench_session.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CajadeSession, ExplanationRequest
from repro.core.config import CajadeConfig
from repro.core.question import OutlierQuestion


def ranked_payload(result) -> str:
    """Everything the user sees, minus cache counters (which legitimately
    differ between warmths)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, query_by_name

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    workload = query_by_name(args.workload)
    config = CajadeConfig(
        max_join_edges=args.edges,
        top_k=10,
        seed=2,
    )
    print(f"{workload.name}: {workload.description}")

    # -- cold one-shot baseline ---------------------------------------
    cold_seconds = []
    cold_payload = None
    for i in range(args.runs):
        session = CajadeSession(db, schema_graph, config)
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question)
        cold_seconds.append(time.perf_counter() - start)
        cold_payload = ranked_payload(result)
        print(f"cold one-shot #{i + 1}: {cold_seconds[-1]:6.2f}s")
    t_cold = min(cold_seconds)

    # -- warm session --------------------------------------------------
    session = CajadeSession(db, schema_graph, config)
    start = time.perf_counter()
    first = session.explain(workload.sql, workload.question)
    t_first = time.perf_counter() - start
    start = time.perf_counter()
    second = session.explain(workload.sql, workload.question)
    t_warm = time.perf_counter() - start
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    print(f"session ask #1 (cold): {t_first:6.2f}s  warm_query={first.warm_query}")
    print(
        f"session ask #2 (warm): {t_warm:6.3f}s  -> {speedup:.1f}x vs "
        f"best cold ({second.mined_graphs_reused}/"
        f"{second.join_graphs_mined} mined graphs reused)"
    )
    print(f"  warm engine delta: {second.engine.describe()}")

    if ranked_payload(second) != cold_payload:
        print("FAIL: warm-session explanations differ from cold one-shot")
        return 1
    print("warm second ask byte-identical to cold one-shot")
    if second.engine.steps_reused == 0 or second.engine.steps_computed != 0:
        print("FAIL: warm second ask did not run fully from the trie")
        return 1

    # -- cross-question on the same query ------------------------------
    outlier = OutlierQuestion(workload.question.primary)
    start = time.perf_counter()
    cross = session.explain(workload.sql, outlier)
    t_cross = time.perf_counter() - start
    print(
        f"cross-question (outlier on t1): {t_cross:6.2f}s  "
        f"warm_query={cross.warm_query}"
    )
    print(f"  engine delta: {cross.engine.describe()}")
    if not cross.warm_query:
        print("FAIL: cross-question did not reuse the query state")
        return 1

    # -- batched requests ----------------------------------------------
    requests = [
        ExplanationRequest(workload.sql, workload.question),
        ExplanationRequest(workload.sql, outlier),
        ExplanationRequest(
            workload.sql, workload.question, workers=args.workers
        ),
    ]
    start = time.perf_counter()
    responses = session.explain_batch(requests)
    t_batch = time.perf_counter() - start
    print(f"batch of {len(requests)} warm requests: {t_batch:6.2f}s")
    for response in (responses[0], responses[2]):
        if ranked_payload(response) != cold_payload:
            print("FAIL: batched explanations differ from cold one-shot")
            return 1
    print("batched explanations byte-identical across warmth and workers")
    print(session.stats.describe())

    if not args.quick and speedup < 2.0:
        print(f"FAIL: warm-session speedup {speedup:.2f}x < 2x")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller workload, no speedup assertion",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.1; quick 0.04)")
    parser.add_argument("--edges", type=int, default=2,
                        help="λ#edges for all runs (default 2)")
    parser.add_argument("--workload", default="Qnba1",
                        help="Qnba workload name (default Qnba1)")
    parser.add_argument("--runs", type=int, default=None,
                        help="cold one-shot repetitions (default 3; quick 1)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.04 if args.quick else 0.1
    if args.runs is None:
        args.runs = 1 if args.quick else 3
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
