"""FIG10 — sampling effects on runtime and pattern quality (Figure 10).

Part 1 (10a-10e): LCA sample-rate sweep over fixed join graphs — how many
ground-truth top-10 patterns survive sampling, and the runtime curve.
Part 2 (10f/10g): λF1-samp sweep — NDCG and recall of the sampled top-k
against the exact run.

Paper shapes: runtime grows with the LCA sample (quadratic pair
generation); matches are high for skewed columns even at small rates;
NDCG stays ≥ ~0.6 and reaches 1.0 as the rate approaches 1.
"""

import pytest

from repro.core import CajadeConfig, JoinConditionSpec, JoinGraph
from repro.datasets import query_by_name, user_study_query
from repro.experiments import (
    f1_sampling_quality_experiment,
    lca_sampling_experiment,
)

from conftest import format_table

LCA_RATES = [0.03, 0.1, 0.3, 1.0]
F1_RATES = [0.1, 0.3, 0.5, 1.0]
BASE = dict(top_k=10, num_selected_attrs=3, seed=2)


def nba_join_graphs() -> dict[str, JoinGraph]:
    """Ω1/Ω2 of Figure 10a (adapted to our generated schema)."""
    aliases = {"g": "game", "t": "team", "s": "season"}
    omega1 = JoinGraph.initial(aliases)
    salary_cond = JoinConditionSpec((("season_id", "season_id"),))
    player_cond = JoinConditionSpec((("player_id", "player_id"),))
    omega2 = JoinGraph.initial(aliases).with_new_node(
        0, "player_salary", salary_cond, "g"
    ).with_new_node(1, "player", player_cond, None)
    return {"omega1_PT": omega1, "omega2_PT-salary-player": omega2}


def mimic_join_graphs() -> dict[str, JoinGraph]:
    """Ω3/Ω4 of Figure 10a."""
    aliases = {"admissions": "admissions"}
    omega3 = JoinGraph.initial(aliases)
    pai_cond = JoinConditionSpec((("hadm_id", "hadm_id"),))
    patient_cond = JoinConditionSpec((("subject_id", "subject_id"),))
    omega4 = JoinGraph.initial(aliases).with_new_node(
        0, "patients_admit_info", pai_cond, "admissions"
    ).with_new_node(1, "patients", patient_cond, None)
    return {"omega3_PT": omega3, "omega4_PT-admitinfo-patients": omega4}


@pytest.mark.benchmark(group="fig10")
def test_fig10_lca_sampling_nba(benchmark, nba, report):
    db, _ = nba

    def run():
        out = {}
        for name, graph in nba_join_graphs().items():
            points, rows, attrs = lca_sampling_experiment(
                db, user_study_query(), graph, LCA_RATES,
                CajadeConfig(**BASE),
            )
            out[name] = (points, rows, attrs)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, (points, rows, attrs) in results.items():
        lines.append(f"{name}: APT {rows} rows, {attrs} attributes")
        lines.append(
            format_table(
                ["sample rate", "runtime", "top-10 matches"],
                [
                    [f"{p.sample_rate:g}", f"{p.runtime_seconds:.2f}s",
                     p.matches_in_top10]
                    for p in points
                ],
            )
        )
    report("fig10_lca_sampling_nba", "\n".join(lines))
    for name, (points, rows, _) in results.items():
        # Full-rate run recovers the ground truth (exactly when the APT
        # fits under the LCA row cap; mostly when the cap kicks in —
        # mirroring the paper's Fig 10c sensitivity discussion).
        expected = 10 if rows <= 1000 else 6
        assert points[-1].matches_in_top10 >= expected


@pytest.mark.benchmark(group="fig10")
def test_fig10_lca_sampling_mimic(benchmark, mimic, report):
    db, _ = mimic

    def run():
        out = {}
        for name, graph in mimic_join_graphs().items():
            points, rows, attrs = lca_sampling_experiment(
                db, query_by_name("Qmimic4"), graph, LCA_RATES,
                CajadeConfig(**BASE),
            )
            out[name] = (points, rows, attrs)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, (points, rows, attrs) in results.items():
        lines.append(f"{name}: APT {rows} rows, {attrs} attributes")
        lines.append(
            format_table(
                ["sample rate", "runtime", "top-10 matches"],
                [
                    [f"{p.sample_rate:g}", f"{p.runtime_seconds:.2f}s",
                     p.matches_in_top10]
                    for p in points
                ],
            )
        )
    report("fig10_lca_sampling_mimic", "\n".join(lines))
    for name, (points, rows, _) in results.items():
        expected = 10 if rows <= 1000 else 6
        assert points[-1].matches_in_top10 >= expected


@pytest.mark.benchmark(group="fig10")
def test_fig10_f1_sampling_quality(benchmark, nba, report):
    db, sg = nba
    config = CajadeConfig(**BASE).with_overrides(max_join_edges=1)
    out = benchmark.pedantic(
        lambda: f1_sampling_quality_experiment(
            db, sg, user_study_query(), F1_RATES, config
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "fig10_f1_sampling_quality",
        format_table(
            ["λF1-samp", "NDCG", "recall"],
            [
                [f"{r:g}", f"{out[r]['ndcg']:.3f}", f"{out[r]['recall']:.3f}"]
                for r in F1_RATES
            ],
        ),
    )
    # Paper shape: exact rate reproduces the ground truth; quality stays
    # usable (the paper reports NDCG >= ~0.6 on NBA) even for aggressive
    # sampling, and improves with the rate.
    assert out[1.0]["ndcg"] == pytest.approx(1.0)
    assert all(out[r]["ndcg"] >= 0.55 for r in F1_RATES)
    assert out[1.0]["ndcg"] >= out[F1_RATES[0]]["ndcg"]
