"""Benchmark: late-materialized storage engine, on vs off.

Runs the Qnba scaling workload of the paper's Figure 9 (the user-study
query UQ1 over a generated NBA instance) end to end and compares the
*Materialize APTs* StepTimer box between storage-engine modes:

- *late-off*: the eager pipeline — every join step zips full column
  copies, the shared-prefix trie caches complete intermediate
  relations;
- *late-on*: index-vector joins — a join produces per-base-table
  row-index arrays, the trie caches compact
  :class:`~repro.db.frame.IndexFrame` entries, APT columns gather on
  demand at the mining edge, and the mining kernel gathers load-time
  dictionary codes instead of re-encoding objects per APT;
- *late-on workers=N*: the same, mined with a worker pool.

Every mode's ranked explanations must be byte-identical (late
materialization changes where bytes come from, never what they are);
the run fails otherwise.  The full run additionally asserts a >= 2x
median speedup on *Materialize APTs* (late-on vs late-off) and that the
trie's median entry size shrinks at the unchanged ``apt_cache_mb``
budget; ``--smoke`` keeps the identity checks (and enables
``kernel_verify`` cross-checking of the gathered-code kernel) but skips
the speedup assertion.  Machine-readable medians go to
``benchmarks/results/BENCH_materialize.json`` (the smoke payload
carries ``"smoke": true`` — the committed copy of the file must come
from a full run; regenerate it with no flags before committing it).

Usage:
    PYTHONPATH=src python benchmarks/bench_materialize.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CajadeSession
from repro.core.config import CajadeConfig
from repro.core.timing import MATERIALIZE_APTS, StepTimer

RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_materialize.json"
)


def ranked_payload(result) -> str:
    """Everything the user sees, minus cache counters (which legitimately
    differ between execution strategies)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def run_mode(db, schema_graph, workload, config, repeats):
    """Fresh-session runs of one mode.

    Returns per-repeat *Materialize APTs* seconds (each repeat is a cold
    session, so the box includes provenance computation and the full
    first materialization of every enumerated join graph), totals, the
    ranked payload, and the last session's trie gauges.
    """
    mat_seconds = []
    totals = []
    payload = None
    cache = {}
    for _ in range(repeats):
        timer = StepTimer()
        session = CajadeSession(db, schema_graph, config)
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question, timer=timer)
        totals.append(time.perf_counter() - start)
        mat_seconds.append(timer.seconds(MATERIALIZE_APTS))
        payload = ranked_payload(result)
        stats = session.engine_stats(workload.sql)
        assert stats is not None and stats.cache is not None
        cache = {
            "entries": stats.cache.entries,
            "median_entry_bytes": stats.cache.median_entry_bytes,
            "current_bytes": stats.cache.current_bytes,
            "evictions": stats.cache.evictions,
            "hit_rate": round(stats.cache.hit_rate, 4),
            "steps_reused": stats.steps_reused,
            "steps_computed": stats.steps_computed,
        }
    return mat_seconds, totals, payload, cache


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, user_study_query

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    workload = user_study_query()
    base = CajadeConfig(
        max_join_edges=args.edges,
        num_selected_attrs=3,
        top_k=10,
        seed=2,
        apt_cache_mb=args.apt_cache_mb,
    )
    modes = {
        "late-off": base.with_overrides(late_materialization=False),
        "late-on": base.with_overrides(kernel_verify=args.smoke),
        f"late-on workers={args.workers}": base.with_overrides(
            workers=args.workers
        ),
    }
    print(
        f"{workload.name}: Fig-9 scaling workload, λ#edges={args.edges}, "
        f"apt_cache_mb={args.apt_cache_mb:g}, "
        f"{args.repeats} repeat(s) per mode"
    )

    results = {}
    for label, config in modes.items():
        mats, totals, payload, cache = run_mode(
            db, schema_graph, workload, config, args.repeats
        )
        results[label] = (mats, totals, payload, cache)
        shown = " ".join(f"{s:.2f}" for s in mats)
        print(
            f"{label:>22s}: Materialize APTs {shown}s "
            f"(median {statistics.median(mats):.2f}s, "
            f"total median {statistics.median(totals):.2f}s)"
        )
        print(f"{'':>22s}  trie {cache}")

    off_mats, off_totals, off_payload, off_cache = results["late-off"]
    on_mats, on_totals, on_payload, on_cache = results["late-on"]
    median_off = statistics.median(off_mats)
    median_on = statistics.median(on_mats)
    speedup = median_off / median_on if median_on > 0 else float("inf")
    print(
        f"Materialize APTs: {median_off:.2f}s -> {median_on:.2f}s "
        f"= {speedup:.2f}x"
    )
    entry_shrink = (
        off_cache["median_entry_bytes"] / on_cache["median_entry_bytes"]
        if on_cache["median_entry_bytes"]
        else float("inf")
    )
    print(
        f"trie median entry: {off_cache['median_entry_bytes']} B -> "
        f"{on_cache['median_entry_bytes']} B = {entry_shrink:.2f}x smaller"
    )

    byte_identical = all(
        payload == off_payload for _, _, payload, _ in results.values()
    )
    report = {
        "benchmark": "bench_materialize",
        "workload": f"{workload.name} (Fig-9 NBA scaling workload)",
        "scale": args.scale,
        "max_join_edges": args.edges,
        "repeats": args.repeats,
        "workers": args.workers,
        "apt_cache_mb": args.apt_cache_mb,
        "smoke": args.smoke,
        "step_measured": MATERIALIZE_APTS,
        "median_materialize_seconds_late_off": round(median_off, 4),
        "median_materialize_seconds_late_on": round(median_on, 4),
        "median_total_seconds_late_off": round(
            statistics.median(off_totals), 4
        ),
        "median_total_seconds_late_on": round(
            statistics.median(on_totals), 4
        ),
        "speedup": round(speedup, 2),
        "trie_late_off": off_cache,
        "trie_late_on": on_cache,
        "median_entry_shrink": round(entry_shrink, 2),
        "byte_identical": byte_identical,
    }
    target = RESULTS_PATH
    if args.smoke and RESULTS_PATH.exists():
        try:
            committed = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            committed = {}
        if committed.get("smoke") is False:
            # Never clobber the committed full-run medians with smoke
            # numbers; smoke output goes to a sibling (gitignored) file.
            target = RESULTS_PATH.with_name("BENCH_materialize_smoke.json")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {target}")

    if not byte_identical:
        for label, (_, _, payload, _) in results.items():
            if payload != off_payload:
                print(f"FAIL: {label} explanations differ from late-off")
        return 1
    print(
        "ranked explanations byte-identical across late-materialization "
        f"on/off, serial and workers={args.workers}"
    )
    if (
        on_cache["entries"]
        and off_cache["median_entry_bytes"]
        <= on_cache["median_entry_bytes"]
    ):
        print(
            "FAIL: index-vector trie entries are not smaller than eager "
            f"entries ({on_cache['median_entry_bytes']} vs "
            f"{off_cache['median_entry_bytes']} B)"
        )
        return 1

    if not args.smoke and speedup < 2.0:
        print(f"FAIL: Materialize APTs speedup {speedup:.2f}x < 2x")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: small workload, kernel_verify on for the "
             "late-on run, no speedup assertion (byte-identity and "
             "entry-shrink still enforced)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.25, the "
                             "Fig-9 top point; smoke 0.04)")
    parser.add_argument("--edges", type=int, default=2,
                        help="λ#edges for all runs (default 2)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per mode (default 3; smoke 1)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--apt-cache-mb", type=float, default=256.0,
                        help="trie budget for all modes (default 256; "
                             "the entry-shrink assertion compares modes "
                             "at this unchanged budget)")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.04 if args.smoke else 0.25
    if args.repeats is None:
        args.repeats = 1 if args.smoke else 3
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
