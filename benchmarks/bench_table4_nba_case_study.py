"""TAB4 — NBA case study: top-3 explanations per query (paper Table 4).

Runs Qnba1..Qnba5 with their user questions and prints the top-3
explanations with F-scores.  Shape assertions check the *kind* of signal
the paper reports per query (salary/minutes/usage for Qnba1, assist
stats for Qnba2, team/salary change for Qnba3, ...).
"""

import pytest

from repro.api import CajadeSession
from repro.core import CajadeConfig
from repro.datasets import nba_queries

BASE = dict(
    max_join_edges=2, top_k=10, f1_sample_rate=0.5,
    num_selected_attrs=4, seed=3,
)

# Attribute families the paper's Table 4 explanations draw from.
EXPECTED_SIGNALS = {
    "Qnba1": {"salary", "tspct", "usage", "minutes", "points", "efgpct"},
    "Qnba2": {"assistpoints", "assists", "assisted_two_spct", "points",
              "player_name", "offrebounds", "salary"},
    "Qnba3": {"salary", "team", "usage", "points", "minutes", "efgpct",
              "tspct"},
    "Qnba4": {"player_name", "salary", "fg_three_pct", "points",
              "fg_three_m", "assistpoints", "home_points", "away_points",
              "minutes", "assists"},
    "Qnba5": {"salary", "usage", "minutes", "points", "efgpct", "team",
              "tspct", "away_points"},
}


@pytest.mark.benchmark(group="table4")
def test_table4_nba_case_study(benchmark, nba, report):
    db, sg = nba
    def run():
        # A fresh session per round: the benchmark measures the cold
        # pipeline, and session warmth must not leak across rounds.
        explainer = CajadeSession(db, sg, CajadeConfig(**BASE))
        out = {}
        for workload in nba_queries():
            result = explainer.explain(workload.sql, workload.question)
            out[workload.name] = (workload, result)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, (workload, result) in results.items():
        lines.append(f"=== {name}: {workload.description} ===")
        lines.append(f"question: {workload.question.describe()}")
        for rank, e in enumerate(result.top(3), start=1):
            lines.append(f"  {rank}. {e.describe()}")
        lines.append("")
    report("table4_nba_case_study", "\n".join(lines))

    for name, (workload, result) in results.items():
        assert result.explanations, f"{name} produced no explanations"
        used = set()
        for e in result.top(5):
            used |= {a.split(".")[-1] for a in e.pattern.attributes}
        overlap = used & EXPECTED_SIGNALS[name]
        assert overlap, (
            f"{name}: none of the paper's signal families "
            f"{EXPECTED_SIGNALS[name]} appear in {used}"
        )
