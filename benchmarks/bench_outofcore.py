"""Benchmark: out-of-core column store — O(dict) reopen, Fig-9 at scale.

Exercises the persistent memory-mappable column store end to end on the
NBA database:

- *cold ingest*: CSV parse + type inference + dictionary encoding via
  ``load_database`` — the price every prior session paid on startup;
- *save*: one-time ``Database.save`` writing the columnar cache;
- *reopen*: ``Database.open`` memory-mapping the code/numeric arrays
  with **lazy value dictionaries** — must be at least
  ``--min-reopen-speedup`` (default 10x) faster than cold ingest, and
  must load **zero** dictionary pickles at open time;
- *byte identity*: the user-study explanation (UQ1) is computed on the
  CSV-loaded in-memory database and on the memmap-backed opened
  database, serial and with ``--workers`` mining workers — all four
  ranked payloads must match byte for byte;
- *synthetic ~10x arm*: ``scale_up_database`` by ``--tenx-factor``,
  save/reopen the scaled store, and check the user-study SQL aggregate
  matches between the in-memory and memmap-backed copies.

Every step records wall-clock and resident-set readings through
``perf_harness.StepMeter``; the report's ``"peak_rss"`` object carries
the process high-water mark plus per-step before/after RSS.  Results go
to ``benchmarks/results/BENCH_outofcore.json`` (smoke runs write a
``_smoke`` sibling instead of clobbering a committed full run).

Usage:
    PYTHONPATH=src python benchmarks/bench_outofcore.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import StepMeter

from repro.api import CajadeSession
from repro.core.config import CajadeConfig
from repro.db.csvio import load_database, save_database
from repro.db.database import Database

RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_outofcore.json"
)


def ranked_payload(result) -> str:
    """Everything the user sees, minus cache counters (which legitimately
    differ between execution strategies)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def explain_payload(db, config) -> str:
    from repro.datasets import user_study_query
    from repro.datasets.nba import nba_schema_graph

    workload = user_study_query()
    session = CajadeSession(db, nba_schema_graph(db), config)
    return ranked_payload(session.explain(workload.sql, workload.question))


def sql_rows(db) -> list[tuple]:
    """The user-study aggregate's result rows (hashable, order-preserved)."""
    from repro.datasets import user_study_query
    from repro.db.executor import execute
    from repro.db.parser import parse_sql

    result = execute(parse_sql(user_study_query().sql), db)
    return [tuple(row) for row in result.iter_rows()]


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, scale_up_database

    meter = StepMeter()
    failures: list[str] = []

    print(f"generating NBA (scale={args.scale}) ...", flush=True)
    db_gen, _ = meter.measure(
        "generate", lambda: load_nba(scale=args.scale, seed=5)
    )

    with tempfile.TemporaryDirectory(prefix="outofcore_bench_") as tmp:
        csv_dir = Path(tmp) / "csv"
        col_dir = Path(tmp) / "colstore"
        meter.measure("write csv", lambda: save_database(db_gen, csv_dir))

        cold_seconds = []
        db_csv = None
        for _ in range(args.repeats):
            start = time.perf_counter()
            db_csv = meter.measure(
                "cold ingest (csv)", lambda: load_database(csv_dir)
            )
            cold_seconds.append(time.perf_counter() - start)
        assert db_csv is not None

        meter.measure("save columnar", lambda: db_csv.save(col_dir))

        reopen_seconds = []
        db_mm = None
        dicts_at_open = None
        for _ in range(args.repeats):
            start = time.perf_counter()
            db_mm = meter.measure(
                "reopen colstore", lambda: Database.open(col_dir)
            )
            reopen_seconds.append(time.perf_counter() - start)
            dicts_at_open = db_mm.column_store.dicts_loaded
        assert db_mm is not None

        cold = min(cold_seconds)
        reopen = min(reopen_seconds)
        speedup = cold / reopen if reopen > 0 else float("inf")
        print(
            f"cold ingest {cold:.3f}s -> reopen {reopen:.4f}s "
            f"= {speedup:.1f}x, {dicts_at_open} dict pickles loaded at open"
        )
        if dicts_at_open != 0:
            failures.append(
                f"open loaded {dicts_at_open} value dicts (expected 0)"
            )
        if speedup < args.min_reopen_speedup:
            failures.append(
                f"reopen only {speedup:.1f}x faster than cold ingest "
                f"(floor {args.min_reopen_speedup:g}x)"
            )

        config = CajadeConfig(
            num_selected_attrs=3,
            top_k=10,
            seed=2,
            max_join_edges=args.edges,
        )
        arms = {
            "in-memory serial": (db_csv, config),
            f"in-memory workers={args.workers}": (
                db_csv,
                config.with_overrides(workers=args.workers),
            ),
            "memmap serial": (db_mm, config),
            f"memmap workers={args.workers}": (
                db_mm,
                config.with_overrides(workers=args.workers),
            ),
        }
        payloads = {}
        for label, (db, cfg) in arms.items():
            payloads[label] = meter.measure(
                f"explain {label}", lambda db=db, cfg=cfg: explain_payload(db, cfg)
            )
            print(
                f"explain {label}: "
                f"{meter.seconds(f'explain {label}'):.2f}s"
            )
        reference = payloads["in-memory serial"]
        for label, payload in payloads.items():
            if payload != reference:
                failures.append(
                    f"explain {label}: ranked output differs from "
                    "in-memory serial"
                )
        byte_identical = not any("ranked output" in f for f in failures)
        if byte_identical:
            print(
                "ranked explanations byte-identical: memmap on/off x "
                f"serial/workers={args.workers}"
            )
        dicts_after = db_mm.column_store.dicts_loaded
        dict_total = len(db_mm.column_store.stores)
        print(
            f"dict pickles loaded after explain: {dicts_after}/{dict_total}"
        )

        tenx = {}
        if args.tenx_factor > 1:
            factor = args.tenx_factor
            print(f"synthetic x{factor} arm ...", flush=True)
            db_big = meter.measure(
                f"scale up x{factor}",
                lambda: scale_up_database(db_csv, factor),
            )
            big_dir = Path(tmp) / "colstore_big"
            meter.measure(
                f"save columnar x{factor}", lambda: db_big.save(big_dir)
            )
            start = time.perf_counter()
            db_big_mm = meter.measure(
                f"reopen colstore x{factor}", lambda: Database.open(big_dir)
            )
            big_reopen = time.perf_counter() - start
            big_dicts = db_big_mm.column_store.dicts_loaded
            if big_dicts != 0:
                failures.append(
                    f"x{factor} open loaded {big_dicts} dicts (expected 0)"
                )
            rows_mem = meter.measure(
                f"sql aggregate x{factor} in-memory", lambda: sql_rows(db_big)
            )
            rows_mm = meter.measure(
                f"sql aggregate x{factor} memmap", lambda: sql_rows(db_big_mm)
            )
            if rows_mem != rows_mm:
                failures.append(
                    f"x{factor} SQL aggregate differs between in-memory "
                    "and memmap databases"
                )
            tenx = {
                "factor": factor,
                "reopen_seconds": round(big_reopen, 4),
                "dicts_loaded_at_open": big_dicts,
                "sql_rows": len(rows_mm),
                "sql_identical": rows_mem == rows_mm,
            }
            print(
                f"x{factor}: reopen {big_reopen:.3f}s, "
                f"{big_dicts} dicts at open, "
                f"{len(rows_mm)} aggregate rows, "
                f"identical={rows_mem == rows_mm}"
            )

    report = {
        "benchmark": "bench_outofcore",
        "workload": "UQ1 (user study) + user-study SQL aggregate",
        "scale": args.scale,
        "edges": args.edges,
        "workers": args.workers,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "cold_ingest_seconds": [round(s, 4) for s in cold_seconds],
        "reopen_seconds": [round(s, 4) for s in reopen_seconds],
        "reopen_speedup": round(speedup, 1),
        "min_reopen_speedup": args.min_reopen_speedup,
        "dicts_loaded_at_open": dicts_at_open,
        "dicts_loaded_after_explain": dicts_after,
        "dict_stores_total": dict_total,
        "explain_seconds": {
            label: meter.seconds(f"explain {label}") for label in arms
        },
        "byte_identical": byte_identical,
        "tenx": tenx,
        "peak_rss": meter.report(),
    }
    target = RESULTS_PATH
    if args.smoke and RESULTS_PATH.exists():
        try:
            committed = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            committed = {}
        if committed.get("smoke") is False:
            # Never clobber the committed full-run numbers with smoke
            # numbers; smoke output goes to a sibling (gitignored) file.
            target = RESULTS_PATH.with_name("BENCH_outofcore_smoke.json")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {target}")

    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: small scale, edges=1, x2 synthetic arm "
             "(byte-identity, O(dict) open, and the reopen-speedup "
             "floor still enforced)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 1.0; smoke 0.08)")
    parser.add_argument("--edges", type=int, default=None,
                        help="λ#edges for the explanations (default 2; "
                             "smoke 1)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="cold-ingest/reopen repeats (default 3; "
                             "smoke 2)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--tenx-factor", type=int, default=None,
                        help="synthetic scale-up factor (default 10; "
                             "smoke 2; 1 disables the arm)")
    parser.add_argument("--min-reopen-speedup", type=float, default=10.0,
                        help="reopen must beat cold CSV ingest by this "
                             "factor (default 10x)")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.08 if args.smoke else 1.0
    if args.edges is None:
        args.edges = 1 if args.smoke else 2
    if args.repeats is None:
        args.repeats = 2 if args.smoke else 3
    if args.tenx_factor is None:
        args.tenx_factor = 2 if args.smoke else 10
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
