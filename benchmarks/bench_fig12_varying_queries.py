"""FIG12 — runtime across the 10-query workload (paper Figure 12).

Runs Qnba1..5 and Qmimic1..5 with λF1-samp = 0.3 and reports runtime plus
the number of (valid) join graphs per query.  Paper shape: runtime is
relatively stable across queries and correlates with the join-graph
count.
"""

import pytest

from repro.core import CajadeConfig
from repro.experiments import varying_queries_experiment

from conftest import format_table

BASE = dict(
    max_join_edges=2, top_k=10, f1_sample_rate=0.3,
    num_selected_attrs=3, seed=2,
)


@pytest.mark.benchmark(group="fig12")
def test_fig12_varying_queries(benchmark, nba, mimic, report):
    out = benchmark.pedantic(
        lambda: varying_queries_experiment(nba, mimic, CajadeConfig(**BASE)),
        rounds=1,
        iterations=1,
    )
    report(
        "fig12_varying_queries",
        format_table(
            ["query", "runtime", "valid join graphs", "mined"],
            [
                [
                    name,
                    f"{stats['runtime']:.2f}s",
                    int(stats["join_graphs"]),
                    int(stats["mined"]),
                ]
                for name, stats in out.items()
            ],
        ),
    )
    assert len(out) == 10
    assert all(stats["runtime"] > 0 for stats in out.values())
    # Paper shape: runtime correlates with the number of join graphs —
    # check the rank correlation is positive.
    names = list(out)
    runtimes = [out[n]["runtime"] for n in names]
    graphs = [out[n]["join_graphs"] for n in names]
    concordant = discordant = 0
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            dr = runtimes[i] - runtimes[j]
            dg = graphs[i] - graphs[j]
            if dr * dg > 0:
                concordant += 1
            elif dr * dg < 0:
                discordant += 1
    assert concordant >= discordant
