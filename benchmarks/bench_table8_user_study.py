"""TAB7/8/9 — user study with synthetic raters (paper §6.3).

Builds the study set of Table 7 (top-5 provenance-only + top-5 CaJaDE
explanations for UQ1), rates them with 20 seeded synthetic raters (5
"NBA fans"), and prints Table 8 (avg ratings per explanation by rater
group) and Table 9 (Kendall-tau / NDCG of the system's quality metrics
against the raters, with and without the most controversial
explanation).

Shapes to reproduce: most raters prefer CaJaDE (paper: 16/20); the
ranking quality NDCG reaches ~0.9 for CaJaDE's F-score ranking; dropping
the controversial explanation roughly halves the pairwise error.
"""

import pytest

from repro.baselines import ProvenanceOnlyExplainer
from repro.core import CajadeConfig, CajadeExplainer
from repro.datasets import user_study_query
from repro.experiments import build_study_explanations, run_user_study

from conftest import format_table

BASE = dict(
    max_join_edges=2, top_k=5, f1_sample_rate=0.5,
    num_selected_attrs=4, seed=3,
)


@pytest.mark.benchmark(group="table8")
def test_table8_table9_user_study(benchmark, nba, report):
    db, sg = nba
    wq = user_study_query()

    def run():
        config = CajadeConfig(**BASE)
        prov = ProvenanceOnlyExplainer(db, config).explain(wq.sql, wq.question)
        cajade = CajadeExplainer(db, sg, config).explain(wq.sql, wq.question)
        study = build_study_explanations(
            prov.explanations, cajade.explanations
        )
        return study, run_user_study(study, n_raters=20, n_experts=5, seed=99)

    study, study_report = benchmark.pedantic(run, rounds=1, iterations=1)

    # ---- Table 8 -------------------------------------------------------
    means_all = study_report.mean_ratings()
    means_fan = study_report.mean_ratings(experts_only=True)
    means_non = study_report.mean_ratings(experts_only=False)
    stds = study_report.rating_std()
    rows = []
    for group, values in (
        ("All users", means_all),
        ("Stdev", stds),
        ("NBA: Yes", means_fan),
        ("NBA: No", means_non),
    ):
        rows.append([group] + [f"{values[e.label]:.2f}" for e in study])
    for metric in ("f_score", "recall", "precision"):
        rows.append(
            [metric] + [f"{getattr(e, metric):.2f}" for e in study]
        )
    table8 = format_table(["", *(e.label for e in study)], rows)

    # ---- Table 9 -------------------------------------------------------
    rows9 = []
    for arm in ("provenance", "cajade"):
        for metric in ("f_score", "recall", "precision"):
            full = study_report.ranking_quality(arm, metric)
            dropped = study_report.ranking_quality(
                arm, metric, drop_most_controversial=True
            )
            rows9.append(
                [
                    arm,
                    metric,
                    f"{full['kendall_tau']:.2f} / {dropped['kendall_tau']:.2f}",
                    f"{full['ndcg']:.3f} / {dropped['ndcg']:.3f}",
                ]
            )
    table9 = format_table(
        ["arm", "metric", "Kendall tau (all / -1)", "NDCG (all / -1)"], rows9
    )

    preference = study_report.preference_fraction()
    report(
        "table8_table9_user_study",
        f"{table8}\n\npreference for CaJaDE: "
        f"{preference * 100:.0f}% of raters\n\n{table9}",
    )

    # ---- paper-shape assertions -----------------------------------------
    assert preference >= 0.6  # paper: 16/20 = 80%
    cajade_f = study_report.ranking_quality("cajade", "f_score")
    assert cajade_f["ndcg"] >= 0.8  # paper: ~0.9
    dropped = study_report.ranking_quality(
        "cajade", "f_score", drop_most_controversial=True
    )
    assert dropped["kendall_tau"] <= cajade_f["kendall_tau"]
