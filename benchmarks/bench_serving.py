"""Benchmark: the concurrent explanation service vs stateless serving.

Before the serving layer, putting CaJaDE behind an endpoint meant the
stateless one-shot path: every request builds a fresh session, parses
its query, recomputes provenance, enumerates join graphs, and mines
from scratch.  The serving tier replaces that with persistent sharded
workers over one shared-memory database export, an in-flight coalescer,
and a fingerprint-keyed response cache — so a skewed request stream
(real workloads repeat their hot questions) pays each distinct
computation once.

The benchmark replays one seeded zipf-skewed stream through both:

1. *serial / stateless*: requests answered one at a time, a fresh
   ``CajadeSession`` per request (the pre-serving baseline);
2. *service*: the same stream submitted concurrently to an
   ``ExplanationService`` over a ``ProcessPoolBackend`` (pool startup
   excluded from the measured window).

It reports sustained qps and p50/p99 latency for both, asserts the
service is >= ``--min-speedup`` (default 2x) faster, and — the part
that matters — asserts every service response is **byte-identical** to
the serial answer for the same request, whether it was executed,
coalesced, or replayed from cache.  Machine-readable results go to
``benchmarks/results/BENCH_serving.json`` (the smoke payload carries
``"smoke": true`` — regenerate the committed file with no flags).

Usage:
    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CajadeSession, ExplanationRequest
from repro.core.config import CajadeConfig
from repro.core.question import OutlierQuestion
from repro.serving import (
    ExplanationService,
    ProcessPoolBackend,
    canonical_payload,
)
from repro.serving.metrics import percentile

RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_serving.json"
)


def build_universe(num_queries: int) -> list[ExplanationRequest]:
    """The distinct requests the stream draws from.

    Per workload query: its comparison question, an outlier variant on
    the primary side, and a smaller-``top_k`` rewrite of the comparison
    (same fingerprint, different output-relevant config — exercises the
    cache-key split).
    """
    from repro.datasets.workloads import nba_queries

    universe: list[ExplanationRequest] = []
    for workload in nba_queries()[:num_queries]:
        universe.append(ExplanationRequest(workload.sql, workload.question))
        universe.append(
            ExplanationRequest(
                workload.sql, OutlierQuestion(workload.question.primary)
            )
        )
        universe.append(
            ExplanationRequest(workload.sql, workload.question, top_k=3)
        )
    return universe


def zipf_stream(
    universe: list[ExplanationRequest],
    length: int,
    seed: int,
    exponent: float = 1.3,
) -> list[ExplanationRequest]:
    """A seeded stream where request i is drawn ∝ 1/rank^exponent."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(universe))]
    stream = rng.choices(universe, weights=weights, k=length)
    # Every distinct request appears at least once so both systems do
    # the same set of unique computations.
    for i, request in enumerate(universe):
        stream[i * (length // len(universe))] = request
    return stream


def run_serial(db, schema_graph, config, stream):
    """Stateless baseline: fresh session per request, one at a time."""
    payloads: list[str] = []
    latencies: list[float] = []
    start = time.perf_counter()
    for request in stream:
        t0 = time.perf_counter()
        session = CajadeSession(db, schema_graph, config)
        result = session.explain(request)
        payloads.append(canonical_payload(result))
        latencies.append(time.perf_counter() - t0)
    return payloads, time.perf_counter() - start, latencies


def run_service(db, schema_graph, config, stream, workers, cache_mb, depth):
    """The serving tier answering the same stream concurrently."""
    backend = ProcessPoolBackend(
        db, schema_graph, config, num_shards=workers
    )
    t0 = time.perf_counter()
    backend.start()  # excluded from the measured window
    startup = time.perf_counter() - t0
    shared_bytes = backend.shared_bytes  # stop() releases the export

    async def drive():
        async with ExplanationService(
            backend, response_cache_mb=cache_mb
        ) as service:
            gate = asyncio.Semaphore(depth)

            async def one(request):
                async with gate:
                    return await service.submit(request)

            start = time.perf_counter()
            responses = await asyncio.gather(*(one(r) for r in stream))
            elapsed = time.perf_counter() - start
            return responses, elapsed, service.stats.snapshot()

    responses, elapsed, stats = asyncio.run(drive())
    payloads = [r.payload for r in responses]
    latencies = [r.latency_seconds for r in responses]
    return payloads, elapsed, latencies, stats, startup, shared_bytes


def summarize(name, elapsed, latencies):
    qps = len(latencies) / elapsed if elapsed > 0 else float("inf")
    p50 = percentile(latencies, 50.0) * 1e3
    p99 = percentile(latencies, 99.0) * 1e3
    print(
        f"{name}: {len(latencies)} requests in {elapsed:6.2f}s  "
        f"({qps:6.2f} qps, p50 {p50:7.2f}ms, p99 {p99:8.2f}ms)"
    )
    return {
        "requests": len(latencies),
        "seconds": round(elapsed, 4),
        "qps": round(qps, 3),
        "latency_p50_ms": round(p50, 3),
        "latency_p99_ms": round(p99, 3),
    }


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    config = CajadeConfig(max_join_edges=2, top_k=10, seed=2)

    universe = build_universe(args.queries)
    stream = zipf_stream(universe, args.length, seed=args.seed)
    distinct = len({id(r) for r in stream})
    print(
        f"stream: {len(stream)} requests over {len(universe)} distinct "
        f"({distinct} drawn), zipf seed {args.seed}"
    )

    print("serial (stateless one-shot per request):", flush=True)
    serial_payloads, t_serial, serial_lat = run_serial(
        db, schema_graph, config, stream
    )
    serial = summarize("serial ", t_serial, serial_lat)

    print(
        f"service ({args.workers} workers, "
        f"{args.response_cache_mb:g}MB response cache):",
        flush=True,
    )
    (
        service_payloads,
        t_service,
        service_lat,
        stats,
        startup,
        shared_bytes,
    ) = run_service(
        db,
        schema_graph,
        config,
        stream,
        args.workers,
        args.response_cache_mb,
        args.depth,
    )
    service = summarize("service", t_service, service_lat)
    print(
        f"  pool startup {startup:.2f}s (excluded), "
        f"{shared_bytes / 1e6:.2f}MB shared, "
        f"{stats['cache_hits']} cache hits + {stats['coalesced']} "
        f"coalesced of {stats['requests']} requests, "
        f"{stats['batches']} batches"
    )

    mismatches = sum(
        1 for a, b in zip(serial_payloads, service_payloads) if a != b
    )
    if mismatches:
        print(f"FAIL: {mismatches}/{len(stream)} responses differ")
        return 1
    print("every service response byte-identical to the serial answer")

    speedup = t_serial / t_service if t_service > 0 else float("inf")
    print(f"throughput: {speedup:.2f}x serial")
    payload = {
        "smoke": bool(args.smoke),
        "scale": args.scale,
        "stream_length": len(stream),
        "distinct_requests": len(universe),
        "workers": args.workers,
        "response_cache_mb": args.response_cache_mb,
        "max_in_flight": args.depth,
        "serial": serial,
        "service": service,
        "speedup": round(speedup, 3),
        "pool_startup_seconds": round(startup, 3),
        "shared_memory_bytes": shared_bytes,
        "service_stats": stats,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < {args.min_speedup:g}x")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: small scale and stream, 2 workers",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.1; smoke 0.04)")
    parser.add_argument("--length", type=int, default=None,
                        help="stream length (default 36; smoke 15)")
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries in the universe "
                        "(default 2; smoke 1)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker pool shards (default 2)")
    parser.add_argument("--response-cache-mb", type=float, default=64.0)
    parser.add_argument("--depth", type=int, default=8,
                        help="max in-flight submissions (default 8)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required service/serial throughput ratio")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.04 if args.smoke else 0.1
    if args.length is None:
        args.length = 15 if args.smoke else 36
    if args.queries is None:
        args.queries = 1 if args.smoke else 2
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
