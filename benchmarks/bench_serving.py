"""Benchmark: the concurrent explanation service vs stateless serving.

Before the serving layer, putting CaJaDE behind an endpoint meant the
stateless one-shot path: every request builds a fresh session, parses
its query, recomputes provenance, enumerates join graphs, and mines
from scratch.  The serving tier replaces that with persistent sharded
workers over one shared-memory database export, an in-flight coalescer,
and a fingerprint-keyed response cache — so a skewed request stream
(real workloads repeat their hot questions) pays each distinct
computation once.

The benchmark replays one seeded zipf-skewed stream through both:

1. *serial / stateless*: requests answered one at a time, a fresh
   ``CajadeSession`` per request (the pre-serving baseline);
2. *service*: the same stream submitted concurrently to an
   ``ExplanationService`` over a ``ProcessPoolBackend`` (pool startup
   excluded from the measured window).  Concurrency is governed by the
   **server's** admission control (``--depth`` becomes the service's
   ``max_in_flight``); shed clients honor ``Retry-After`` and resubmit,
   as a real client would.

It reports sustained qps and p50/p99 latency for both, asserts the
service is >= ``--min-speedup`` (default 2x) faster, and — the part
that matters — asserts every service response is **byte-identical** to
the serial answer for the same request, whether it was executed,
coalesced, or replayed from cache.  Machine-readable results (including
shed/retry/restart counts and availability) go to
``benchmarks/results/BENCH_serving.json`` (the smoke payload carries
``"smoke": true`` — regenerate the committed file with no flags).

``--chaos`` adds a supervised-recovery pass: a seeded
``FaultPlan.kill_every(N)`` SIGKILLs each shard's worker on every Nth
request it executes, while the same stream (response cache off, one
request at a time, so every request truly executes) replays through the
pool.  The pass asserts each worker died at least twice, every admitted
request completed byte-identical to the serial baseline (100%
availability — nothing silently dropped), restarts are visible in the
stats snapshot, and no shared-memory segment leaked.  When a prior
no-fault run's JSON from the same mode (smoke vs full) is present, the
chaos invocation also compares its own healthy-path throughput against
it.  The comparison is a hard failure only under ``--smoke`` — the CI
pairing where the reference was written seconds earlier by the same
runner (with one remeasure to absorb a scheduler-noise spike); at full
scale qps across invocations is dominated by single-box noise, so the
check is reported as a warning.  Tolerance:
``--chaos-overhead-tolerance`` (default 10%).  Chaos results go to
``benchmarks/results/BENCH_serving_chaos.json``.

Usage:
    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke] [--chaos]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CajadeSession, ExplanationRequest
from repro.core.config import CajadeConfig
from repro.core.question import OutlierQuestion
from repro.serving import (
    ExplanationService,
    FaultPlan,
    ProcessPoolBackend,
    ServiceOverloadedError,
    canonical_payload,
)
from repro.serving.metrics import percentile

RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_serving.json"
)
CHAOS_RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_serving_chaos.json"
)


def build_universe(num_queries: int) -> list[ExplanationRequest]:
    """The distinct requests the stream draws from.

    Per workload query: its comparison question, an outlier variant on
    the primary side, and a smaller-``top_k`` rewrite of the comparison
    (same fingerprint, different output-relevant config — exercises the
    cache-key split).
    """
    from repro.datasets.workloads import nba_queries

    universe: list[ExplanationRequest] = []
    for workload in nba_queries()[:num_queries]:
        universe.append(ExplanationRequest(workload.sql, workload.question))
        universe.append(
            ExplanationRequest(
                workload.sql, OutlierQuestion(workload.question.primary)
            )
        )
        universe.append(
            ExplanationRequest(workload.sql, workload.question, top_k=3)
        )
    return universe


def build_chaos_universe(num_shards: int) -> list[ExplanationRequest]:
    """Workload queries whose fingerprints cover every shard.

    All three request variants of one query share its fingerprint, so
    each workload query exercises exactly one worker; the chaos plan
    can only kill a worker the stream actually visits.  Greedily picks
    queries until all ``num_shards`` shards are covered.
    """
    from repro.serving import shard_for

    from repro.datasets.workloads import nba_queries

    chosen: list = []
    covered: set[int] = set()
    for workload in nba_queries():
        shard = shard_for(
            ExplanationRequest(workload.sql, workload.question).fingerprint,
            num_shards,
        )
        if shard in covered:
            continue
        covered.add(shard)
        chosen.append(workload)
        if len(covered) == num_shards:
            break
    if len(covered) < num_shards:
        raise SystemExit(
            f"workload queries cover only shards {sorted(covered)} "
            f"of {num_shards}"
        )
    universe: list[ExplanationRequest] = []
    for workload in chosen:
        universe.append(ExplanationRequest(workload.sql, workload.question))
        universe.append(
            ExplanationRequest(
                workload.sql, OutlierQuestion(workload.question.primary)
            )
        )
    return universe


def zipf_stream(
    universe: list[ExplanationRequest],
    length: int,
    seed: int,
    exponent: float = 1.3,
) -> list[ExplanationRequest]:
    """A seeded stream where request i is drawn ∝ 1/rank^exponent."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(universe))]
    stream = rng.choices(universe, weights=weights, k=length)
    # Every distinct request appears at least once so both systems do
    # the same set of unique computations.
    for i, request in enumerate(universe):
        stream[i * (length // len(universe))] = request
    return stream


def run_serial(db, schema_graph, config, stream):
    """Stateless baseline: fresh session per request, one at a time."""
    payloads: list[str] = []
    latencies: list[float] = []
    start = time.perf_counter()
    for request in stream:
        t0 = time.perf_counter()
        session = CajadeSession(db, schema_graph, config)
        result = session.explain(request)
        payloads.append(canonical_payload(result))
        latencies.append(time.perf_counter() - t0)
    return payloads, time.perf_counter() - start, latencies


def run_service(db, schema_graph, config, stream, workers, cache_mb, depth):
    """The serving tier answering the same stream concurrently.

    Every request is submitted at once; the *server* sheds what it
    cannot queue (429 + Retry-After) and the client resubmits after the
    advertised delay — admission control lives server-side, not in a
    client semaphore.
    """
    backend = ProcessPoolBackend(
        db, schema_graph, config, num_shards=workers
    )
    t0 = time.perf_counter()
    backend.start()  # excluded from the measured window
    startup = time.perf_counter() - t0
    shared_bytes = backend.shared_bytes  # stop() releases the export

    async def drive():
        async with ExplanationService(
            backend,
            response_cache_mb=cache_mb,
            max_in_flight=depth,
            max_queue_depth=depth,
        ) as service:
            resubmissions = 0

            async def one(request):
                nonlocal resubmissions
                while True:
                    try:
                        return await service.submit(request)
                    except ServiceOverloadedError as exc:
                        resubmissions += 1
                        await asyncio.sleep(exc.retry_after or 0.05)

            start = time.perf_counter()
            responses = await asyncio.gather(*(one(r) for r in stream))
            elapsed = time.perf_counter() - start
            return (
                responses, elapsed, service.stats.snapshot(), resubmissions
            )

    responses, elapsed, stats, resubmissions = asyncio.run(drive())
    payloads = [r.payload for r in responses]
    latencies = [r.latency_seconds for r in responses]
    return (
        payloads, elapsed, latencies, stats, startup, shared_bytes,
        resubmissions,
    )


def run_chaos(db, schema_graph, config, stream, workers, kill_every, seed):
    """Replay the stream through a pool whose workers keep dying.

    Response cache off and one request in flight at a time: every
    stream entry executes on a worker and ticks the fault counters, so
    the seeded kill schedule is exactly reproducible.
    """
    plan = FaultPlan.kill_every(kill_every, seed=seed)
    backend = ProcessPoolBackend(
        db, schema_graph, config, num_shards=workers, fault_plan=plan
    )
    backend.start()
    segment_names = backend._export.handle.segment_names

    async def drive():
        async with ExplanationService(
            backend,
            response_cache_mb=0.0,
            max_retries=3,
            retry_backoff=0.05,
        ) as service:
            start = time.perf_counter()
            responses = [await service.submit(r) for r in stream]
            elapsed = time.perf_counter() - start
            return responses, elapsed, service.stats.snapshot()

    responses, elapsed, stats = asyncio.run(drive())

    from multiprocessing import shared_memory

    leaked = []
    for name in segment_names:
        try:
            shared_memory.SharedMemory(name=name).close()
            leaked.append(name)
        except FileNotFoundError:
            pass
    payloads = [r.payload for r in responses]
    return payloads, elapsed, stats, plan, leaked


def summarize(name, elapsed, latencies):
    qps = len(latencies) / elapsed if elapsed > 0 else float("inf")
    p50 = percentile(latencies, 50.0) * 1e3
    p99 = percentile(latencies, 99.0) * 1e3
    print(
        f"{name}: {len(latencies)} requests in {elapsed:6.2f}s  "
        f"({qps:6.2f} qps, p50 {p50:7.2f}ms, p99 {p99:8.2f}ms)"
    )
    return {
        "requests": len(latencies),
        "seconds": round(elapsed, 4),
        "qps": round(qps, 3),
        "latency_p50_ms": round(p50, 3),
        "latency_p99_ms": round(p99, 3),
    }


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba

    reference_qps = None
    if args.chaos and RESULTS_PATH.exists():
        try:
            prior = json.loads(RESULTS_PATH.read_text())
            if bool(prior.get("smoke")) == bool(args.smoke):
                reference_qps = prior["service"]["qps"]
            else:
                print(
                    "prior results JSON is from a different mode "
                    "(smoke vs full); overhead check skipped"
                )
        except (KeyError, ValueError):
            reference_qps = None

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    config = CajadeConfig(max_join_edges=2, top_k=10, seed=2)

    universe = build_universe(args.queries)
    stream = zipf_stream(universe, args.length, seed=args.seed)
    distinct = len({id(r) for r in stream})
    print(
        f"stream: {len(stream)} requests over {len(universe)} distinct "
        f"({distinct} drawn), zipf seed {args.seed}"
    )

    print("serial (stateless one-shot per request):", flush=True)
    serial_payloads, t_serial, serial_lat = run_serial(
        db, schema_graph, config, stream
    )
    serial = summarize("serial ", t_serial, serial_lat)

    print(
        f"service ({args.workers} workers, "
        f"{args.response_cache_mb:g}MB response cache, "
        f"max_in_flight={args.depth}):",
        flush=True,
    )
    (
        service_payloads,
        t_service,
        service_lat,
        stats,
        startup,
        shared_bytes,
        resubmissions,
    ) = run_service(
        db,
        schema_graph,
        config,
        stream,
        args.workers,
        args.response_cache_mb,
        args.depth,
    )
    service = summarize("service", t_service, service_lat)
    print(
        f"  pool startup {startup:.2f}s (excluded), "
        f"{shared_bytes / 1e6:.2f}MB shared, "
        f"{stats['cache_hits']} cache hits + {stats['coalesced']} "
        f"coalesced of {stats['requests']} requests, "
        f"{stats['batches']} batches, {stats['shed']} shed "
        f"({resubmissions} resubmitted), {stats['retries']} retries"
    )

    mismatches = sum(
        1 for a, b in zip(serial_payloads, service_payloads) if a != b
    )
    if mismatches:
        print(f"FAIL: {mismatches}/{len(stream)} responses differ")
        return 1
    print("every service response byte-identical to the serial answer")

    speedup = t_serial / t_service if t_service > 0 else float("inf")
    print(f"throughput: {speedup:.2f}x serial")
    payload = {
        "smoke": bool(args.smoke),
        "scale": args.scale,
        "stream_length": len(stream),
        "distinct_requests": len(universe),
        "workers": args.workers,
        "response_cache_mb": args.response_cache_mb,
        "max_in_flight": args.depth,
        "serial": serial,
        "service": service,
        "speedup": round(speedup, 3),
        "pool_startup_seconds": round(startup, 3),
        "shared_memory_bytes": shared_bytes,
        "shed": stats["shed"],
        "client_resubmissions": resubmissions,
        "retries": stats["retries"],
        "restarts": stats["health"]["restarts"],
        "availability_pct": round(stats["availability"] * 100.0, 3),
        "service_stats": stats,
    }
    if not args.chaos:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULTS_PATH}")

    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < {args.min_speedup:g}x")
        return 1

    if args.chaos:
        return run_chaos_pass(
            args, db, schema_graph, config, payload, reference_qps
        )
    print("OK")
    return 0


def run_chaos_pass(
    args, db, schema_graph, config, healthy_payload, reference_qps
) -> int:
    """The supervised-recovery pass behind ``--chaos``."""
    chaos_universe = build_chaos_universe(args.workers)
    # Round-robin rather than zipf: with the response cache off every
    # entry executes, so each shard's request counter climbs evenly and
    # the kill-every-N schedule hits every worker at least twice.
    per_shard = args.chaos_kill_every * 2 + 2  # 2 kills + retry slack
    chaos_stream = [
        chaos_universe[i % len(chaos_universe)]
        for i in range(per_shard * args.workers)
    ]
    print(
        f"chaos: {len(chaos_stream)} sequential requests, "
        f"kill every {args.chaos_kill_every} per shard "
        f"(seed {args.seed}), response cache off",
        flush=True,
    )

    serial_payloads, _t, _lat = run_serial(
        db, schema_graph, config, chaos_stream
    )
    payloads, elapsed, stats, plan, leaked = run_chaos(
        db,
        schema_graph,
        config,
        chaos_stream,
        args.workers,
        args.chaos_kill_every,
        args.seed,
    )

    restarts_per_shard = {
        h["shard"]: h["restarts"] for h in stats["health"]["shards"]
    }
    mismatches = sum(
        1 for a, b in zip(serial_payloads, payloads) if a != b
    )
    availability = stats["availability"]
    print(
        f"  {len(payloads)} answered in {elapsed:.2f}s, "
        f"{stats['health']['restarts']} restarts "
        f"{restarts_per_shard}, {stats['retries']} retries, "
        f"availability {availability * 100.0:.1f}%"
    )

    failures: list[str] = []
    if mismatches:
        failures.append(
            f"{mismatches}/{len(chaos_stream)} responses differ from serial"
        )
    if len(payloads) != len(chaos_stream):
        failures.append(
            f"{len(chaos_stream) - len(payloads)} requests dropped"
        )
    if availability < 1.0:
        failures.append(f"availability {availability * 100.0:.1f}% < 100%")
    short = {
        s: n for s, n in restarts_per_shard.items() if n < 2
    }
    if short:
        failures.append(f"shards killed fewer than twice: {short}")
    if stats["health"]["quarantined"]:
        failures.append(
            f"unexpected quarantine: {stats['health']['quarantined']}"
        )
    if leaked:
        failures.append(f"leaked shm segments: {leaked}")

    healthy_qps = healthy_payload["service"]["qps"]
    overhead_ok = True
    if reference_qps:
        floor = (1.0 - args.chaos_overhead_tolerance) * reference_qps
        overhead_ok = healthy_qps >= floor
        if not overhead_ok and args.smoke:
            # One remeasure before failing CI: at smoke scale a single
            # healthy pass is cheap and a scheduler-noise spike on a
            # shared runner is the common cause of a miss.
            print(
                f"  healthy-path {healthy_qps:.2f} qps below floor "
                f"{floor:.2f}; remeasuring once",
                flush=True,
            )
            stream = zipf_stream(
                build_universe(args.queries), args.length, seed=args.seed
            )
            _, t_retry, _, _, _, _, _ = run_service(
                db,
                schema_graph,
                config,
                stream,
                args.workers,
                args.response_cache_mb,
                args.depth,
            )
            healthy_qps = max(
                healthy_qps, round(len(stream) / t_retry, 3)
            )
            overhead_ok = healthy_qps >= floor
        verdict = "ok" if overhead_ok else (
            "FAIL" if args.smoke else "WARN"
        )
        print(
            f"  healthy-path {healthy_qps:.2f} qps vs no-fault run "
            f"{reference_qps:.2f} qps (floor {floor:.2f}, {verdict})"
        )
        if not overhead_ok:
            if args.smoke:
                failures.append(
                    f"healthy-path qps {healthy_qps:.2f} fell more than "
                    f"{args.chaos_overhead_tolerance:.0%} below the "
                    f"no-fault run's {reference_qps:.2f}"
                )
            else:
                print(
                    "  (warning only outside --smoke: full-scale qps "
                    "across invocations is dominated by single-box "
                    "scheduler noise)"
                )
    else:
        print("  no comparable no-fault results JSON; overhead check skipped")

    chaos_payload = {
        "smoke": bool(args.smoke),
        "scale": args.scale,
        "stream_length": len(chaos_stream),
        "workers": args.workers,
        "kill_every": args.chaos_kill_every,
        "fault_plan": plan.describe(),
        "seconds": round(elapsed, 4),
        "restarts": stats["health"]["restarts"],
        "restarts_per_shard": restarts_per_shard,
        "retries": stats["retries"],
        "availability_pct": round(availability * 100.0, 3),
        "byte_identical": mismatches == 0,
        "healthy_qps": healthy_qps,
        "reference_qps": reference_qps,
        "healthy_within_tolerance": overhead_ok,
        "service_stats": stats,
    }
    CHAOS_RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    CHAOS_RESULTS_PATH.write_text(
        json.dumps(chaos_payload, indent=2) + "\n"
    )
    print(f"wrote {CHAOS_RESULTS_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "every admitted request survived the kill schedule byte-identical"
    )
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: small scale and stream, 2 workers",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.1; smoke 0.04)")
    parser.add_argument("--length", type=int, default=None,
                        help="stream length (default 36; smoke 15)")
    parser.add_argument("--queries", type=int, default=None,
                        help="workload queries in the universe "
                        "(default 2; smoke 1)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker pool shards (default 2)")
    parser.add_argument("--response-cache-mb", type=float, default=64.0)
    parser.add_argument("--depth", type=int, default=8,
                        help="server-side max in-flight before shedding "
                        "(default 8)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required service/serial throughput ratio")
    parser.add_argument("--chaos", action="store_true",
                        help="add the supervised-recovery pass (seeded "
                        "kill-every-Nth fault plan)")
    parser.add_argument("--chaos-kill-every", type=int, default=3,
                        help="kill each shard's worker on every Nth "
                        "request it executes (default 3)")
    parser.add_argument("--chaos-overhead-tolerance", type=float,
                        default=0.10,
                        help="allowed healthy-path qps drop vs the "
                        "no-fault run's JSON (default 0.10)")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.04 if args.smoke else 0.1
    if args.length is None:
        args.length = 15 if args.smoke else 36
    if args.queries is None:
        args.queries = 1 if args.smoke else 2
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
