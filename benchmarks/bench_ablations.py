"""Ablations of CaJaDE's design choices (DESIGN.md §5).

Not paper figures, but each isolates one optimization the paper's text
motivates:

- Proposition 3.1 recall pruning — candidate count with pruning on/off;
- λqcost join-graph skipping — enumeration outcomes per threshold;
- diversity reranking — duplicate-attribute overlap in the top-k with
  and without the wscore reranking.
"""

import numpy as np
import pytest

from repro.api import CajadeSession
from repro.core import (
    CajadeConfig,
    ComparisonQuestion,
    materialize_apt,
    mine_apt,
)
from repro.datasets import user_study_query
from repro.db import ProvenanceTable, parse_sql

from conftest import format_table

BASE = dict(
    max_join_edges=1, top_k=10, f1_sample_rate=1.0,
    num_selected_attrs=3, seed=2,
)


def _single_apt(db):
    wq = user_study_query()
    query = parse_sql(wq.sql)
    pt = ProvenanceTable.compute(query, db)
    resolved = wq.question.resolve(pt)
    from repro.core.enumeration import enumerate_join_graphs
    from repro.core.schema_graph import SchemaGraph

    config = CajadeConfig(**BASE).with_overrides(max_join_edges=2)
    graphs = list(
        enumerate_join_graphs(
            SchemaGraph.from_database(db), query, pt, db, config
        )
    )
    biggest = max(graphs, key=lambda g: g.num_edges)
    restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])
    apt = materialize_apt(biggest, pt, db, restrict_row_ids=restrict)
    return apt, resolved


@pytest.mark.benchmark(group="ablations")
def test_ablation_recall_pruning(benchmark, nba, report):
    db, _ = nba
    apt, resolved = _single_apt(db)

    def run():
        out = {}
        for pruning in (True, False):
            config = CajadeConfig(**BASE).with_overrides(
                use_recall_pruning=pruning
            )
            result = mine_apt(
                apt, resolved, config, np.random.default_rng(2)
            )
            out[pruning] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_recall_pruning",
        format_table(
            ["pruning", "candidates examined", "best F-score"],
            [
                [
                    "on" if k else "off",
                    v.candidates_examined,
                    f"{max((m.f_score for m in v.patterns), default=0):.3f}",
                ]
                for k, v in results.items()
            ],
        ),
    )
    # Pruning must reduce work without losing the best pattern.
    assert (
        results[True].candidates_examined
        <= results[False].candidates_examined
    )
    best_on = max((m.f_score for m in results[True].patterns), default=0)
    best_off = max((m.f_score for m in results[False].patterns), default=0)
    assert best_on >= best_off - 0.05


@pytest.mark.benchmark(group="ablations")
def test_ablation_qcost_skipping(benchmark, nba, report):
    db, sg = nba
    wq = user_study_query()

    def run():
        out = {}
        for threshold in (2e4, 2e5, 1e9):
            config = CajadeConfig(**BASE).with_overrides(
                max_join_edges=2, qcost_threshold=threshold
            )
            result = CajadeSession(db, sg, config).explain(
                wq.sql, wq.question
            )
            out[threshold] = result.enumeration
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_qcost",
        format_table(
            ["λqcost", "valid", "skipped (cost)", "skipped (pk)"],
            [
                [f"{t:g}", e.valid, e.invalid_cost, e.invalid_pk]
                for t, e in outcomes.items()
            ],
        ),
    )
    thresholds = sorted(outcomes)
    valid_counts = [outcomes[t].valid for t in thresholds]
    assert valid_counts == sorted(valid_counts)
    assert outcomes[thresholds[0]].invalid_cost > 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_diversity(benchmark, nba, report):
    db, sg = nba
    wq = user_study_query()

    def overlap(result) -> float:
        """Mean pairwise attribute-set Jaccard of the top-k patterns."""
        patterns = [e.pattern for e in result.explanations]
        if len(patterns) < 2:
            return 0.0
        total = count = 0
        for i in range(len(patterns)):
            for j in range(i + 1, len(patterns)):
                a, b = patterns[i].attributes, patterns[j].attributes
                union = a | b
                if union:
                    total += len(a & b) / len(union)
                    count += 1
        return total / count if count else 0.0

    def run():
        out = {}
        for diverse in (True, False):
            config = CajadeConfig(**BASE).with_overrides(
                max_join_edges=2, use_diversity=diverse
            )
            result = CajadeSession(db, sg, config).explain(
                wq.sql, wq.question
            )
            out[diverse] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    overlaps = {k: overlap(v) for k, v in results.items()}
    report(
        "ablation_diversity",
        format_table(
            ["diversity reranking", "mean pairwise attribute Jaccard"],
            [["on" if k else "off", f"{v:.3f}"] for k, v in overlaps.items()],
        ),
    )
    # The reranking should not increase redundancy.
    assert overlaps[True] <= overlaps[False] + 0.05
