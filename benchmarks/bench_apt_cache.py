"""Benchmark: shared-prefix APT materialization, cache-on vs cache-off.

Reproduces the materialization side of the paper's Figure 8 workload:
the NBA user-study query over the (λ#edges × λF1-samp) grid, with
λ#edges swept 0..4.  Every grid cell materializes the APT of each
BFS-enumerated join graph of that size or smaller (per-size caps keep
the deepest points tractable; caps take the BFS prefix, so parents stay
in the set).  λF1-samp only affects mining, so the three F1 columns of
the paper's grid repeat the exact same materialization work — which is
the point of the comparison:

- *cache-off*: every cell rebuilds every APT from the provenance table
  with ``materialize_apt`` — the pre-engine behaviour of the explainer
  when exploring the Fig. 8 grid;
- *cache-on*: one :class:`repro.engine.MaterializationEngine` is shared
  across the grid, so graphs extending an already-materialized prefix
  reuse its intermediate join, and re-visited graphs (smaller sweep
  points, repeated F1 columns) are full-plan trie hits.

Both modes are verified byte-identical (schema, rows, ``__pt_row_id``)
for every join graph at the deepest sweep point, and a full explanation
run is compared across cache-off / cache-on / ``workers > 1`` for
byte-identical JSON output and F-scores.  The full run asserts the
cache delivers at least a 2x materialization speedup over the grid;
``--quick`` keeps the correctness checks but skips the speedup
assertion (CI smoke mode).

Usage:
    PYTHONPATH=src python benchmarks/bench_apt_cache.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import CajadeSession
from repro.core.apt import materialize_apt
from repro.core.config import CajadeConfig
from repro.core.enumeration import enumerate_join_graphs
from repro.db.parser import parse_sql
from repro.db.provenance import ProvenanceTable
from repro.db.relation import Relation
from repro.engine import MaterializationEngine


def relations_identical(a: Relation, b: Relation) -> bool:
    """Byte-identical check: schema, row order, and every column."""
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        left, right = a.column(name), b.column(name)
        if left.dtype != right.dtype:
            return False
        if left.dtype.kind == "f":
            if not np.array_equal(left, right, equal_nan=True):
                return False
        elif not np.array_equal(left, right):
            return False
    return True


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, user_study_query

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    workload = user_study_query()
    config = CajadeConfig(
        max_join_edges=args.edges,
        num_selected_attrs=3,
        top_k=10,
        seed=2,
    )

    query = parse_sql(workload.sql)
    pt = ProvenanceTable.compute(query, db)
    resolved = workload.question.resolve(pt)
    restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])

    caps = {3: args.cap3, 4: args.cap4}
    counts: dict[int, int] = {}
    graphs = []
    for graph in enumerate_join_graphs(schema_graph, query, pt, db, config):
        size = graph.num_edges
        if counts.get(size, 0) >= caps.get(size, 10**9):
            if size >= args.edges:
                break
            continue
        counts[size] = counts.get(size, 0) + 1
        graphs.append(graph)
    sizes = " ".join(f"{k}e:{v}" for k, v in sorted(counts.items()))
    print(f"{len(graphs)} join graphs up to size {args.edges} ({sizes})")

    # Warm-up (first-touch allocation and code paths), untimed.
    for graph in graphs[: min(len(graphs), 40)]:
        materialize_apt(graph, pt, db, restrict_row_ids=restrict)

    # -- the Fig. 8 (λ#edges x λF1) grid ------------------------------
    # Cache-off and cache-on materialization run back-to-back inside
    # every grid cell so slow drift in machine speed (frequency scaling,
    # page-cache state) hits both modes equally instead of whichever
    # sweep happened to run later.
    sweep = list(range(args.edges + 1))
    f1_rates = [0.1, 0.3, 1.0]
    subsets = {
        k: [g for g in graphs if g.num_edges <= k] for k in sweep
    }

    engine = MaterializationEngine(
        pt, db, restrict_row_ids=restrict, cache_mb=args.cache_mb
    )
    off_seconds = {k: 0.0 for k in sweep}
    on_seconds = {k: 0.0 for k in sweep}
    off_apts = on_apts = None
    for _rate in f1_rates:
        for k in sweep:
            start = time.perf_counter()
            apts = [
                materialize_apt(g, pt, db, restrict_row_ids=restrict)
                for g in subsets[k]
            ]
            off_seconds[k] += time.perf_counter() - start
            if k == args.edges:
                off_apts = apts
            del apts

            start = time.perf_counter()
            apts = engine.materialize_many(subsets[k])
            on_seconds[k] += time.perf_counter() - start
            if k == args.edges:
                on_apts = apts
            del apts

    assert off_apts is not None and on_apts is not None
    mismatched = [
        g.structure()
        for g, off, on in zip(subsets[args.edges], off_apts, on_apts)
        if not relations_identical(off.relation, on.relation)
    ]
    if mismatched:
        print(f"FAIL: {len(mismatched)} APT mismatches: {mismatched[:3]}")
        return 1

    print(
        f"{'λ#edges':>8s} {'graphs':>7s} {'cells':>6s} "
        f"{'cache-off':>10s} {'cache-on':>10s}"
    )
    for k in sweep:
        print(
            f"{k:>8d} {len(subsets[k]):>7d} {len(f1_rates):>6d} "
            f"{off_seconds[k]:>9.2f}s {on_seconds[k]:>9.2f}s"
        )
    t_off = sum(off_seconds.values())
    t_on = sum(on_seconds.values())
    speedup = t_off / t_on if t_on > 0 else float("inf")
    print(
        f"{'total':>8s} {'':>7s} {'':>6s} {t_off:>9.2f}s {t_on:>9.2f}s "
        f"-> {speedup:.2f}x"
    )
    print(engine.stats.describe())
    print(
        f"all {len(subsets[args.edges])} APTs byte-identical across modes"
    )

    # -- end-to-end explanation equivalence ---------------------------
    explain_config = config.with_overrides(max_join_edges=args.explain_edges)
    runs = {
        "cache-off": explain_config.with_overrides(apt_cache_mb=0.0),
        "cache-on": explain_config,
        f"workers={args.workers}": explain_config.with_overrides(
            workers=args.workers
        ),
    }
    outputs: dict[str, str] = {}
    for label, run_config in runs.items():
        start = time.perf_counter()
        result = CajadeSession(db, schema_graph, run_config).explain(
            workload.sql, workload.question
        )
        elapsed = time.perf_counter() - start
        # Compare everything the user sees except the cache counters,
        # which legitimately differ between cache-on and cache-off.
        payload = json.loads(result.to_json())
        payload.pop("apt_cache", None)
        outputs[label] = json.dumps(payload, sort_keys=True)
        scores = [f"{e.f_score:.4f}" for e in result.explanations[:3]]
        print(
            f"explain [{label:>12s}]: {elapsed:6.2f}s "
            f"top F-scores {' '.join(scores)}"
        )
    baseline = outputs["cache-off"]
    for label, payload in outputs.items():
        if payload != baseline:
            print(f"FAIL: {label} explanations differ from cache-off")
            return 1
    print("explanations and F-scores byte-identical across all modes")

    if not args.quick and speedup < 2.0:
        print(f"FAIL: cache speedup {speedup:.2f}x < 2x")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller workload, no speedup assertion",
    )
    parser.add_argument("--scale", type=float, default=0.03,
                        help="NBA dataset scale (default 0.03)")
    parser.add_argument("--edges", type=int, default=None,
                        help="deepest λ#edges sweep point (default 4; "
                             "quick 3)")
    parser.add_argument("--explain-edges", type=int, default=None,
                        help="max join-graph size for the end-to-end "
                             "equivalence runs (default 2; quick 1)")
    parser.add_argument("--cap3", type=int, default=None,
                        help="BFS-prefix cap on size-3 graphs "
                             "(default 80; quick 60)")
    parser.add_argument("--cap4", type=int, default=40,
                        help="BFS-prefix cap on size-4 graphs")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-mb", type=float, default=2048.0,
                        help="engine cache budget for the sweep")
    args = parser.parse_args(argv)
    if args.edges is None:
        args.edges = 3 if args.quick else 4
    if args.explain_edges is None:
        args.explain_edges = 1 if args.quick else 2
    if args.cap3 is None:
        args.cap3 = 60 if args.quick else 80
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
