"""Benchmark: histogram frontier-at-a-time forest, on vs off.

Runs the Qnba scaling workload of the paper's Figure 9 (the user-study
query UQ1 over a generated NBA instance) end to end and compares the
*Feature Selection* StepTimer box between forest learners:

- *hist-off*: the reference pipeline — one recursive CART tree at a
  time, every node re-touching its rows once per feature;
- *hist-on*: the histogram learner — all trees of a forest grown
  breadth-first in lockstep, per-(node, feature, bin) class histograms
  from one composite-key ``np.bincount`` per depth, and Gini gain for
  every candidate split of every frontier node from cumulative-sum
  histograms;
- *hist-on workers=N*: the same, mined with a worker pool.

The histogram learner is a **bitwise twin** of the reference (same
bootstrap draws, trees, thresholds, importances), so every mode's
ranked explanations must be byte-identical; the run fails otherwise.
A >= 2x median speedup on *Feature Selection* (hist-on vs hist-off) is
asserted in both full and ``--smoke`` mode (the paper-scale target is
>= 5x; smoke keeps the bar lower only because small instances spend
proportionally more time outside the forest).  Machine-readable
medians and the histogram work gauges (nodes grown, histograms built,
splits evaluated) go to ``benchmarks/results/BENCH_feature_selection
.json`` (the smoke payload carries ``"smoke": true`` — the committed
copy must come from a full run; regenerate with no flags before
committing it).

Usage:
    PYTHONPATH=src python benchmarks/bench_feature_selection.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CajadeSession
from repro.core.config import CajadeConfig
from repro.core.timing import (
    FEATURE_SELECTION,
    HIST_HISTOGRAMS_BUILT,
    HIST_NODES_GROWN,
    HIST_SPLITS_EVALUATED,
    StepTimer,
)

RESULTS_PATH = (
    Path(__file__).resolve().parent
    / "results"
    / "BENCH_feature_selection.json"
)


def ranked_payload(result) -> str:
    """Everything the user sees, minus cache counters (which legitimately
    differ between execution strategies)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def run_mode(db, schema_graph, workload, config, repeats):
    """Fresh-session runs of one mode.

    Returns per-repeat *Feature Selection* seconds, wall totals, the
    ranked payload, and the last repeat's histogram work gauges.
    """
    fs_seconds = []
    totals = []
    payload = None
    gauges = {}
    for _ in range(repeats):
        timer = StepTimer()
        session = CajadeSession(db, schema_graph, config)
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question, timer=timer)
        totals.append(time.perf_counter() - start)
        fs_seconds.append(timer.seconds(FEATURE_SELECTION))
        payload = ranked_payload(result)
        gauges = {
            "nodes_grown": timer.counter(HIST_NODES_GROWN),
            "histograms_built": timer.counter(HIST_HISTOGRAMS_BUILT),
            "splits_evaluated": timer.counter(HIST_SPLITS_EVALUATED),
        }
    return fs_seconds, totals, payload, gauges


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, query_by_name, user_study_query

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    if args.workload == "fig9":
        workload = user_study_query()
    else:
        workload = query_by_name(args.workload)
    base = CajadeConfig(
        max_join_edges=args.edges,
        num_selected_attrs=3,
        top_k=10,
        seed=2,
    )
    modes = {
        "hist-off": base.with_overrides(use_hist_forest=False),
        "hist-on": base,
        f"hist-on workers={args.workers}": base.with_overrides(
            workers=args.workers
        ),
    }
    print(
        f"{workload.name}: λ#edges={args.edges}, "
        f"{args.repeats} repeat(s) per mode"
    )

    results = {}
    for label, config in modes.items():
        fs, totals, payload, gauges = run_mode(
            db, schema_graph, workload, config, args.repeats
        )
        results[label] = (fs, totals, payload, gauges)
        shown = " ".join(f"{s:.2f}" for s in fs)
        print(
            f"{label:>22s}: Feature Selection {shown}s "
            f"(median {statistics.median(fs):.2f}s, "
            f"total median {statistics.median(totals):.2f}s)"
        )
        if gauges["nodes_grown"]:
            print(f"{'':>22s}  hist {gauges}")

    off_fs, off_totals, off_payload, _ = results["hist-off"]
    on_fs, on_totals, on_payload, on_gauges = results["hist-on"]
    median_off = statistics.median(off_fs)
    median_on = statistics.median(on_fs)
    speedup = median_off / median_on if median_on > 0 else float("inf")
    print(
        f"Feature Selection: {median_off:.2f}s -> {median_on:.2f}s "
        f"= {speedup:.2f}x"
    )

    byte_identical = all(
        payload == off_payload for _, _, payload, _ in results.values()
    )
    report = {
        "benchmark": "bench_feature_selection",
        "workload": workload.name
        + (" (Fig-9 NBA scaling workload)" if args.workload == "fig9" else ""),
        "scale": args.scale,
        "max_join_edges": args.edges,
        "repeats": args.repeats,
        "workers": args.workers,
        "smoke": args.smoke,
        "step_measured": FEATURE_SELECTION,
        "median_fs_seconds_hist_off": round(median_off, 4),
        "median_fs_seconds_hist_on": round(median_on, 4),
        "median_total_seconds_hist_off": round(
            statistics.median(off_totals), 4
        ),
        "median_total_seconds_hist_on": round(
            statistics.median(on_totals), 4
        ),
        "speedup": round(speedup, 2),
        "hist_gauges": on_gauges,
        "byte_identical": byte_identical,
    }
    target = RESULTS_PATH
    if args.smoke and RESULTS_PATH.exists():
        try:
            committed = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            committed = {}
        if committed.get("smoke") is False:
            # Never clobber the committed full-run medians with smoke
            # numbers; smoke output goes to a sibling (gitignored) file.
            target = RESULTS_PATH.with_name(
                "BENCH_feature_selection_smoke.json"
            )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {target}")

    if not byte_identical:
        for label, (_, _, payload, _) in results.items():
            if payload != off_payload:
                print(f"FAIL: {label} explanations differ from hist-off")
        return 1
    print(
        "ranked explanations byte-identical across hist-forest on/off, "
        f"serial and workers={args.workers}"
    )
    if speedup < 2.0:
        print(f"FAIL: Feature Selection speedup {speedup:.2f}x < 2x")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: small workload, 1 repeat; byte-identity "
             "and the >= 2x Feature Selection speedup are still "
             "asserted",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.25, the "
                             "Fig-9 top point; smoke 0.08)")
    parser.add_argument("--edges", type=int, default=2,
                        help="λ#edges for all runs (default 2)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per mode (default 3; smoke 1)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--workload", default="fig9",
                        help="'fig9' (user-study Q1prime, the default) "
                             "or a workload name like Qnba1 — Qnba1 "
                             "runs ~750 forests per question and shows "
                             "the learner's upper end (~9-10x)")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.08 if args.smoke else 0.25
    if args.repeats is None:
        args.repeats = 1 if args.smoke else 3
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
