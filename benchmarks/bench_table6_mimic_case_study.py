"""TAB6 — MIMIC case study: top-3 explanations per query (paper Table 6).

Runs Qmimic1..Qmimic5 with their user questions and checks the paper's
signal families: expire flag / stay length for Qmimic1, emergency
admissions for Qmimic2/4, stay-length + chapter-16 procedures for
Qmimic3, ethnicity-correlated attributes for Qmimic5.
"""

import pytest

from repro.api import CajadeSession
from repro.core import CajadeConfig
from repro.datasets import mimic_queries

BASE = dict(
    max_join_edges=2, top_k=10, f1_sample_rate=0.5,
    num_selected_attrs=4, seed=3,
)

EXPECTED_SIGNALS = {
    "Qmimic1": {"expire_flag", "hospital_stay_length",
                "hospital_expire_flag", "admission_type", "insurance",
                "discharge_location"},
    "Qmimic2": {"admission_type", "expire_flag", "gender", "age",
                "hospital_expire_flag", "admission_location",
                "hospital_stay_length", "discharge_location"},
    "Qmimic3": {"hospital_stay_length", "chapter", "dbsource", "los",
                "los_group", "admission_type", "hospital_expire_flag",
                "discharge_location"},
    "Qmimic4": {"expire_flag", "age", "admission_type",
                "hospital_stay_length", "hospital_expire_flag",
                "admission_location", "discharge_location"},
    "Qmimic5": {"hospital_stay_length", "ethnicity", "age",
                "admission_type", "religion", "language", "chapter"},
}


@pytest.mark.benchmark(group="table6")
def test_table6_mimic_case_study(benchmark, mimic, report):
    db, sg = mimic
    def run():
        # A fresh session per round: the benchmark measures the cold
        # pipeline, and session warmth must not leak across rounds.
        explainer = CajadeSession(db, sg, CajadeConfig(**BASE))
        out = {}
        for workload in mimic_queries():
            result = explainer.explain(workload.sql, workload.question)
            out[workload.name] = (workload, result)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, (workload, result) in results.items():
        lines.append(f"=== {name}: {workload.description} ===")
        lines.append(f"question: {workload.question.describe()}")
        for rank, e in enumerate(result.top(3), start=1):
            lines.append(f"  {rank}. {e.describe()}")
        lines.append("")
    report("table6_mimic_case_study", "\n".join(lines))

    for name, (workload, result) in results.items():
        assert result.explanations, f"{name} produced no explanations"
        used = set()
        for e in result.top(5):
            used |= {a.split(".")[-1] for a in e.pattern.attributes}
        overlap = used & EXPECTED_SIGNALS[name]
        assert overlap, (
            f"{name}: none of the paper's signal families "
            f"{EXPECTED_SIGNALS[name]} appear in {used}"
        )
