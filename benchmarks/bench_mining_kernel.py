"""Benchmark: columnar mining kernel and code-based LCA, on vs off.

Runs the Qnba scaling workload of the paper's Figure 9 (the user-study
query UQ1 over a generated NBA instance) end to end and compares step
seconds from the StepTimer: *F-score Calc.* + *Refine Patterns* for the
scoring kernel, and *Gen. Pat. Cand.* for the code-based LCA candidate
generation that runs on the kernel's dictionary codes.

Modes:

- *kernel-off*: ``use_kernel=False``; every candidate pattern re-scans
  the APT through per-row Python matching, coverage finishes with a
  dict loop, and LCA generation builds a Pattern per agreeing row pair;
- *code-lca-off*: kernel scoring on, ``use_code_lca=False`` — LCA
  candidates still come from the object-based reference loop (isolates
  the LCA rewrite from the scoring kernel);
- *kernel-on*: dictionary-encoded int32 codes end to end — dense-slot
  scatter coverage, byte-bounded mask LRU with incremental
  ``parent & predicate`` reuse, and vectorized code-based LCA
  (broadcast pairwise agreement, int-row-key dedup, Patterns built only
  for deduplicated survivors);
- *kernel-on --workers N*: the same, mined with a worker pool.

Every mode's ranked explanations must be byte-identical (kernel and
code-LCA are execution strategies, never a semantics change); the run
fails otherwise.  The full run additionally asserts a >= 3x median
speedup on the scoring steps (kernel-on vs kernel-off) and a >= 2x
median speedup on *Gen. Pat. Cand.* (kernel-on vs code-lca-off);
``--smoke`` keeps the identity checks (and enables ``kernel_verify``
cross-checking on the kernel run) but skips the speedup assertions.
Machine-readable medians go to
``benchmarks/results/BENCH_mining.json`` (the smoke payload carries
``"smoke": true`` — the committed copy of the file must come from a
full run; regenerate it with no flags before committing it).

Usage:
    PYTHONPATH=src python benchmarks/bench_mining_kernel.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CajadeSession
from repro.core.config import CajadeConfig
from repro.core.timing import (
    F_SCORE_CALC,
    GEN_PATTERN_CANDIDATES,
    KERNEL_FULL_EVALS,
    KERNEL_INCREMENTAL_EVALS,
    KERNEL_MASK_EVICTIONS,
    KERNEL_MASK_HITS,
    KERNEL_MASK_MISSES,
    LCA_PAIRS_EXAMINED,
    LCA_PATTERNS_BUILT,
    REFINE_PATTERNS,
    StepTimer,
)

RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "BENCH_mining.json"
)


def ranked_payload(result) -> str:
    """Everything the user sees, minus cache counters (which legitimately
    differ between execution strategies)."""
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True)


def run_mode(db, schema_graph, workload, config, repeats):
    """Fresh-session runs of one mode; returns per-repeat scoring-step
    seconds, per-repeat LCA-step seconds, totals, the ranked payload,
    and the last run's kernel/LCA counters."""
    step_seconds = []
    lca_seconds = []
    totals = []
    payload = None
    counters: dict[str, int] = {}
    for _ in range(repeats):
        timer = StepTimer()
        session = CajadeSession(db, schema_graph, config)
        start = time.perf_counter()
        result = session.explain(workload.sql, workload.question, timer=timer)
        totals.append(time.perf_counter() - start)
        step_seconds.append(
            timer.seconds(F_SCORE_CALC) + timer.seconds(REFINE_PATTERNS)
        )
        lca_seconds.append(timer.seconds(GEN_PATTERN_CANDIDATES))
        payload = ranked_payload(result)
        counters = {
            name: timer.counter(name)
            for name in (
                KERNEL_MASK_HITS,
                KERNEL_MASK_MISSES,
                KERNEL_MASK_EVICTIONS,
                KERNEL_INCREMENTAL_EVALS,
                KERNEL_FULL_EVALS,
                LCA_PAIRS_EXAMINED,
                LCA_PATTERNS_BUILT,
            )
            if timer.counter(name)
        }
    return step_seconds, lca_seconds, totals, payload, counters


def run(args: argparse.Namespace) -> int:
    from repro.datasets import load_nba, user_study_query

    print(f"loading NBA (scale={args.scale}) ...", flush=True)
    db, schema_graph = load_nba(scale=args.scale, seed=5)
    workload = user_study_query()
    base = CajadeConfig(
        max_join_edges=args.edges,
        num_selected_attrs=3,
        top_k=10,
        seed=2,
        kernel_cache_mb=args.kernel_cache_mb,
    )
    modes = {
        "kernel-off": base.with_overrides(use_kernel=False),
        "code-lca-off": base.with_overrides(use_code_lca=False),
        "kernel-on": base.with_overrides(kernel_verify=args.smoke),
        f"kernel-on workers={args.workers}": base.with_overrides(
            workers=args.workers
        ),
    }
    print(
        f"{workload.name}: Fig-9 scaling workload, λ#edges={args.edges}, "
        f"{args.repeats} repeat(s) per mode"
    )

    results = {}
    for label, config in modes.items():
        steps, lca, totals, payload, counters = run_mode(
            db, schema_graph, workload, config, args.repeats
        )
        results[label] = (steps, lca, totals, payload, counters)
        shown = " ".join(f"{s:.2f}" for s in steps)
        shown_lca = " ".join(f"{s:.2f}" for s in lca)
        print(
            f"{label:>24s}: F-score Calc.+Refine {shown}s "
            f"(median {statistics.median(steps):.2f}s), "
            f"Gen. Pat. Cand. {shown_lca}s "
            f"(median {statistics.median(lca):.2f}s, "
            f"total median {statistics.median(totals):.2f}s)"
        )
        if counters:
            print(f"{'':>24s}  {counters}")

    off_steps, _, off_totals, off_payload, _ = results["kernel-off"]
    on_steps, on_lca, on_totals, on_payload, on_counters = results[
        "kernel-on"
    ]
    _, ref_lca, _, _, _ = results["code-lca-off"]
    median_off = statistics.median(off_steps)
    median_on = statistics.median(on_steps)
    speedup = median_off / median_on if median_on > 0 else float("inf")
    print(
        f"F-score Calc. + Refine Patterns: {median_off:.2f}s -> "
        f"{median_on:.2f}s  = {speedup:.2f}x"
    )
    median_lca_ref = statistics.median(ref_lca)
    median_lca_on = statistics.median(on_lca)
    lca_speedup = (
        median_lca_ref / median_lca_on if median_lca_on > 0 else float("inf")
    )
    print(
        f"Gen. Pat. Cand. (code-based LCA): {median_lca_ref:.2f}s -> "
        f"{median_lca_on:.2f}s  = {lca_speedup:.2f}x"
    )

    byte_identical = all(
        payload == off_payload for _, _, _, payload, _ in results.values()
    )
    report = {
        "benchmark": "bench_mining_kernel",
        "workload": f"{workload.name} (Fig-9 NBA scaling workload)",
        "scale": args.scale,
        "max_join_edges": args.edges,
        "repeats": args.repeats,
        "workers": args.workers,
        "kernel_cache_mb": args.kernel_cache_mb,
        "smoke": args.smoke,
        "steps_measured": [F_SCORE_CALC, REFINE_PATTERNS],
        "median_step_seconds_kernel_off": round(median_off, 4),
        "median_step_seconds_kernel_on": round(median_on, 4),
        "median_total_seconds_kernel_off": round(
            statistics.median(off_totals), 4
        ),
        "median_total_seconds_kernel_on": round(
            statistics.median(on_totals), 4
        ),
        "speedup": round(speedup, 2),
        "lca_step_measured": GEN_PATTERN_CANDIDATES,
        "median_lca_seconds_code_off": round(median_lca_ref, 4),
        "median_lca_seconds_code_on": round(median_lca_on, 4),
        "lca_speedup": round(lca_speedup, 2),
        "byte_identical": byte_identical,
        "kernel_counters": on_counters,
    }
    target = RESULTS_PATH
    if args.smoke and RESULTS_PATH.exists():
        try:
            committed = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            committed = {}
        if committed.get("smoke") is False:
            # Never clobber the committed full-run medians with smoke
            # numbers; smoke output goes to a sibling (gitignored) file.
            target = RESULTS_PATH.with_name("BENCH_mining_smoke.json")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {target}")

    if not byte_identical:
        for label, (_, _, _, payload, _) in results.items():
            if payload != off_payload:
                print(f"FAIL: {label} explanations differ from kernel-off")
        return 1
    print(
        "ranked explanations byte-identical across kernel on/off, "
        f"code-LCA on/off, serial and workers={args.workers}"
    )

    if not args.smoke and speedup < 3.0:
        print(f"FAIL: kernel speedup {speedup:.2f}x < 3x")
        return 1
    if not args.smoke and lca_speedup < 2.0:
        print(f"FAIL: code-LCA speedup {lca_speedup:.2f}x < 2x")
        return 1
    print("OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: small workload, kernel_verify on, no "
             "speedup assertion (byte-identity still enforced)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="NBA dataset scale (default 0.25, the "
                             "Fig-9 top point; smoke 0.04)")
    parser.add_argument("--edges", type=int, default=2,
                        help="λ#edges for all runs (default 2)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per mode (default 3; smoke 1)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--kernel-cache-mb", type=float, default=64.0)
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = 0.04 if args.smoke else 0.25
    if args.repeats is None:
        args.repeats = 1 if args.smoke else 3
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
