"""FIG13 — CAPE's counterbalance explanations (paper Figure 13).

UQcape1: "Why was GSW's number of wins high in 2015-16?" → CAPE returns
low-win seasons.  UQcape2: "Why were LeBron James's average points low in
2010-11?" → CAPE returns his high-scoring seasons.  The paper's point is
that CAPE is orthogonal to CaJaDE (trend counterbalances vs contextual
patterns).
"""

import pytest

from repro.baselines import CapeExplainer
from repro.datasets import query_by_name

from conftest import format_table


@pytest.mark.benchmark(group="fig13")
def test_fig13_cape_gsw_wins(benchmark, nba, report):
    db, _ = nba
    result = db.sql(query_by_name("Qnba4").sql)

    def run():
        cape = CapeExplainer(result, "season_name", "win")
        return cape.explain("2015-16", "high", k=3)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig13_cape_gsw_wins",
        "UQcape1: why was GSW's win count high in 2015-16?\n"
        + format_table(
            ["rank", "counterbalance (season, wins)", "residual"],
            [
                [i + 1, f"({c.group_value}, {c.aggregate_value:g})",
                 f"{c.residual:+.2f}"]
                for i, c in enumerate(out.counterbalances)
            ],
        ),
    )
    assert out.is_outlier
    assert len(out.counterbalances) == 3
    # Counterbalances are low-win seasons (negative residuals).
    assert all(c.residual < 0 for c in out.counterbalances)


@pytest.mark.benchmark(group="fig13")
def test_fig13_cape_lebron_points(benchmark, nba, report):
    db, _ = nba
    result = db.sql(query_by_name("Qnba3").sql)

    def run():
        cape = CapeExplainer(result, "season_name", "avg_pts")
        return cape.explain("2010-11", "low", k=3)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig13_cape_lebron",
        "UQcape2: why were LeBron James's average points low in 2010-11?\n"
        + format_table(
            ["rank", "counterbalance (season, avg pts)", "residual"],
            [
                [i + 1, f"({c.group_value}, {c.aggregate_value:.1f})",
                 f"{c.residual:+.2f}"]
                for i, c in enumerate(out.counterbalances)
            ],
        ),
    )
    # Counterbalances deviate high — like the paper's (LeBron, 2009-10,
    # 29.7) row.
    assert all(c.residual > 0 for c in out.counterbalances)
    seasons = [c.group_value for c in out.counterbalances]
    assert "2009-10" in seasons
