"""Table schemas, key constraints and the foreign-key registry.

A :class:`TableSchema` is the static description of a relation: ordered,
typed columns plus an optional primary key.  :class:`ForeignKey` links a
list of referencing columns to a referenced table's columns; the CaJaDE
schema graph is seeded from these (paper §2.2: "our system can extract join
conditions from the foreign key constraints").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SchemaError
from .types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single typed column of a relation."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        # Dots are allowed so joined/augmented relations can carry
        # alias-qualified column names like ``game.winner_id``.
        cleaned = self.name.replace("_", "").replace(".", "")
        if not self.name or not cleaned.isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``table.columns -> ref_table.ref_columns``."""

    table: str
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                f"foreign key column count mismatch: {self.columns} vs "
                f"{self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key must reference at least one column")


@dataclass
class TableSchema:
    """Ordered, typed columns of a relation plus its primary key."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(col.name)
        for key_col in self.primary_key:
            if key_col not in seen:
                raise SchemaError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )

    @classmethod
    def build(
        cls,
        name: str,
        columns: dict[str, ColumnType] | list[tuple[str, ColumnType]],
        primary_key: tuple[str, ...] | list[str] = (),
    ) -> "TableSchema":
        """Convenience constructor from a name→type mapping."""
        if isinstance(columns, dict):
            pairs = list(columns.items())
        else:
            pairs = list(columns)
        return cls(
            name=name,
            columns=[Column(cname, ctype) for cname, ctype in pairs],
            primary_key=tuple(primary_key),
        )

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def column_type(self, name: str) -> ColumnType:
        return self.column(name).ctype

    def column_index(self, name: str) -> int:
        for index, col in enumerate(self.columns):
            if col.name == name:
                return index
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def rename(self, new_name: str) -> "TableSchema":
        """A copy of this schema under a different table name."""
        return TableSchema(
            name=new_name,
            columns=list(self.columns),
            primary_key=self.primary_key,
        )

    def project(self, names: list[str]) -> "TableSchema":
        """A schema containing only ``names``, in the given order."""
        cols = [self.column(name) for name in names]
        pk = tuple(col for col in self.primary_key if col in names)
        return TableSchema(name=self.name, columns=cols, primary_key=pk)
