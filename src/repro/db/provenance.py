"""Why-provenance for single-block aggregate queries (paper §2.1).

For a query Q with relsQ(D) = {R_1, ..., R_p}, the provenance table
PT(Q, D) is the subset of R_1 × ... × R_p that satisfies Q's WHERE clause —
i.e. the pre-aggregation working table.  PT(Q, D, t) restricts it to the
rows that contribute to output tuple t (same group-by values).

This module plays the role GProM/Perm play in the paper's implementation.
Every PT carries a synthetic ``__pt_row_id`` column so downstream APTs can
attribute each augmented row back to its provenance row, which is what
Definition 7's per-PT-row coverage needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .database import Database
from .errors import ExecutionError
from .executor import (
    aggregate,
    group_columns_in_working,
    group_indices,
    working_table,
)
from .query import Query
from .relation import Relation
from .types import ColumnType

PT_ROW_ID = "__pt_row_id"


@dataclass
class ProvenanceTable:
    """PT(Q, D) with its partition into per-output-tuple provenance.

    Attributes:
        query: the originating query.
        relation: the provenance relation; columns are ``alias.attr`` plus
            the synthetic :data:`PT_ROW_ID`.
        group_columns: working-table columns realizing the GROUP BY.
        groups: output group key → row-index array into ``relation``.
        result: the query's result relation (for locating user questions).
    """

    query: Query
    relation: Relation
    group_columns: list[str]
    groups: dict[tuple[Any, ...], np.ndarray]
    result: Relation

    @classmethod
    def compute(
        cls,
        query: Query,
        db: Database,
        late_materialization: bool = True,
    ) -> "ProvenanceTable":
        """Materialize the provenance table of ``query`` over ``db``.

        ``late_materialization`` selects the index-vector join pipeline
        for the working table (gathered once at this edge); the output
        is byte-identical either way.  Group partitioning runs
        vectorized over the working table's factorized group-key codes.
        """
        work = working_table(
            query, db, late_materialization=late_materialization
        )
        work = work.with_column(
            PT_ROW_ID,
            ColumnType.INT,
            np.arange(work.num_rows, dtype=np.int64),
        )
        group_cols = group_columns_in_working(query, work)
        if group_cols:
            groups = group_indices(work, group_cols)
        else:
            groups = {(): np.arange(work.num_rows, dtype=np.int64)}
        result = aggregate(query, work.project(
            [c for c in work.column_names if c != PT_ROW_ID]
        ))
        return cls(
            query=query,
            relation=work,
            group_columns=group_cols,
            groups=groups,
            result=result,
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def group_key_for(self, output: dict[str, Any]) -> tuple[Any, ...]:
        """Translate an output-tuple description into a group key.

        ``output`` maps SELECT aliases (or bare group-by attribute names)
        to values, e.g. ``{"season_name": "2015-16"}``.  It must pin down
        exactly one group.
        """
        bare_to_col = {c.split(".")[-1]: c for c in self.group_columns}
        alias_to_col: dict[str, str] = {}
        group_bare = set(bare_to_col)
        for item in self.query.select:
            refs = item.expression.referenced_columns()
            for ref in refs:
                bare = ref.split(".")[-1]
                if bare in group_bare:
                    alias_to_col[item.alias] = bare_to_col[bare]
        matches: list[tuple[Any, ...]] = []
        for key in self.groups:
            ok = True
            for name, expected in output.items():
                col = alias_to_col.get(name) or bare_to_col.get(name)
                if col is None:
                    raise ExecutionError(
                        f"{name!r} is not a group-by output of the query"
                    )
                position = self.group_columns.index(col)
                if key[position] != expected:
                    ok = False
                    break
            if ok:
                matches.append(key)
        if len(matches) != 1:
            raise ExecutionError(
                f"output description {output!r} matches {len(matches)} "
                "groups; it must identify exactly one"
            )
        return matches[0]

    def provenance_of(self, group_key: tuple[Any, ...]) -> Relation:
        """PT(Q, D, t): the provenance rows of one output tuple."""
        if group_key not in self.groups:
            raise ExecutionError(f"no output group {group_key!r}")
        return self.relation.take(self.groups[group_key])

    def row_ids_of(self, group_key: tuple[Any, ...]) -> np.ndarray:
        """The ``__pt_row_id`` values of one output tuple's provenance."""
        indices = self.groups.get(group_key)
        if indices is None:
            raise ExecutionError(f"no output group {group_key!r}")
        return self.relation.column(PT_ROW_ID)[indices]

    def row_ids_excluding(self, group_key: tuple[Any, ...]) -> np.ndarray:
        """Row ids of all provenance rows *not* contributing to the group.

        Used for single-point questions where t2 is "the rest of the
        output" (paper §2.4).  One vectorized membership test over the
        provenance id array — outlier questions over very large
        provenance used to pay a Python set/list comprehension here.
        """
        own = self.row_ids_of(group_key)
        all_ids = self.relation.column(PT_ROW_ID)
        return all_ids[~np.isin(all_ids, own)].astype(np.int64, copy=False)

    @property
    def data_columns(self) -> list[str]:
        """Provenance columns excluding the synthetic row id."""
        return [c for c in self.relation.column_names if c != PT_ROW_ID]

    def __repr__(self) -> str:
        return (
            f"ProvenanceTable({self.relation.num_rows} rows, "
            f"{len(self.groups)} output groups)"
        )
