"""Logical representation of single-block SPJA queries.

The paper restricts itself to "simple single-block SQL queries with a single
aggregate function (select-from-where-group by)"; in practice its workload
queries use one or more aggregates and arithmetic over them (e.g. the MIMIC
death-rate query), so SELECT items here are expression trees whose leaves
may be :class:`AggregateCall` nodes or group-by column references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .errors import ParseError
from .expressions import ColumnRef, Expression, Literal, Predicate

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry: a catalog table with an optional alias."""

    table: str
    alias: str

    @classmethod
    def of(cls, table: str, alias: str | None = None) -> "TableRef":
        return cls(table=table, alias=alias or table)


@dataclass(frozen=True)
class AggregateCall(Expression):
    """An aggregate function call appearing in a SELECT item.

    ``argument`` is None for ``COUNT(*)``.  AggregateCall is an Expression
    leaf only so arithmetic like ``1.0 * SUM(x) / COUNT(*)`` can be built
    over it; it is never evaluated per-row (the executor substitutes group
    values).
    """

    func: str
    argument: Expression | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ParseError(f"unsupported aggregate function {self.func!r}")
        if self.func != "count" and self.argument is None:
            raise ParseError(f"{self.func.upper()} requires an argument")

    def values(self, relation):  # pragma: no cover - defensive
        raise NotImplementedError("aggregates are evaluated per group")

    def referenced_columns(self) -> set[str]:
        if self.argument is None:
            return set()
        return self.argument.referenced_columns()

    def __str__(self) -> str:
        arg = "*" if self.argument is None else str(self.argument)
        return f"{self.func.upper()}({arg})"


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-clause item: an expression with an output name."""

    expression: Expression
    alias: str

    def __str__(self) -> str:
        return f"{self.expression} AS {self.alias}"


def contains_aggregate(expression: Expression) -> bool:
    """Whether an expression tree contains an AggregateCall."""
    if isinstance(expression, AggregateCall):
        return True
    from .expressions import Arithmetic

    if isinstance(expression, Arithmetic):
        return contains_aggregate(expression.left) or contains_aggregate(
            expression.right
        )
    return False


def collect_aggregates(expression: Expression) -> list[AggregateCall]:
    """All AggregateCall leaves of an expression tree, in order."""
    if isinstance(expression, AggregateCall):
        return [expression]
    from .expressions import Arithmetic

    if isinstance(expression, Arithmetic):
        return collect_aggregates(expression.left) + collect_aggregates(
            expression.right
        )
    return []


@dataclass
class Query:
    """A validated single-block SPJA query."""

    select: list[SelectItem]
    tables: list[TableRef]
    where: Predicate | None = None
    group_by: list[ColumnRef] = field(default_factory=list)
    text: str = ""

    def __post_init__(self) -> None:
        if not self.select:
            raise ParseError("SELECT list must be non-empty")
        if not self.tables:
            raise ParseError("FROM list must be non-empty")
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise ParseError(f"duplicate table aliases in FROM: {aliases}")
        has_aggregate = any(
            contains_aggregate(item.expression) for item in self.select
        )
        if self.group_by or has_aggregate:
            group_names = {ref.name.split(".")[-1] for ref in self.group_by}
            for item in self.select:
                if contains_aggregate(item.expression):
                    continue
                refs = item.expression.referenced_columns()
                for ref in refs:
                    if ref.split(".")[-1] not in group_names:
                        raise ParseError(
                            f"non-aggregated SELECT column {ref!r} is not "
                            "in GROUP BY"
                        )

    @property
    def table_names(self) -> list[str]:
        """relsQ(D): catalog names of the relations the query accesses."""
        return [t.table for t in self.tables]

    @property
    def aliases(self) -> list[str]:
        return [t.alias for t in self.tables]

    @property
    def group_by_output_names(self) -> list[str]:
        """Output column names corresponding to group-by expressions."""
        names = []
        group_bare = [ref.name.split(".")[-1] for ref in self.group_by]
        for item in self.select:
            if contains_aggregate(item.expression):
                continue
            refs = item.expression.referenced_columns()
            if refs and next(iter(refs)).split(".")[-1] in group_bare:
                names.append(item.alias)
        return names

    @property
    def aggregate_output_names(self) -> list[str]:
        return [
            item.alias
            for item in self.select
            if contains_aggregate(item.expression)
        ]

    def alias_for_table(self, table: str) -> str:
        for ref in self.tables:
            if ref.table == table:
                return ref.alias
        raise ParseError(f"table {table!r} not in query FROM list")

    def __str__(self) -> str:
        return self.text or (
            "SELECT "
            + ", ".join(str(i) for i in self.select)
            + " FROM "
            + ", ".join(f"{t.table} {t.alias}" for t in self.tables)
        )


def simple_aggregate_query(
    table: str,
    aggregate: str,
    argument: str | None,
    group_by: list[str],
    where: Predicate | None = None,
    alias: str | None = None,
) -> Query:
    """Build a one-table aggregate query programmatically.

    A convenience for tests and examples that avoids going through SQL text.
    """
    agg_expr = AggregateCall(
        func=aggregate,
        argument=ColumnRef(argument) if argument else None,
    )
    select = [SelectItem(agg_expr, alias or aggregate)]
    group_refs = [ColumnRef(g) for g in group_by]
    select += [SelectItem(ref, ref.name.split(".")[-1]) for ref in group_refs]
    return Query(
        select=select,
        tables=[TableRef.of(table)],
        where=where,
        group_by=group_refs,
    )
