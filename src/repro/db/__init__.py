"""In-memory relational engine substrate for the CaJaDE reproduction.

Provides columnar relations with load-time dictionary encoding, a
catalog with key constraints, a single-block SQL parser, a hash-join
executor with a late-materialized index-vector pipeline
(:class:`~repro.db.frame.IndexFrame`), why-provenance capture, catalog
statistics for cost estimation, and CSV persistence.
"""

from .database import Database
from .errors import (
    CatalogError,
    DatabaseError,
    ExecutionError,
    IntegrityError,
    ParseError,
    SchemaError,
    TypeMismatchError,
)
from .executor import execute, hash_join, join_row_indices, working_table
from .expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    EquiJoinCondition,
    Literal,
    Not,
    Or,
    Predicate,
    conjunction,
)
from .parser import parse_sql
from .plan import PlanStep, QueryPlan, explain_plan
from .provenance import PT_ROW_ID, ProvenanceTable
from .query import AggregateCall, Query, SelectItem, TableRef
from .frame import IndexFrame
from .relation import ColumnEncoding, Relation
from .schema import Column, ForeignKey, TableSchema
from .statistics import (
    ColumnStatistics,
    TableStatistics,
    estimate_join_cardinality,
    estimate_pipeline_cost,
)
from .types import ColumnType, infer_column_type, is_null

__all__ = [
    "AggregateCall",
    "And",
    "Arithmetic",
    "CatalogError",
    "Column",
    "ColumnRef",
    "ColumnStatistics",
    "ColumnType",
    "Comparison",
    "conjunction",
    "Database",
    "DatabaseError",
    "EquiJoinCondition",
    "execute",
    "ExecutionError",
    "ForeignKey",
    "hash_join",
    "infer_column_type",
    "IntegrityError",
    "is_null",
    "Literal",
    "Not",
    "Or",
    "parse_sql",
    "PlanStep",
    "QueryPlan",
    "explain_plan",
    "ParseError",
    "Predicate",
    "ProvenanceTable",
    "PT_ROW_ID",
    "Query",
    "Relation",
    "ColumnEncoding",
    "IndexFrame",
    "join_row_indices",
    "SchemaError",
    "SelectItem",
    "TableRef",
    "TableSchema",
    "TableStatistics",
    "TypeMismatchError",
    "working_table",
    "estimate_join_cardinality",
    "estimate_pipeline_cost",
]
