"""Late-materialized join results: base relations + row-index vectors.

An :class:`IndexFrame` represents the output of a (chain of) equi-joins
without copying any data columns: it holds the participating *source*
relations and, per source, an int64 array mapping each output row to a
source row.  Joins compose index vectors, selections apply masks to
them, and actual column values are gathered only at the edges — when a
predicate needs a key column, when an APT hands columns to the mining
kernel, or when :meth:`to_relation` materializes the classic eager
result.

Row order and schema order are identical to the eager pipeline by
construction: frame joins run the exact same
:func:`repro.db.executor.join_row_indices` core that
:func:`repro.db.executor.hash_join` uses, and gathers concatenate source
columns in join order (the order ``_zip_columns`` produces).  The
shared-prefix materialization trie caches these frames instead of full
relations; a frame's :attr:`estimated_bytes` is just its index vectors —
roughly the joined table's width times smaller than the eager entry.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import ExecutionError, SchemaError
from .relation import ColumnEncoding, Relation
from .schema import TableSchema
from .types import ColumnType


class IndexFrame:
    """A late-materialized view over one or more source relations.

    ``sources[i]`` supplies the columns named by its schema (callers
    prefix/qualify names before building frames, exactly as the eager
    pipeline prefixes before joining); ``rows[i]`` maps each frame row
    to a row of ``sources[i]``, with ``None`` meaning the identity
    mapping (the frame *is* the source, row for row).
    """

    __slots__ = ("sources", "rows", "_nrows", "_lookup", "_schema")

    def __init__(
        self,
        sources: Sequence[Relation],
        rows: Sequence[np.ndarray | None],
    ):
        if len(sources) != len(rows):
            raise ExecutionError("sources and rows must align")
        if not sources:
            raise ExecutionError("an IndexFrame needs at least one source")
        self.sources = tuple(sources)
        self.rows = tuple(rows)
        nrows: int | None = None
        for source, idx in zip(self.sources, self.rows):
            n = source.num_rows if idx is None else len(idx)
            if nrows is None:
                nrows = n
            elif n != nrows:
                raise ExecutionError(
                    f"ragged index vectors: {n} vs {nrows} rows"
                )
        self._nrows = nrows or 0
        self._lookup: dict[str, int] | None = None
        self._schema: TableSchema | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "IndexFrame":
        """The identity frame over one relation (zero marginal bytes)."""
        return cls((relation,), (None,))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._nrows

    def __len__(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> list[str]:
        names: list[str] = []
        for source in self.sources:
            names.extend(source.column_names)
        return names

    def _source_index(self, name: str) -> int:
        if self._lookup is None:
            lookup: dict[str, int] = {}
            for index, source in enumerate(self.sources):
                for cname in source.column_names:
                    lookup[cname] = index
            self._lookup = lookup
        index = self._lookup.get(name)
        if index is None:
            raise SchemaError(f"no column {name!r} in frame")
        return index

    def column_type(self, name: str) -> ColumnType:
        return self.sources[self._source_index(name)].column_type(name)

    def column_dtype(self, name: str) -> np.dtype:
        """A column's storage dtype, without gathering any values."""
        return self.sources[self._source_index(name)].column_dtype(name)

    @property
    def schema(self) -> TableSchema:
        """A schema view over the concatenated source columns.

        Mirrors the table name the eager pipeline's ``_zip_columns``
        chain would produce, so predicate resolution
        (:func:`repro.db.expressions.resolve_column`) and error messages
        behave identically on frames and materialized relations.
        """
        if self._schema is None:
            columns = []
            name: str | None = None
            for source in self.sources:
                columns.extend(source.schema.columns)
                name = (
                    source.schema.name
                    if name is None
                    else f"{name}_x_{source.schema.name}"
                )
            if len(self.sources) == 1:
                self._schema = self.sources[0].schema
            else:
                assert name is not None
                self._schema = TableSchema(name=name, columns=columns)
        return self._schema

    @property
    def estimated_bytes(self) -> int:
        """Marginal resident size: the index vectors only.

        Source relations are shared (base tables, the provenance table,
        memoized prefixed contexts), so a frame's true incremental cost
        in the prefix trie is its per-source int64 row arrays.
        """
        return sum(idx.nbytes for idx in self.rows if idx is not None)

    def __repr__(self) -> str:
        return (
            f"IndexFrame({self._nrows} rows over "
            f"{len(self.sources)} sources, "
            f"{self.estimated_bytes} index bytes)"
        )

    # ------------------------------------------------------------------
    # Gathers
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Gather one column's values (a copy unless identity-mapped)."""
        index = self._source_index(name)
        source = self.sources[index]
        idx = self.rows[index]
        return source.column(name) if idx is None else source.gather_column(
            name, idx
        )

    def gather_column(
        self, name: str, subset: np.ndarray | None = None
    ) -> np.ndarray:
        """Gather ``name`` for ``subset`` frame rows (all rows if None).

        Index composition happens before touching the data array, so a
        sampled evaluator over a huge frame gathers only its own rows —
        and disk-backed source columns decode only the gathered slice.
        """
        index = self._source_index(name)
        source = self.sources[index]
        idx = self.rows[index]
        if subset is None:
            return self.column(name)
        combined = subset if idx is None else idx[subset]
        return source.gather_column(name, combined)

    def column_encoding(
        self, name: str, subset: np.ndarray | None = None
    ) -> tuple[ColumnEncoding, np.ndarray | None] | None:
        """The source-level dictionary encoding behind a frame column.

        Returns ``(encoding, row_indices)`` where ``row_indices`` maps
        the requested (sub)rows into the encoding's code arrays —
        ``None`` meaning identity.  Returns ``None`` for numeric or
        unencodable columns; callers then fall back to value gathering.
        """
        index = self._source_index(name)
        encoding = self.sources[index].encoding(name)
        if encoding is None:
            return None
        idx = self.rows[index]
        if subset is None:
            return encoding, idx
        combined = subset if idx is None else idx[subset]
        return encoding, combined

    # ------------------------------------------------------------------
    # Relational operations on index vectors
    # ------------------------------------------------------------------
    def select(self, indices: np.ndarray) -> "IndexFrame":
        """Frame rows selected by an index array (order-preserving)."""
        rows = tuple(
            indices if idx is None else idx[indices] for idx in self.rows
        )
        return IndexFrame(self.sources, rows)

    def filter_mask(self, mask: np.ndarray) -> "IndexFrame":
        """Frame rows where the boolean ``mask`` is True."""
        if mask.dtype != np.bool_ or len(mask) != self._nrows:
            raise SchemaError("filter mask must be boolean and row-aligned")
        return self.select(np.nonzero(mask)[0])

    def join(
        self,
        other: "IndexFrame | Relation",
        conditions: list[tuple[str, str]],
        strategy=None,
    ) -> "IndexFrame":
        """Equi-join with another frame/relation on index vectors.

        Gathers only the key columns, runs the shared
        :func:`~repro.db.executor.join_row_indices` core (identical
        build/probe/swap behaviour to the eager ``hash_join``, so the
        output row order matches byte for byte), and composes the row
        index vectors of both sides.

        ``strategy`` optionally routes the step through a pluggable
        :mod:`repro.db.join_strategy` implementation (e.g. the
        sorted-window searchsorted path); every registered strategy is
        byte-identical to the default hash core.
        """
        from .executor import join_row_indices

        if strategy is not None:
            result, _entry = strategy.join_frame(self, other, conditions)
            return result
        if not conditions:
            raise ExecutionError("join requires at least one condition")
        right = (
            other
            if isinstance(other, IndexFrame)
            else IndexFrame.from_relation(other)
        )
        overlap = set(self.column_names) & set(right.column_names)
        if overlap:
            raise ExecutionError(
                f"join would produce duplicate columns: {overlap}"
            )
        left_arrays = [self.column(lc) for lc, _ in conditions]
        right_arrays = [right.column(rc) for _, rc in conditions]
        left_idx, right_idx = join_row_indices(
            left_arrays, right_arrays, self.num_rows, right.num_rows
        )
        rows = tuple(
            left_idx if idx is None else idx[left_idx] for idx in self.rows
        ) + tuple(
            right_idx if idx is None else idx[right_idx]
            for idx in right.rows
        )
        return IndexFrame(self.sources + right.sources, rows)

    def cross(self, other: "IndexFrame | Relation") -> "IndexFrame":
        """Cartesian product (only when no join condition connects)."""
        right = (
            other
            if isinstance(other, IndexFrame)
            else IndexFrame.from_relation(other)
        )
        n, m = self.num_rows, right.num_rows
        left_idx = np.repeat(np.arange(n, dtype=np.int64), m)
        right_idx = np.tile(np.arange(m, dtype=np.int64), n)
        rows = tuple(
            left_idx if idx is None else idx[left_idx] for idx in self.rows
        ) + tuple(
            right_idx if idx is None else idx[right_idx]
            for idx in right.rows
        )
        return IndexFrame(self.sources + right.sources, rows)

    # ------------------------------------------------------------------
    # The eager edge
    # ------------------------------------------------------------------
    def to_relation(self) -> Relation:
        """Gather every column into an eager :class:`Relation`.

        Byte-identical (schema order, rows, dtypes, table name) to the
        relation the eager join pipeline produces for the same steps: a
        single-source frame reduces to ``source.take(rows)`` (preserving
        the source schema, primary key included), a multi-source frame
        to the ``_zip_columns`` concatenation in join order.
        """
        if len(self.sources) == 1:
            source, idx = self.sources[0], self.rows[0]
            return source if idx is None else source.take(idx)
        columns: dict[str, np.ndarray] = {}
        for source, idx in zip(self.sources, self.rows):
            for cname in source.column_names:
                columns[cname] = (
                    source.column(cname)
                    if idx is None
                    else source.gather_column(cname, idx)
                )
        return Relation(self.schema, columns)
