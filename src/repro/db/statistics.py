"""Catalog statistics and the join cost model.

CaJaDE skips join graphs whose materialization query has an estimated cost
above λqcost (paper §4: "We use the DBMS to estimate the cost of this query
upfront").  Our engine plays the DBMS role: per-table row counts and
per-column distinct counts feed the textbook equi-join cardinality estimate

    |R ⋈ S| ≈ |R| · |S| / max(V(R, a), V(S, b))

and the cost of a join pipeline is the sum of estimated intermediate sizes,
which is what a disk-based optimizer's I/O cost is proportional to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from .relation import Relation


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics for a single column."""

    name: str
    num_distinct: int
    null_fraction: float
    min_value: float | None
    max_value: float | None

    @classmethod
    def collect(cls, relation: Relation, name: str) -> "ColumnStatistics":
        arr = relation.column(name)
        n = len(arr)
        if n == 0:
            return cls(name, 0, 0.0, None, None)
        if arr.dtype == object:
            values = [v for v in arr if v is not None]
            distinct = len(set(values))
            nulls = n - len(values)
            return cls(name, distinct, nulls / n, None, None)
        numeric = arr.astype(np.float64)
        valid = numeric[~np.isnan(numeric)]
        distinct = int(len(np.unique(valid)))
        nulls = n - len(valid)
        min_v = float(valid.min()) if len(valid) else None
        max_v = float(valid.max()) if len(valid) else None
        return cls(name, distinct, nulls / n, min_v, max_v)


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics for one relation."""

    table: str
    num_rows: int
    columns: dict[str, ColumnStatistics]

    @classmethod
    def collect(cls, relation: Relation) -> "TableStatistics":
        columns = {
            name: ColumnStatistics.collect(relation, name)
            for name in relation.column_names
        }
        return cls(
            table=relation.schema.name,
            num_rows=relation.num_rows,
            columns=columns,
        )

    def distinct(self, column: str) -> int:
        stats = self.columns.get(column)
        if stats is None:
            return max(1, self.num_rows)
        return max(1, stats.num_distinct)


def estimate_join_cardinality(
    left_rows: float,
    right_rows: float,
    key_distincts: list[tuple[int, int]],
) -> float:
    """Estimate |R ⋈ S| for a conjunctive equi-join.

    ``key_distincts`` holds ``(V(R, a_i), V(S, b_i))`` per join conjunct;
    conjuncts are assumed independent (System-R style).
    """
    cardinality = left_rows * right_rows
    for left_d, right_d in key_distincts:
        cardinality /= max(1, left_d, right_d)
    return max(0.0, cardinality)


def estimate_pipeline_cost(intermediate_sizes: list[float]) -> float:
    """Cost of a join pipeline ≈ total tuples flowing through it."""
    return float(sum(intermediate_sizes))


def selectivity_of_equality(distinct: int) -> float:
    """Selectivity of ``col = const`` under a uniform assumption."""
    return 1.0 / max(1, distinct)


def estimate_distinct_after_join(
    distinct: int, input_rows: float, output_rows: float
) -> int:
    """Cap a column's distinct count by the (estimated) output size.

    After a join shrinks or grows a relation the number of distinct values
    of any column is at most min(original distinct, output rows).
    """
    if math.isnan(output_rows):
        return distinct
    return int(max(1, min(distinct, output_rows)))
