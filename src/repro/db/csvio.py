"""CSV import/export for relations and whole databases.

A database directory contains one ``<table>.csv`` per relation plus a
``schema.json`` describing column types, primary keys and foreign keys, so
a save→load round-trip reproduces the catalog exactly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .database import Database
from .errors import SchemaError
from .relation import Relation
from .schema import Column, TableSchema
from .types import ColumnType, parse_literal


def write_relation_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.column_names)
        for row in relation.iter_rows():
            writer.writerow(["" if v is None else v for v in row])


def read_relation_csv(
    path: str | Path,
    name: str | None = None,
    schema: TableSchema | None = None,
) -> Relation:
    """Read a CSV file into a relation.

    Without an explicit ``schema`` the column types are inferred from the
    parsed values (ints, floats, text; empty cells are NULL).
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError(f"CSV file {path} is empty") from exc
        raw_rows = [[parse_literal(cell) for cell in row] for row in reader]
    if schema is not None:
        if schema.column_names != header:
            raise SchemaError(
                f"CSV header {header} does not match schema "
                f"{schema.column_names}"
            )
        return Relation.from_rows(schema, raw_rows)
    from .types import infer_column_type

    columns = []
    for index, cname in enumerate(header):
        values = [row[index] for row in raw_rows]
        columns.append(Column(cname, infer_column_type(values)))
    inferred = TableSchema(name=name or path.stem, columns=columns)
    return Relation.from_rows(inferred, raw_rows)


def save_database(db: Database, directory: str | Path) -> None:
    """Write every relation and the catalog metadata to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta: dict[str, Any] = {"name": db.name, "tables": {}, "foreign_keys": []}
    for table_name in db.table_names:
        relation = db.table(table_name)
        write_relation_csv(relation, directory / f"{table_name}.csv")
        meta["tables"][table_name] = {
            "columns": [
                {"name": c.name, "type": c.ctype.value}
                for c in relation.schema.columns
            ],
            "primary_key": list(relation.schema.primary_key),
        }
    for fk in db.foreign_keys:
        meta["foreign_keys"].append(
            {
                "table": fk.table,
                "columns": list(fk.columns),
                "ref_table": fk.ref_table,
                "ref_columns": list(fk.ref_columns),
            }
        )
    (directory / "schema.json").write_text(json.dumps(meta, indent=2))


def load_database(directory: str | Path) -> Database:
    """Load a database saved by :func:`save_database`."""
    directory = Path(directory)
    meta = json.loads((directory / "schema.json").read_text())
    db = Database(name=meta.get("name", directory.name))
    for table_name, info in meta["tables"].items():
        schema = TableSchema(
            name=table_name,
            columns=[
                Column(c["name"], ColumnType(c["type"]))
                for c in info["columns"]
            ],
            primary_key=tuple(info.get("primary_key", [])),
        )
        relation = read_relation_csv(
            directory / f"{table_name}.csv", schema=schema
        )
        db.add_relation(relation)
    for fk in meta.get("foreign_keys", []):
        db.add_foreign_key(
            fk["table"], fk["columns"], fk["ref_table"], fk["ref_columns"]
        )
    return db
