"""CSV import/export for relations and whole databases.

A database directory contains one ``<table>.csv`` per relation plus a
``schema.json`` describing column types, primary keys and foreign keys, so
a save→load round-trip reproduces the catalog exactly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from .database import Database
from .errors import SchemaError
from .relation import (
    ColumnEncoding,
    Relation,
    _column_array,
    encoding_from_distinct,
)
from .schema import Column, TableSchema
from .types import ColumnType, coerce_value, infer_column_type, parse_literal

# int64 range guard for the float→int truncation fast path: values at or
# beyond 2**63 must take the per-value fallback so they raise the same
# OverflowError the historical int() coercion raised.
_INT64_EDGE = float(2**63)


def write_relation_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.column_names)
        for row in relation.iter_rows():
            writer.writerow(["" if v is None else v for v in row])


def _stripped_and_nulls(
    cells: Sequence[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Whitespace-stripped cells plus the NULL mask (empty / ``NULL``)."""
    arr = np.asarray(cells, dtype=str)
    if arr.size == 0:
        return arr, np.zeros(0, dtype=bool)
    stripped = np.char.strip(arr)
    null_mask = (stripped == "") | (np.char.upper(stripped) == "NULL")
    return stripped, null_mask


def _distinct_coerced(
    stripped: np.ndarray, ctype: ColumnType
) -> tuple[np.ndarray, ColumnEncoding | None]:
    """Per-cell reference semantics, paid once per *distinct* cell.

    ``parse_literal`` + ``coerce_value`` run on each unique string and
    the results gather back over the whole column — exact for mixed and
    text columns, and the path that reproduces the historical
    ValueError/OverflowError for cells the fast paths rejected.
    Distincts coerce in first-occurrence order so a file with several
    differently-malformed cells raises for the same cell the per-row
    pipeline raised for.

    The same ``np.unique`` triple also yields the column's dictionary
    encoding for free (:func:`encoding_from_distinct` dedups coerced
    values at O(distinct) cost), so loading a CSV never pays the
    per-row first-occurrence encoding loop.
    """
    uniq, first_idx, inverse = np.unique(
        stripped, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    table = np.empty(len(uniq), dtype=object)
    for j in np.argsort(first_idx, kind="stable"):
        table[j] = coerce_value(parse_literal(str(uniq[j])), ctype)
    gathered = table[inverse] if len(stripped) else table[:0]
    return gathered, encoding_from_distinct(table, first_idx, inverse)


def _coerce_column(
    cells: Sequence[str], ctype: ColumnType
) -> tuple[np.ndarray, ColumnEncoding | None]:
    """Build one column's storage array under an explicit schema type.

    Numeric columns first try one whole-column ``astype`` (numpy calls
    the same ``int()``/``float()`` per element the scalar path used, so
    the semantics — underscored literals, unicode digits, whitespace —
    are identical, minus the per-cell try/except chain).  Columns the
    fast path cannot prove safe (text cells, NaN/huge values under INT,
    out-of-range ints) fall back to :func:`_distinct_coerced`.

    Returns ``(storage, encoding)``; the encoding is the column's
    dictionary encoding when the storage is an object array (built from
    the distinct table, byte-identical to the lazy per-row build) and
    ``None`` for numeric storage.
    """
    stripped, null_mask = _stripped_and_nulls(cells)
    has_null = bool(null_mask.any())
    values = stripped[~null_mask] if has_null else stripped

    if ctype is ColumnType.INT and values.size:
        ints: np.ndarray | None = None
        try:
            ints = values.astype(np.int64)
        except OverflowError:
            pass  # bigint cells: fallback preserves the historical raise
        except ValueError:
            # e.g. "5.0": the scalar path coerces via int(float(...)).
            try:
                floats = values.astype(np.float64)
            except (ValueError, OverflowError):
                floats = None
            if (
                floats is not None
                and not np.isnan(floats).any()
                and not (np.abs(floats) >= _INT64_EDGE).any()
            ):
                ints = np.trunc(floats).astype(np.int64)
        if ints is not None:
            if not has_null:
                return ints, None
            out = np.full(len(stripped), np.nan, dtype=np.float64)
            out[~null_mask] = ints.astype(np.float64)
            return out, None
    elif ctype is ColumnType.FLOAT and values.size:
        try:
            floats = values.astype(np.float64)
        except (ValueError, OverflowError):
            floats = None
        if floats is not None:
            out = np.full(len(stripped), np.nan, dtype=np.float64)
            out[~null_mask] = floats
            return out, None
    elif values.size == 0:  # all-NULL column: storage by type alone
        storage = _column_array([None] * len(stripped), ctype)
        return storage, _all_null_encoding(storage)

    coerced, encoding = _distinct_coerced(stripped, ctype)
    storage = _column_array(list(coerced), ctype)
    if storage.dtype != object:
        encoding = None
    return storage, encoding


def _all_null_encoding(storage: np.ndarray) -> ColumnEncoding | None:
    """The trivial encoding of an all-``None`` object column."""
    if storage.dtype != object:
        return None
    if not len(storage):
        return ColumnEncoding(
            codes=np.empty(0, dtype=np.int32), code_of={}, null_codes=()
        )
    return ColumnEncoding(
        codes=np.zeros(len(storage), dtype=np.int32),
        code_of={None: 0},
        null_codes=(0,),
    )


def _infer_column(
    cells: Sequence[str],
) -> tuple[np.ndarray, ColumnEncoding | None, ColumnType]:
    """Parse one schemaless column: (storage, encoding, inferred type).

    Mirrors ``parse_literal`` + ``infer_column_type`` + ``from_rows``:
    all-int columns infer INT, any float-parseable cell promotes to
    FLOAT, any text cell (or an all-NULL / all-NaN column) infers TEXT.
    """
    stripped, null_mask = _stripped_and_nulls(cells)
    if stripped.size:
        # Cells parsing to NaN are NULLs to the scalar pipeline:
        # infer_column_type skips them (no type evidence) and
        # coerce_value nulls them, so ["1", "nan"] infers INT with one
        # NULL — the numeric fast paths must see them as missing.
        upper = np.char.upper(stripped)
        null_mask = (
            null_mask | (upper == "NAN") | (upper == "+NAN")
            | (upper == "-NAN")
        )
    has_null = bool(null_mask.any())
    values = stripped[~null_mask] if has_null else stripped

    overflow = False
    if values.size:
        ints = None
        try:
            ints = values.astype(np.int64)
        except OverflowError:
            # Bigint cells: the scalar path infers INT and then raises
            # OverflowError building int64 storage — the fallback below
            # reproduces that, so the float path must not swallow it.
            overflow = True
        except ValueError:
            pass
        if ints is not None:
            if not has_null:
                return ints, None, ColumnType.INT
            out = np.full(len(stripped), np.nan, dtype=np.float64)
            out[~null_mask] = ints.astype(np.float64)
            return out, None, ColumnType.INT
        floats = None
        if not overflow:
            try:
                floats = values.astype(np.float64)
            except (ValueError, OverflowError):
                pass
        # An all-NaN column carries no type evidence (NaN coerces to
        # NULL), so it must infer TEXT like the scalar path does.
        if floats is not None and not np.isnan(floats).all():
            out = np.full(len(stripped), np.nan, dtype=np.float64)
            out[~null_mask] = floats
            return out, None, ColumnType.FLOAT

    uniq, first_idx, inverse = np.unique(
        stripped, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    parsed = [parse_literal(str(u)) for u in uniq]
    ctype = infer_column_type(parsed)
    table = np.empty(len(uniq), dtype=object)
    for j in np.argsort(first_idx, kind="stable"):
        table[j] = coerce_value(parsed[j], ctype)
    gathered = table[inverse] if len(stripped) else table[:0]
    storage = _column_array(list(gathered), ctype)
    encoding = (
        encoding_from_distinct(table, first_idx, inverse)
        if storage.dtype == object
        else None
    )
    return storage, encoding, ctype


def read_relation_csv(
    path: str | Path,
    name: str | None = None,
    schema: TableSchema | None = None,
) -> Relation:
    """Read a CSV file into a relation, column at a time.

    Without an explicit ``schema`` the column types are inferred from the
    parsed values (ints, floats, text; empty cells are NULL).  Cell
    semantics are exactly the historical per-cell ``parse_literal`` /
    ``coerce_value`` pipeline; the columns are just coerced with one
    numpy ``astype`` per column (with a parse-each-distinct-value
    fallback for mixed/text columns) instead of a Python loop per cell.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError(f"CSV file {path} is empty") from exc
        rows = list(reader)
    if schema is not None and schema.column_names != header:
        raise SchemaError(
            f"CSV header {header} does not match schema "
            f"{schema.column_names}"
        )
    width = len(header)
    for row in rows:
        if len(row) != width:
            raise SchemaError(
                f"row of width {len(row)} for schema of width {width}"
            )
    columns_cells: list[Sequence[str]] = (
        list(zip(*rows)) if rows else [()] * width
    )

    storage: dict[str, np.ndarray] = {}
    encodings: dict[str, ColumnEncoding] = {}
    if schema is not None:
        for col, cells in zip(schema.columns, columns_cells):
            array, encoding = _coerce_column(cells, col.ctype)
            storage[col.name] = array
            if encoding is not None:
                encodings[col.name] = encoding
        relation = Relation(schema, storage)
        relation._encodings.update(encodings)
        if schema.primary_key:
            relation._check_primary_key()
        return relation

    columns = []
    for cname, cells in zip(header, columns_cells):
        array, encoding, ctype = _infer_column(cells)
        storage[cname] = array
        if encoding is not None:
            encodings[cname] = encoding
        columns.append(Column(cname, ctype))
    inferred = TableSchema(name=name or path.stem, columns=columns)
    relation = Relation(inferred, storage)
    relation._encodings.update(encodings)
    return relation


def save_database(db: Database, directory: str | Path) -> None:
    """Write every relation and the catalog metadata to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta: dict[str, Any] = {"name": db.name, "tables": {}, "foreign_keys": []}
    for table_name in db.table_names:
        relation = db.table(table_name)
        write_relation_csv(relation, directory / f"{table_name}.csv")
        meta["tables"][table_name] = {
            "columns": [
                {"name": c.name, "type": c.ctype.value}
                for c in relation.schema.columns
            ],
            "primary_key": list(relation.schema.primary_key),
        }
    for fk in db.foreign_keys:
        meta["foreign_keys"].append(
            {
                "table": fk.table,
                "columns": list(fk.columns),
                "ref_table": fk.ref_table,
                "ref_columns": list(fk.ref_columns),
            }
        )
    (directory / "schema.json").write_text(json.dumps(meta, indent=2))


def load_database(directory: str | Path) -> Database:
    """Load a database saved by :func:`save_database`."""
    directory = Path(directory)
    meta = json.loads((directory / "schema.json").read_text())
    db = Database(name=meta.get("name", directory.name))
    for table_name, info in meta["tables"].items():
        schema = TableSchema(
            name=table_name,
            columns=[
                Column(c["name"], ColumnType(c["type"]))
                for c in info["columns"]
            ],
            primary_key=tuple(info.get("primary_key", [])),
        )
        relation = read_relation_csv(
            directory / f"{table_name}.csv", schema=schema
        )
        db.add_relation(relation)
    for fk in meta.get("foreign_keys", []):
        db.add_foreign_key(
            fk["table"], fk["columns"], fk["ref_table"], fk["ref_columns"]
        )
    return db
