"""Columnar in-memory relations.

A :class:`Relation` couples a :class:`~repro.db.schema.TableSchema` with one
numpy array per column.  Numeric columns use ``int64``/``float64`` arrays so
predicate evaluation and pattern matching (the hot path of CaJaDE's F-score
computation) are vectorized; TEXT columns use object arrays.

Relations are treated as immutable once built: every operation returns a new
Relation that shares column arrays when possible (selection via fancy
indexing copies, projection does not).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from .errors import IntegrityError, SchemaError
from .schema import Column, TableSchema
from .types import ColumnType, coerce_value, infer_column_type

# Process-wide counter backing Relation.fingerprint.  Relations are
# immutable once built, so a unique per-instance token is a sound
# memoization key: equal fingerprints imply identical contents.
_FINGERPRINT_COUNTER = itertools.count(1)


def _column_array(values: Sequence[Any], ctype: ColumnType) -> np.ndarray:
    """Build the storage array for one column, handling NULL promotion."""
    has_null = any(v is None for v in values)
    if ctype is ColumnType.INT and has_null:
        # Integer columns with NULLs are stored as float64 with NaN.
        data = np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return data
    if ctype is ColumnType.INT:
        return np.array([int(v) for v in values], dtype=np.int64)
    if ctype is ColumnType.FLOAT:
        return np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    return np.array(list(values), dtype=object)


class Relation:
    """An immutable columnar table: a schema plus one array per column."""

    __slots__ = ("schema", "_columns", "_nrows", "_fingerprint")

    def __init__(self, schema: TableSchema, columns: dict[str, np.ndarray]):
        if set(columns) != set(schema.column_names):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema "
                f"{schema.column_names}"
            )
        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns with lengths {sorted(lengths)}")
        self.schema = schema
        self._columns = columns
        self._nrows = lengths.pop() if lengths else 0
        self._fingerprint: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]],
        validate: bool = True,
    ) -> "Relation":
        """Build a relation from row tuples, coercing values to the schema."""
        materialized = [tuple(row) for row in rows]
        width = len(schema.columns)
        for row in materialized:
            if len(row) != width:
                raise SchemaError(
                    f"row of width {len(row)} for schema of width {width}"
                )
        columns: dict[str, np.ndarray] = {}
        for index, col in enumerate(schema.columns):
            raw = [row[index] for row in materialized]
            if validate:
                raw = [coerce_value(v, col.ctype) for v in raw]
            columns[col.name] = _column_array(raw, col.ctype)
        relation = cls(schema, columns)
        if validate and schema.primary_key:
            relation._check_primary_key()
        return relation

    @classmethod
    def from_dicts(
        cls, name: str, records: list[dict[str, Any]],
        primary_key: tuple[str, ...] = (),
    ) -> "Relation":
        """Build a relation from dict records, inferring column types."""
        if not records:
            raise SchemaError("cannot infer a schema from zero records")
        names = list(records[0].keys())
        columns = []
        for cname in names:
            values = [rec.get(cname) for rec in records]
            columns.append(Column(cname, infer_column_type(values)))
        schema = TableSchema(name=name, columns=columns, primary_key=primary_key)
        return cls.from_rows(schema, ([rec.get(c) for c in names] for rec in records))

    @classmethod
    def empty(cls, schema: TableSchema) -> "Relation":
        """A zero-row relation with the given schema."""
        columns = {
            col.name: np.empty(0, dtype=col.ctype.numpy_dtype())
            for col in schema.columns
        }
        return cls(schema, columns)

    def _check_primary_key(self) -> None:
        key_cols = self.schema.primary_key
        seen: set[tuple[Any, ...]] = set()
        arrays = [self._columns[c] for c in key_cols]
        for i in range(self._nrows):
            key = tuple(arr[i] for arr in arrays)
            if key in seen:
                raise IntegrityError(
                    f"duplicate primary key {key} in table {self.schema.name!r}"
                )
            seen.add(key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def fingerprint(self) -> int:
        """A process-unique identity token for this (immutable) relation.

        Two relations with the same fingerprint are the same object, so
        caches (e.g. the memoized hash-join path in
        :mod:`repro.db.executor`) can key results on input fingerprints
        without hashing any column data.  Assigned lazily on first use.
        """
        if self._fingerprint is None:
            self._fingerprint = next(_FINGERPRINT_COUNTER)
        return self._fingerprint

    @property
    def estimated_bytes(self) -> int:
        """Approximate *incremental* resident size, in bytes.

        Sums the column arrays' buffer sizes.  Object columns count only
        their pointer arrays: derived relations (joins, selections) copy
        pointers, not the boxed values, which stay shared with the source
        relations — so the pointer array is the true marginal cost.  Used
        by the engine's bounded-memory APT prefix cache.
        """
        return sum(arr.nbytes for arr in self._columns.values())

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names

    def __len__(self) -> int:
        return self._nrows

    def column(self, name: str) -> np.ndarray:
        """The storage array for one column (do not mutate)."""
        if name not in self._columns:
            raise SchemaError(f"no column {name!r} in {self.schema.name!r}")
        return self._columns[name]

    def column_type(self, name: str) -> ColumnType:
        return self.schema.column_type(name)

    def row(self, index: int) -> tuple[Any, ...]:
        """One row as a tuple in schema column order."""
        return tuple(self._columns[c][index] for c in self.schema.column_names)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        names = self.schema.column_names
        arrays = [self._columns[c] for c in names]
        for i in range(self._nrows):
            yield tuple(arr[i] for arr in arrays)

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def __repr__(self) -> str:
        return (
            f"Relation({self.schema.name!r}, {self._nrows} rows, "
            f"{len(self.schema.columns)} cols)"
        )

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Relation":
        """Rows selected by an index array (preserves duplicates/order)."""
        columns = {name: arr[indices] for name, arr in self._columns.items()}
        return Relation(self.schema, columns)

    def filter_mask(self, mask: np.ndarray) -> "Relation":
        """Rows where the boolean ``mask`` is True."""
        if mask.dtype != np.bool_ or len(mask) != self._nrows:
            raise SchemaError("filter mask must be boolean and row-aligned")
        return self.take(np.nonzero(mask)[0])

    def project(self, names: list[str]) -> "Relation":
        """Keep only ``names``, in the given order (shares arrays)."""
        schema = self.schema.project(names)
        return Relation(schema, {n: self._columns[n] for n in names})

    def rename(self, new_name: str) -> "Relation":
        return Relation(self.schema.rename(new_name), dict(self._columns))

    def rename_columns(self, mapping: dict[str, str]) -> "Relation":
        """Rename columns via ``mapping`` (missing names keep theirs)."""
        new_cols = [
            Column(mapping.get(col.name, col.name), col.ctype)
            for col in self.schema.columns
        ]
        pk = tuple(mapping.get(c, c) for c in self.schema.primary_key)
        schema = TableSchema(name=self.schema.name, columns=new_cols, primary_key=pk)
        columns = {
            mapping.get(name, name): arr for name, arr in self._columns.items()
        }
        return Relation(schema, columns)

    def prefix_columns(self, prefix: str) -> "Relation":
        """Prefix every column name, used for APT disambiguation."""
        return self.rename_columns(
            {name: f"{prefix}{name}" for name in self.schema.column_names}
        )

    def with_column(
        self, name: str, ctype: ColumnType, values: np.ndarray
    ) -> "Relation":
        """A copy with one extra column appended."""
        if len(values) != self._nrows:
            raise SchemaError("new column length does not match relation")
        schema = TableSchema(
            name=self.schema.name,
            columns=list(self.schema.columns) + [Column(name, ctype)],
            primary_key=self.schema.primary_key,
        )
        columns = dict(self._columns)
        columns[name] = values
        return Relation(schema, columns)

    def concat(self, other: "Relation") -> "Relation":
        """Union-all of two relations with identical column names/types."""
        if self.schema.column_names != other.schema.column_names:
            raise SchemaError("concat requires identical column lists")
        columns = {}
        for col in self.schema.columns:
            left = self._columns[col.name]
            right = other._columns[col.name]
            if left.dtype != right.dtype:
                left = left.astype(np.float64)
                right = right.astype(np.float64)
            columns[col.name] = np.concatenate([left, right])
        schema = TableSchema(
            name=self.schema.name,
            columns=list(self.schema.columns),
            primary_key=(),
        )
        return Relation(schema, columns)

    def sample(self, fraction: float, rng: np.random.Generator,
               max_rows: int | None = None) -> "Relation":
        """A uniform row sample of ``fraction`` of the rows.

        ``max_rows`` caps the absolute sample size (the paper caps LCA
        samples at 1000 rows).  Sampling is without replacement.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"sample fraction must be in (0, 1], got {fraction}")
        size = max(1, int(round(self._nrows * fraction))) if self._nrows else 0
        if max_rows is not None:
            size = min(size, max_rows)
        if size >= self._nrows:
            return self
        indices = rng.choice(self._nrows, size=size, replace=False)
        return self.take(np.sort(indices))

    def distinct(self) -> "Relation":
        """Duplicate-free copy preserving first occurrence order."""
        seen: set[tuple[Any, ...]] = set()
        keep: list[int] = []
        for i, row in enumerate(self.iter_rows()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return self.take(np.array(keep, dtype=np.int64))

    def sort_by(self, names: list[str]) -> "Relation":
        """Rows sorted ascending by the listed columns (stable)."""
        order = np.arange(self._nrows)
        for name in reversed(names):
            arr = self._columns[name]
            if arr.dtype == object:
                keys = np.array([str(v) for v in arr[order]])
            else:
                keys = arr[order]
            order = order[np.argsort(keys, kind="stable")]
        return self.take(order)
