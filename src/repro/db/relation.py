"""Columnar in-memory relations.

A :class:`Relation` couples a :class:`~repro.db.schema.TableSchema` with one
numpy array per column.  Numeric columns use ``int64``/``float64`` arrays so
predicate evaluation and pattern matching (the hot path of CaJaDE's F-score
computation) are vectorized; TEXT columns use object arrays.

Relations are treated as immutable once built: every operation returns a new
Relation that shares column arrays when possible (selection via fancy
indexing copies, projection does not).

Every object (TEXT) column additionally carries a table-level dictionary
encoding (:class:`ColumnEncoding`): int32 first-occurrence codes plus the
value → code dictionary, built once per relation and shared by every
derived relation that shares the column array (rename / projection /
prefixing).  The late-materialized storage engine gathers these codes
through join index vectors instead of re-encoding values per APT, and the
vectorized ``distinct`` / primary-key paths dedup on them.
"""

from __future__ import annotations

import itertools
import math
import weakref
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from .errors import IntegrityError, SchemaError
from .schema import Column, TableSchema
from .types import ColumnType, coerce_value, infer_column_type

# Process-wide counter backing Relation.fingerprint.  Relations are
# immutable once built, so a unique per-instance token is a sound
# memoization key: equal fingerprints imply identical contents.
_FINGERPRINT_COUNTER = itertools.count(1)


def _is_null_cell(value: Any) -> bool:
    """NULL under pattern-match semantics: ``None`` or a float NaN."""
    if value is None:
        return True
    if isinstance(value, (float, np.floating)):
        return math.isnan(value)
    return False


@dataclass
class ColumnEncoding:
    """Table-level dictionary encoding of one object column.

    ``codes`` assigns each row the first-occurrence code of its value
    under dict semantics (identity-then-equality, so every distinct NaN
    object keeps its own code while equal strings share one).  NULL-ish
    cells (``None`` or float NaN) keep their codes here;
    :attr:`match_codes` collapses them to the kernel's ``-1`` sentinel,
    which never compares equal to a looked-up value code.
    """

    codes: np.ndarray
    code_of: dict[Any, int]
    null_codes: tuple[int, ...]
    _match: np.ndarray | None = field(default=None, repr=False)

    @property
    def match_codes(self) -> np.ndarray:
        """Codes with every NULL-ish cell replaced by ``-1``."""
        if self._match is None:
            if not self.null_codes:
                self._match = self.codes
            else:
                match = self.codes.copy()
                match[np.isin(self.codes, np.array(self.null_codes))] = -1
                self._match = match
        return self._match

    @property
    def none_code(self) -> int | None:
        """The code assigned to the literal ``None`` value, if present."""
        return self.code_of.get(None)

    @property
    def num_codes(self) -> int:
        return len(self.code_of)

    def gather_match(self, rows: np.ndarray | None) -> np.ndarray:
        """Match codes for a row subset without materializing the table.

        Equivalent to ``match_codes[rows]`` but, when the full match
        array has not been built yet, gathers the raw codes first and
        masks NULL-ish codes on the (much smaller) gathered slice — so
        disk-backed code arrays never force a whole-column temporary
        just to serve a subset gather.
        """
        if rows is None:
            return self.match_codes
        if self._match is not None:
            return self._match[rows]
        gathered = np.asarray(self.codes[rows])  # fancy indexing: a copy
        if self.null_codes:
            gathered[np.isin(gathered, np.array(self.null_codes))] = -1
        return gathered


def encode_object_column(arr: np.ndarray) -> ColumnEncoding | None:
    """Dictionary-encode one object column; ``None`` on unhashable values."""
    code_of: dict[Any, int] = {}
    codes = np.empty(len(arr), dtype=np.int32)
    try:
        for i, value in enumerate(arr):
            code = code_of.get(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
            codes[i] = code
    except TypeError:
        return None
    null_codes = tuple(
        code for value, code in code_of.items() if _is_null_cell(value)
    )
    return ColumnEncoding(codes=codes, code_of=code_of, null_codes=null_codes)


def encoding_from_distinct(
    table: np.ndarray,
    first_idx: np.ndarray,
    inverse: np.ndarray,
) -> ColumnEncoding | None:
    """Build a :class:`ColumnEncoding` from a precomputed distinct table.

    ``table[j]`` holds the (coerced) value of the ``j``-th *raw* distinct
    cell, ``first_idx[j]`` the row where that raw cell first occurs, and
    ``inverse`` maps every row to its raw distinct — exactly the triple
    the CSV reader's whole-column ``np.unique`` already produces.  Codes
    reproduce :func:`encode_object_column`'s first-occurrence numbering:
    raw distincts are visited in ascending first-row order and coerced
    values deduplicated under dict semantics, so the ``k``-th *new*
    coerced value seen while scanning rows top-to-bottom gets code ``k``
    — provably the numbering the per-row loop assigns, at O(distinct)
    Python cost instead of O(rows).
    """
    raw_to_code = np.empty(len(table), dtype=np.int32)
    code_of: dict[Any, int] = {}
    try:
        for j in np.argsort(first_idx, kind="stable"):
            value = table[j]
            code = code_of.get(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
            raw_to_code[j] = code
    except TypeError:
        return None
    codes = raw_to_code[inverse.reshape(-1)] if len(inverse) else raw_to_code[:0]
    null_codes = tuple(
        code for value, code in code_of.items() if _is_null_cell(value)
    )
    return ColumnEncoding(
        codes=codes, code_of=code_of, null_codes=null_codes
    )


# ----------------------------------------------------------------------
# Sort indexes (window-join support)
# ----------------------------------------------------------------------
# Process-wide counter backing SortIndex.token.  Tokens identify the
# permutation arrays for shared-byte accounting in the engine's prefix
# trie: two cache entries carrying the same token reference the same
# arrays and must be charged for them exactly once.
_SORT_TOKEN_COUNTER = itertools.count(1)

# Column array id -> SortIndex.  Sort indexes are a property of the
# *array* (all aliases/projections of a base table share its arrays), so
# the registry guarantees one permutation per table column per process
# even when derived relations are created at different times and never
# exchanged inheritance.  Entries are removed when the array is
# garbage-collected, so a recycled id can never alias a stale index.
_SORT_INDEX_REGISTRY: dict[int, "SortIndex"] = {}

_INT32_MAX = 2**31 - 1


class SortIndex:
    """A stable sort permutation over one column's join-key domain.

    ``perm`` lists the column's row indices ordered ascending by join
    key (stable, so rows with equal keys keep ascending row order —
    exactly the within-group order the hash core's stable argsort
    produces).  ``keys`` is the key domain gathered in that order:

    * object (TEXT) columns sort their :class:`ColumnEncoding`
      ``match_codes`` — NULL-ish rows (code ``-1``) land in one run at
      the front, which probes must mask (a translated probe code of
      ``-1`` means *no match*, never "the NULL run");
    * numeric columns sort raw values — float NaN rows sort to the tail
      and ``n_valid`` bounds the searchable prefix.

    Instances are immutable and shared process-wide per column array
    (see :func:`shared_sort_index`); ``token`` identifies the arrays for
    charge-once byte accounting in caches.
    """

    __slots__ = ("token", "perm", "keys", "n_valid", "encoding",
                 "_translations")

    def __init__(
        self,
        perm: np.ndarray,
        keys: np.ndarray,
        n_valid: int,
        encoding: ColumnEncoding | None,
    ):
        self.token = next(_SORT_TOKEN_COUNTER)
        self.perm = perm
        self.keys = keys
        self.n_valid = n_valid
        self.encoding = encoding
        # id(probe encoding) -> (probe encoding, translation array).
        # The strong reference keeps the keyed id stable; ColumnEncoding
        # is an eq-dataclass (unhashable), so identity keying is the
        # only sound option — and the right one, since encodings are
        # built once per table and shared by every derived relation.
        self._translations: dict[
            int, tuple[ColumnEncoding, np.ndarray]
        ] = {}

    @property
    def nbytes(self) -> int:
        """Resident bytes of the shared arrays (perm + sorted keys)."""
        return self.perm.nbytes + self.keys.nbytes

    def translation(self, probe: ColumnEncoding) -> np.ndarray:
        """Map a probe column's codes into this build column's codes.

        Entry ``t[c]`` is the build-side match code of probe code ``c``,
        or ``-1`` when the probed value is NULL-ish or absent from the
        build side (either way: no match).  Built once per probe
        encoding under the same boxed-Python equality the hash core's
        object path uses (``1`` and ``1.0`` translate to one code).
        """
        assert self.encoding is not None
        key = id(probe)
        hit = self._translations.get(key)
        if hit is not None:
            return hit[1]
        build_code_of = self.encoding.code_of
        table = np.full(probe.num_codes, -1, dtype=np.int32)
        for value, code in probe.code_of.items():
            if _is_null_cell(value):
                continue
            build = build_code_of.get(value)
            if build is not None:
                table[code] = build
        self._translations[key] = (probe, table)
        return table


def build_sort_index(
    arr: np.ndarray, encoding: ColumnEncoding | None
) -> SortIndex | None:
    """Build a :class:`SortIndex` for one column array, or ``None``.

    ``None`` marks columns the window-join fast path cannot serve:
    object columns that defeated dictionary encoding, exotic dtypes,
    and arrays too large for int32 permutations — callers fall back to
    the hash core.
    """
    if len(arr) > _INT32_MAX:
        return None
    if arr.dtype == object:
        if encoding is None:
            return None
        match = encoding.match_codes
        perm = np.argsort(match, kind="stable")
        return SortIndex(
            perm=perm.astype(np.int32),
            keys=match[perm],
            n_valid=len(arr),
            encoding=encoding,
        )
    if arr.ndim == 1 and arr.dtype.kind in "if":
        perm = np.argsort(arr, kind="stable")  # NaNs sort to the tail
        keys = arr[perm]
        n_valid = len(arr)
        if arr.dtype.kind == "f":
            n_valid -= int(np.isnan(arr).sum())
        return SortIndex(
            perm=perm.astype(np.int32),
            keys=keys,
            n_valid=n_valid,
            encoding=None,
        )
    return None


def shared_sort_index(
    arr: np.ndarray, encoding: ColumnEncoding | None
) -> SortIndex | None:
    """The process-shared sort index of a column array (built once).

    Keyed by array identity: every relation sharing the array (aliases,
    projections, renames — and independently derived ones) reuses the
    same permutation.  A fresh array (``take``/``concat`` copies, or an
    array whose id was recycled after garbage collection) always gets a
    fresh index.
    """
    key = id(arr)
    index = _SORT_INDEX_REGISTRY.get(key)
    if index is not None:
        return index
    index = build_sort_index(arr, encoding)
    if index is not None:
        try:
            weakref.finalize(arr, _SORT_INDEX_REGISTRY.pop, key, None)
        except TypeError:
            # Un-weakref-able array: still usable, just not registered
            # (registering without cleanup could alias a recycled id).
            return index
        _SORT_INDEX_REGISTRY[key] = index
    return index


def _column_array(values: Sequence[Any], ctype: ColumnType) -> np.ndarray:
    """Build the storage array for one column, handling NULL promotion."""
    has_null = any(v is None for v in values)
    if ctype is ColumnType.INT and has_null:
        # Integer columns with NULLs are stored as float64 with NaN.
        data = np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return data
    if ctype is ColumnType.INT:
        return np.array([int(v) for v in values], dtype=np.int64)
    if ctype is ColumnType.FLOAT:
        return np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    return np.array(list(values), dtype=object)


# ----------------------------------------------------------------------
# Lazy (disk-backed) column support
# ----------------------------------------------------------------------
# A Relation column slot may hold, instead of an ndarray, any object
# implementing the lazy-column protocol: ``dtype``, ``__len__``,
# ``nbytes``, ``materialize() -> np.ndarray`` (cached, identity-stable)
# and ``gather(rows) -> np.ndarray`` (bounded by ``len(rows)``).  The
# out-of-core column store (repro.db.colstore) installs such proxies for
# object columns so opening a saved database never unpickles a value
# dictionary it does not touch.  The proxy object itself stays in
# ``_columns`` forever — array-identity registries (sort indexes) and
# inherited encodings key on the slot value, which must not change.


def _column_values(arr: Any) -> np.ndarray:
    """The full value array of a column slot (materializing proxies)."""
    if isinstance(arr, np.ndarray):
        return arr
    return arr.materialize()


def _gather_values(arr: Any, rows: np.ndarray) -> np.ndarray:
    """``arr[rows]`` for ndarrays; a bounded proxy gather otherwise."""
    if isinstance(arr, np.ndarray):
        return arr[rows]
    return arr.gather(rows)


class Relation:
    """An immutable columnar table: a schema plus one array per column."""

    __slots__ = (
        "schema", "_columns", "_nrows", "_fingerprint", "_encodings",
        "_sort_indexes",
    )

    def __init__(self, schema: TableSchema, columns: dict[str, np.ndarray]):
        if set(columns) != set(schema.column_names):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema "
                f"{schema.column_names}"
            )
        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns with lengths {sorted(lengths)}")
        self.schema = schema
        self._columns = columns
        self._nrows = lengths.pop() if lengths else 0
        self._fingerprint: int | None = None
        # Column name -> ColumnEncoding (or None when the column defeated
        # dictionary encoding).  Lazily filled; derived relations sharing
        # a column array inherit its entry (see rename/rename_columns).
        self._encodings: dict[str, ColumnEncoding | None] = {}
        # Column name -> SortIndex (or None when the column cannot carry
        # one).  Same lifecycle as _encodings; the process-wide registry
        # in shared_sort_index backstops relations derived without
        # inheritance.
        self._sort_indexes: dict[str, SortIndex | None] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]],
        validate: bool = True,
    ) -> "Relation":
        """Build a relation from row tuples, coercing values to the schema."""
        materialized = [tuple(row) for row in rows]
        width = len(schema.columns)
        for row in materialized:
            if len(row) != width:
                raise SchemaError(
                    f"row of width {len(row)} for schema of width {width}"
                )
        columns: dict[str, np.ndarray] = {}
        for index, col in enumerate(schema.columns):
            raw = [row[index] for row in materialized]
            if validate:
                raw = [coerce_value(v, col.ctype) for v in raw]
            columns[col.name] = _column_array(raw, col.ctype)
        relation = cls(schema, columns)
        if validate and schema.primary_key:
            relation._check_primary_key()
        return relation

    @classmethod
    def from_dicts(
        cls, name: str, records: list[dict[str, Any]],
        primary_key: tuple[str, ...] = (),
    ) -> "Relation":
        """Build a relation from dict records, inferring column types."""
        if not records:
            raise SchemaError("cannot infer a schema from zero records")
        names = list(records[0].keys())
        columns = []
        for cname in names:
            values = [rec.get(cname) for rec in records]
            columns.append(Column(cname, infer_column_type(values)))
        schema = TableSchema(name=name, columns=columns, primary_key=primary_key)
        return cls.from_rows(schema, ([rec.get(c) for c in names] for rec in records))

    @classmethod
    def empty(cls, schema: TableSchema) -> "Relation":
        """A zero-row relation with the given schema."""
        columns = {
            col.name: np.empty(0, dtype=col.ctype.numpy_dtype())
            for col in schema.columns
        }
        return cls(schema, columns)

    def _check_primary_key(self) -> None:
        """Reject duplicate primary keys, vectorized over encoded codes.

        Equality semantics match the historical per-row tuple-set check:
        object cells compare by identity-then-equality (the dictionary
        encoding's dict semantics), float NaN keys never compare equal
        (each NaN row gets a distinct code).  Unencodable (unhashable)
        key columns fall back to the original per-row loop.
        """
        key_cols = list(self.schema.primary_key)
        codes = self._row_codes(key_cols)
        if codes is None:
            arrays = [self.column(c) for c in key_cols]
            seen: set[tuple[Any, ...]] = set()
            for i in range(self._nrows):
                key = tuple(arr[i] for arr in arrays)
                if key in seen:
                    raise IntegrityError(
                        f"duplicate primary key {key} in table "
                        f"{self.schema.name!r}"
                    )
                seen.add(key)
            return
        _, first_idx, inverse = np.unique(
            codes, axis=0, return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        duplicate = np.nonzero(first_idx[inverse] != np.arange(self._nrows))[0]
        if len(duplicate):
            i = int(duplicate[0])
            key = tuple(self.column(c)[i] for c in key_cols)
            raise IntegrityError(
                f"duplicate primary key {key} in table {self.schema.name!r}"
            )

    def _row_codes(self, names: list[str]) -> np.ndarray | None:
        """An ``(nrows, len(names))`` int64 code matrix whose row equality
        matches per-row tuple equality, or ``None`` when an object column
        defeats dictionary encoding.

        Object columns use their table-level :class:`ColumnEncoding`
        (identity-then-equality); float columns give every NaN cell a
        distinct code (fresh NaN scalars never compare equal in the tuple
        path either); integer columns factorize exactly.
        """
        columns: list[np.ndarray] = []
        for name in names:
            arr = self._columns[name]
            if arr.dtype == object:
                encoding = self.encoding(name)
                if encoding is None:
                    return None
                columns.append(encoding.codes.astype(np.int64))
            elif arr.dtype.kind == "f":
                codes = np.empty(self._nrows, dtype=np.int64)
                nan_mask = np.isnan(arr)
                finite = ~nan_mask
                if finite.any():
                    _, inverse = np.unique(arr[finite], return_inverse=True)
                    codes[finite] = inverse.reshape(-1)
                distinct_base = int(finite.sum())
                n_nan = int(nan_mask.sum())
                if n_nan:
                    codes[nan_mask] = distinct_base + np.arange(n_nan)
                columns.append(codes)
            else:
                _, inverse = np.unique(arr, return_inverse=True)
                columns.append(inverse.reshape(-1).astype(np.int64))
        if not columns:
            return np.zeros((self._nrows, 0), dtype=np.int64)
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def fingerprint(self) -> int:
        """A process-unique identity token for this (immutable) relation.

        Two relations with the same fingerprint are the same object, so
        caches (e.g. the memoized hash-join path in
        :mod:`repro.db.executor`) can key results on input fingerprints
        without hashing any column data.  Assigned lazily on first use.
        """
        if self._fingerprint is None:
            self._fingerprint = next(_FINGERPRINT_COUNTER)
        return self._fingerprint

    @property
    def estimated_bytes(self) -> int:
        """Approximate *incremental* resident size, in bytes.

        Sums the column arrays' buffer sizes.  Object columns count only
        their pointer arrays: derived relations (joins, selections) copy
        pointers, not the boxed values, which stay shared with the source
        relations — so the pointer array is the true marginal cost.  Used
        by the engine's bounded-memory APT prefix cache.
        """
        return sum(arr.nbytes for arr in self._columns.values())

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names

    def __len__(self) -> int:
        return self._nrows

    def column(self, name: str) -> np.ndarray:
        """The storage array for one column (do not mutate).

        Disk-backed object columns materialize here (decode table
        applied to the code array, cached on the proxy); prefer
        :meth:`column_dtype` / :meth:`gather_column` when the full value
        array is not actually needed.
        """
        if name not in self._columns:
            raise SchemaError(f"no column {name!r} in {self.schema.name!r}")
        return _column_values(self._columns[name])

    def column_dtype(self, name: str) -> np.dtype:
        """One column's storage dtype, without materializing any values."""
        if name not in self._columns:
            raise SchemaError(f"no column {name!r} in {self.schema.name!r}")
        return self._columns[name].dtype

    def gather_column(self, name: str, rows: np.ndarray | None) -> np.ndarray:
        """``column(name)[rows]`` without materializing lazy columns.

        The gather's peak footprint is bounded by ``len(rows)`` even for
        disk-backed columns (codes gather from the memmap, then only the
        gathered slice decodes).  ``rows=None`` returns the full column.
        """
        if name not in self._columns:
            raise SchemaError(f"no column {name!r} in {self.schema.name!r}")
        arr = self._columns[name]
        if rows is None:
            return _column_values(arr)
        return _gather_values(arr, rows)

    def column_type(self, name: str) -> ColumnType:
        return self.schema.column_type(name)

    # ------------------------------------------------------------------
    # Dictionary encoding (late-materialization support)
    # ------------------------------------------------------------------
    def encoding(self, name: str) -> ColumnEncoding | None:
        """The dictionary encoding of an object column, built on demand.

        Returns ``None`` for numeric columns and for object columns whose
        values defeat encoding (unhashable).  The result is cached on
        this relation and inherited by derived relations that share the
        column array (rename, projection, prefixing), so a base table is
        encoded at most once per process regardless of how many aliases,
        APTs or questions consume it.
        """
        if name in self._encodings:
            return self._encodings[name]
        if self.column_dtype(name) != object:
            self._encodings[name] = None
            return None
        encoding = encode_object_column(self.column(name))
        self._encodings[name] = encoding
        return encoding

    def encode_categoricals(self) -> None:
        """Eagerly build the dictionary encoding of every object column.

        :class:`repro.db.database.Database` calls this at load time so
        the late-materialized engine's code gathers never pay the
        encoding pass on a hot path.
        """
        for col in self.schema.columns:
            if self._columns[col.name].dtype == object:
                self.encoding(col.name)

    def sort_index(self, name: str) -> SortIndex | None:
        """The shared sort permutation over a column's join-key domain.

        Built lazily, once per column array per process: the result is
        cached on this relation, inherited by derived relations that
        share the array (rename, projection, prefixing — exactly like
        :meth:`encoding`), and deduplicated across independently derived
        aliases through a process-wide array-identity registry.  Returns
        ``None`` for columns the window-join path cannot index
        (unencodable object columns, exotic dtypes); ``take``/``concat``
        results copy their arrays and therefore rebuild.
        """
        if name in self._sort_indexes:
            return self._sort_indexes[name]
        if name not in self._columns:
            raise SchemaError(f"no column {name!r} in {self.schema.name!r}")
        # The raw slot (a proxy for disk-backed object columns) is the
        # registry key and, for object columns, never touched beyond its
        # length — building a sort index must not materialize values.
        arr = self._columns[name]
        index = shared_sort_index(arr, self.encoding(name))
        self._sort_indexes[name] = index
        return index

    def _inherit_encodings(
        self, source: "Relation", mapping: dict[str, str] | None = None
    ) -> "Relation":
        """Adopt ``source``'s cached encodings and sort indexes for
        shared column arrays."""
        if mapping is None:
            self._encodings.update(
                {
                    name: enc
                    for name, enc in source._encodings.items()
                    if name in self._columns
                }
            )
            self._sort_indexes.update(
                {
                    name: index
                    for name, index in source._sort_indexes.items()
                    if name in self._columns
                }
            )
        else:
            for name, enc in source._encodings.items():
                new_name = mapping.get(name, name)
                if new_name in self._columns:
                    self._encodings[new_name] = enc
            for name, index in source._sort_indexes.items():
                new_name = mapping.get(name, name)
                if new_name in self._columns:
                    self._sort_indexes[new_name] = index
        return self

    def row(self, index: int) -> tuple[Any, ...]:
        """One row as a tuple in schema column order."""
        return tuple(self.column(c)[index] for c in self.schema.column_names)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        names = self.schema.column_names
        arrays = [self.column(c) for c in names]
        for i in range(self._nrows):
            yield tuple(arr[i] for arr in arrays)

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def __repr__(self) -> str:
        return (
            f"Relation({self.schema.name!r}, {self._nrows} rows, "
            f"{len(self.schema.columns)} cols)"
        )

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Relation":
        """Rows selected by an index array (preserves duplicates/order)."""
        columns = {
            name: _gather_values(arr, indices)
            for name, arr in self._columns.items()
        }
        return Relation(self.schema, columns)

    def filter_mask(self, mask: np.ndarray) -> "Relation":
        """Rows where the boolean ``mask`` is True."""
        if mask.dtype != np.bool_ or len(mask) != self._nrows:
            raise SchemaError("filter mask must be boolean and row-aligned")
        return self.take(np.nonzero(mask)[0])

    def project(self, names: list[str]) -> "Relation":
        """Keep only ``names``, in the given order (shares arrays)."""
        schema = self.schema.project(names)
        projected = Relation(schema, {n: self._columns[n] for n in names})
        return projected._inherit_encodings(self)

    def rename(self, new_name: str) -> "Relation":
        renamed = Relation(self.schema.rename(new_name), dict(self._columns))
        return renamed._inherit_encodings(self)

    def rename_columns(self, mapping: dict[str, str]) -> "Relation":
        """Rename columns via ``mapping`` (missing names keep theirs)."""
        new_cols = [
            Column(mapping.get(col.name, col.name), col.ctype)
            for col in self.schema.columns
        ]
        pk = tuple(mapping.get(c, c) for c in self.schema.primary_key)
        schema = TableSchema(name=self.schema.name, columns=new_cols, primary_key=pk)
        columns = {
            mapping.get(name, name): arr for name, arr in self._columns.items()
        }
        return Relation(schema, columns)._inherit_encodings(self, mapping)

    def prefix_columns(self, prefix: str) -> "Relation":
        """Prefix every column name, used for APT disambiguation."""
        return self.rename_columns(
            {name: f"{prefix}{name}" for name in self.schema.column_names}
        )

    def with_column(
        self, name: str, ctype: ColumnType, values: np.ndarray
    ) -> "Relation":
        """A copy with one extra column appended."""
        if len(values) != self._nrows:
            raise SchemaError("new column length does not match relation")
        schema = TableSchema(
            name=self.schema.name,
            columns=list(self.schema.columns) + [Column(name, ctype)],
            primary_key=self.schema.primary_key,
        )
        columns = dict(self._columns)
        columns[name] = values
        return Relation(schema, columns)._inherit_encodings(self)

    def concat(self, other: "Relation") -> "Relation":
        """Union-all of two relations with identical column names/types."""
        if self.schema.column_names != other.schema.column_names:
            raise SchemaError("concat requires identical column lists")
        columns = {}
        for col in self.schema.columns:
            left = self.column(col.name)
            right = other.column(col.name)
            if left.dtype != right.dtype:
                left = left.astype(np.float64)
                right = right.astype(np.float64)
            columns[col.name] = np.concatenate([left, right])
        schema = TableSchema(
            name=self.schema.name,
            columns=list(self.schema.columns),
            primary_key=(),
        )
        return Relation(schema, columns)

    def sample(self, fraction: float, rng: np.random.Generator,
               max_rows: int | None = None) -> "Relation":
        """A uniform row sample of ``fraction`` of the rows.

        ``max_rows`` caps the absolute sample size (the paper caps LCA
        samples at 1000 rows).  Sampling is without replacement.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"sample fraction must be in (0, 1], got {fraction}")
        size = max(1, int(round(self._nrows * fraction))) if self._nrows else 0
        if max_rows is not None:
            size = min(size, max_rows)
        if size >= self._nrows:
            return self
        indices = rng.choice(self._nrows, size=size, replace=False)
        return self.take(np.sort(indices))

    def distinct(self) -> "Relation":
        """Duplicate-free copy preserving first occurrence order.

        Deduplicates on the table-level dictionary codes (one
        ``np.unique`` over an int64 code matrix) instead of per-row
        Python tuples; equality semantics are unchanged — see
        :meth:`_row_codes`.  Columns that defeat encoding fall back to
        the original per-row loop.
        """
        codes = self._row_codes(self.schema.column_names)
        if codes is None:
            seen: set[tuple[Any, ...]] = set()
            keep: list[int] = []
            for i, row in enumerate(self.iter_rows()):
                if row not in seen:
                    seen.add(row)
                    keep.append(i)
            return self.take(np.array(keep, dtype=np.int64))
        if codes.shape[1] == 0:
            return self
        _, first_idx = np.unique(codes, axis=0, return_index=True)
        return self.take(np.sort(first_idx))

    def sort_by(self, names: list[str]) -> "Relation":
        """Rows sorted ascending by the listed columns (stable)."""
        order = np.arange(self._nrows)
        for name in reversed(names):
            arr = self.column(name)
            if arr.dtype == object:
                keys = np.array([str(v) for v in arr[order]])
            else:
                keys = arr[order]
            order = order[np.argsort(keys, kind="stable")]
        return self.take(order)
