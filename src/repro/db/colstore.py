"""Persistent, memory-mappable column store for encoded databases.

Layout of a saved database directory:

- ``manifest.json`` — format version, catalog (table schemas, primary
  and foreign keys), and per-column storage records: kind (``numeric`` /
  ``encoded`` / ``objects``), dtype, byte offset/length into the table's
  data file, and NULL-sentinel codes.
- ``<table>.bin`` — every numeric column's raw array and every encoded
  object column's int32 first-occurrence code array, concatenated with
  8-byte alignment.
- ``<table>.dicts.pkl`` — one pickle per table holding the decode table
  (code → value list) of each encoded column and the raw value list of
  each column that defeated dictionary encoding.

:func:`open_columnar` costs O(manifest + dicts touched): every data file
is mapped read-only with ``np.memmap`` (no pages are read), numeric
columns and code arrays become zero-copy dtype views into the map, and
object columns become lazy proxies (see :mod:`repro.db.relation`'s
lazy-column protocol) whose decode tables unpickle only on the first
gather that actually needs values.  ``ColumnEncoding`` entries are
pre-installed with memmap-backed codes and a lazily-filled ``code_of``
dict, so joins, sort indexes and the mining kernel's code matrices run
against disk-backed codes without ever materializing value arrays;
gathers copy at the edge exactly like the in-memory path.
"""

from __future__ import annotations

import json
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .database import Database
from .errors import SchemaError
from .relation import ColumnEncoding, Relation
from .schema import Column, TableSchema
from .types import ColumnType

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

_ALIGN = 8
# Default bound on per-chunk bytes for whole-column copies (save path,
# shared-memory export): large enough to amortize loop overhead, small
# enough that copying a disk-backed column never doubles peak RSS.
DEFAULT_COPY_CHUNK_BYTES = 16 * 2**20

KIND_NUMERIC = "numeric"
KIND_ENCODED = "encoded"
KIND_OBJECTS = "objects"


def copy_chunked(
    dst: np.ndarray,
    src: np.ndarray,
    chunk_bytes: int = DEFAULT_COPY_CHUNK_BYTES,
) -> None:
    """Copy ``src`` into ``dst`` in bounded slices.

    Peak temporary footprint is one chunk, so filling a file buffer or a
    shared-memory segment from a memmap-backed column streams through
    the page cache instead of materializing the whole array.
    """
    n = len(src)
    if len(dst) != n:
        raise ValueError(f"length mismatch: {len(dst)} vs {n}")
    itemsize = src.dtype.itemsize if src.dtype != object else 8
    step = max(1, int(chunk_bytes) // max(1, itemsize))
    for start in range(0, n, step):
        dst[start:start + step] = src[start:start + step]


# ----------------------------------------------------------------------
# Lazy open-path pieces
# ----------------------------------------------------------------------
class _DictStore:
    """One table's pickled value dictionaries, unpickled at most once.

    Thread-safe: mining workers are threads and may race the first
    gather of different columns of the same table.  ``loaded`` is the
    observable the O(dict) open test keys on — opening a database must
    not flip it; only a value gather may.
    """

    __slots__ = ("path", "_lock", "_raw", "_decode_arrays")

    def __init__(self, path: Path):
        self.path = path
        self._lock = threading.Lock()
        self._raw: dict[str, list[Any]] | None = None
        self._decode_arrays: dict[str, np.ndarray] = {}

    @property
    def loaded(self) -> bool:
        return self._raw is not None

    def _load(self) -> dict[str, list[Any]]:
        if self._raw is None:
            with self._lock:
                if self._raw is None:
                    with open(self.path, "rb") as handle:
                        self._raw = pickle.load(handle)
        return self._raw

    def values(self, column: str) -> list[Any]:
        return self._load()[column]

    def decode_array(self, column: str) -> np.ndarray:
        """The code → value decode table as an object array (cached)."""
        arr = self._decode_arrays.get(column)
        if arr is None:
            values = self.values(column)
            arr = np.empty(len(values), dtype=object)
            for i, value in enumerate(values):
                arr[i] = value
            self._decode_arrays[column] = arr
        return arr


class _LazyCodeDict(dict):
    """A ``value -> code`` dict filled from the decode table on first read.

    ``ColumnEncoding.code_of`` consumers only ever read (``get``,
    ``items``, ``len``, containment), so overriding the read entry
    points is enough; the fill is idempotent, making concurrent first
    reads from worker threads safe.
    """

    __slots__ = ("_loader",)

    def __init__(self, loader: Callable[[], list[Any]]):
        super().__init__()
        self._loader = loader

    def _ensure(self) -> None:
        if self._loader is not None:
            values = self._loader()
            for code, value in enumerate(values):
                dict.__setitem__(self, value, code)
            self._loader = None

    def __getitem__(self, key):
        self._ensure()
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._ensure()
        return dict.get(self, key, default)

    def __contains__(self, key):
        self._ensure()
        return dict.__contains__(self, key)

    def __len__(self):
        self._ensure()
        return dict.__len__(self)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)

    def keys(self):
        self._ensure()
        return dict.keys(self)

    def values(self):
        self._ensure()
        return dict.values(self)

    def items(self):
        self._ensure()
        return dict.items(self)

    def __eq__(self, other):
        self._ensure()
        return dict.__eq__(self, other)

    __hash__ = None  # type: ignore[assignment]  # dicts are unhashable

    def __repr__(self):
        if self._loader is not None:
            return "_LazyCodeDict(<unloaded>)"
        return dict.__repr__(self)


class LazyObjectColumn:
    """Disk-backed encoded object column (lazy-column protocol).

    ``materialize()`` applies the decode table to the full memmap code
    array once and caches the result (identity-stable: every caller
    sees the same ndarray); ``gather(rows)`` decodes only the gathered
    slice, so subset gathers over huge columns stay bounded by the
    subset size.
    """

    __slots__ = ("_codes", "_store", "_name", "_cached", "__weakref__")

    dtype = np.dtype(object)

    def __init__(self, codes: np.ndarray, store: _DictStore, name: str):
        self._codes = codes
        self._store = store
        self._name = name
        self._cached: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._codes)

    @property
    def nbytes(self) -> int:
        # Pointer-array cost, matching the in-memory accounting: boxed
        # values live in the (shared) decode table.
        return len(self._codes) * 8

    def materialize(self) -> np.ndarray:
        if self._cached is None:
            decode = self._store.decode_array(self._name)
            if len(self._codes):
                self._cached = decode[np.asarray(self._codes)]
            else:
                self._cached = np.empty(0, dtype=object)
        return self._cached

    def gather(self, rows: np.ndarray) -> np.ndarray:
        if self._cached is not None:
            return self._cached[rows]
        codes = np.asarray(self._codes)[rows]
        return self._store.decode_array(self._name)[codes]


class LazyValuesColumn:
    """Disk-backed unencodable object column: raw pickled values."""

    __slots__ = ("_store", "_name", "_rows", "_cached", "__weakref__")

    dtype = np.dtype(object)

    def __init__(self, store: _DictStore, name: str, rows: int):
        self._store = store
        self._name = name
        self._rows = rows
        self._cached: np.ndarray | None = None

    def __len__(self) -> int:
        return self._rows

    @property
    def nbytes(self) -> int:
        return self._rows * 8

    def materialize(self) -> np.ndarray:
        if self._cached is None:
            values = self._store.values(self._name)
            arr = np.empty(self._rows, dtype=object)
            for i, value in enumerate(values):
                arr[i] = value
            self._cached = arr
        return self._cached

    def gather(self, rows: np.ndarray) -> np.ndarray:
        return self.materialize()[rows]


@dataclass
class ColumnStoreInfo:
    """Handle on an opened store, exposed as ``Database.column_store``.

    ``dicts_loaded`` counts tables whose value-dictionary pickle has
    been read so far — zero right after :func:`open_columnar`, growing
    only as gathers touch tables.
    """

    directory: Path
    stores: dict[str, _DictStore] = field(default_factory=dict)

    @property
    def dicts_loaded(self) -> int:
        return sum(1 for store in self.stores.values() if store.loaded)

    def loaded_tables(self) -> list[str]:
        return sorted(
            name for name, store in self.stores.items() if store.loaded
        )


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def _write_aligned(handle, arr: np.ndarray, offset: int) -> tuple[int, int]:
    """Append ``arr``'s raw bytes at 8-byte alignment; (new_offset, start)."""
    pad = (-offset) % _ALIGN
    if pad:
        handle.write(b"\0" * pad)
        offset += pad
    arr = np.ascontiguousarray(arr)
    arr.tofile(handle)  # streams from memmaps: no whole-array temporary
    return offset + arr.nbytes, offset


def save_columnar(db: Database, directory: str | Path) -> None:
    """Write ``db`` to ``directory`` in the column-store format.

    Numeric arrays and code arrays go to ``<table>.bin`` verbatim;
    object values go to the per-table dict pickle (decode tables for
    encoded columns, raw value lists otherwise).  Saving an already
    disk-backed database round-trips (lazy columns load what they must).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "name": db.name,
        "tables": {},
        "foreign_keys": [
            {
                "table": fk.table,
                "columns": list(fk.columns),
                "ref_table": fk.ref_table,
                "ref_columns": list(fk.ref_columns),
            }
            for fk in db.foreign_keys
        ],
    }
    for table_name in db.table_names:
        relation = db.table(table_name)
        columns_meta: list[dict[str, Any]] = []
        dicts: dict[str, list[Any]] = {}
        offset = 0
        with open(directory / f"{table_name}.bin", "wb") as handle:
            for col in relation.schema.columns:
                meta: dict[str, Any] = {
                    "name": col.name,
                    "type": col.ctype.value,
                    "rows": relation.num_rows,
                }
                dtype = relation.column_dtype(col.name)
                if dtype != object:
                    arr = relation.column(col.name)
                    offset, start = _write_aligned(handle, arr, offset)
                    meta.update(
                        kind=KIND_NUMERIC,
                        dtype=arr.dtype.str,
                        offset=start,
                        nbytes=int(arr.nbytes),
                    )
                else:
                    encoding = relation.encoding(col.name)
                    if encoding is None:
                        dicts[col.name] = list(relation.column(col.name))
                        meta.update(kind=KIND_OBJECTS)
                    else:
                        codes = np.ascontiguousarray(
                            encoding.codes, dtype=np.int32
                        )
                        offset, start = _write_aligned(handle, codes, offset)
                        decode: list[Any] = [None] * encoding.num_codes
                        for value, code in encoding.code_of.items():
                            decode[code] = value
                        dicts[col.name] = decode
                        meta.update(
                            kind=KIND_ENCODED,
                            dtype=codes.dtype.str,
                            offset=start,
                            nbytes=int(codes.nbytes),
                            null_codes=[int(c) for c in encoding.null_codes],
                        )
                columns_meta.append(meta)
        table_meta: dict[str, Any] = {
            "rows": relation.num_rows,
            "primary_key": list(relation.schema.primary_key),
            "columns": columns_meta,
        }
        if dicts:
            with open(directory / f"{table_name}.dicts.pkl", "wb") as handle:
                pickle.dump(dicts, handle, protocol=pickle.HIGHEST_PROTOCOL)
            table_meta["dicts_file"] = f"{table_name}.dicts.pkl"
        manifest["tables"][table_name] = table_meta
    # Manifest last: a torn save is unopenable rather than wrong.
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))


# ----------------------------------------------------------------------
# Open
# ----------------------------------------------------------------------
def _column_view(
    buf: np.ndarray | None, meta: dict[str, Any]
) -> np.ndarray:
    """A zero-copy read-only dtype view into a table's mapped data file."""
    dtype = np.dtype(meta["dtype"])
    nbytes = int(meta["nbytes"])
    if nbytes == 0:
        return np.empty(0, dtype=dtype)
    if buf is None:
        raise SchemaError(
            f"manifest references {nbytes} data bytes but the table's "
            "data file is empty"
        )
    start = int(meta["offset"])
    return buf[start:start + nbytes].view(dtype)


def open_columnar(directory: str | Path) -> Database:
    """Open a database saved by :func:`save_columnar`.

    Cost is O(manifest + dicts touched): data files are memory-mapped,
    not read, and value dictionaries unpickle on first gather.  Primary
    keys were validated at ingest and are not re-checked here.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise SchemaError(f"no column store at {directory} (missing manifest)")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported column-store format {manifest.get('format')!r}"
        )
    db = Database(name=manifest.get("name", directory.name))
    info = ColumnStoreInfo(directory=directory)
    for table_name, table_meta in manifest["tables"].items():
        data_path = directory / f"{table_name}.bin"
        buf: np.ndarray | None = None
        if data_path.exists() and data_path.stat().st_size:
            buf = np.memmap(data_path, dtype=np.uint8, mode="r")
        store = _DictStore(directory / table_meta.get("dicts_file", ""))
        if table_meta.get("dicts_file"):
            info.stores[table_name] = store
        columns: dict[str, Any] = {}
        encodings: dict[str, ColumnEncoding | None] = {}
        schema_columns: list[Column] = []
        for meta in table_meta["columns"]:
            cname = meta["name"]
            schema_columns.append(Column(cname, ColumnType(meta["type"])))
            kind = meta["kind"]
            if kind == KIND_NUMERIC:
                columns[cname] = _column_view(buf, meta)
            elif kind == KIND_ENCODED:
                codes = _column_view(buf, meta)
                columns[cname] = LazyObjectColumn(codes, store, cname)
                loader = _decode_loader(store, cname)
                encodings[cname] = ColumnEncoding(
                    codes=codes,
                    code_of=_LazyCodeDict(loader),
                    null_codes=tuple(
                        int(c) for c in meta.get("null_codes", [])
                    ),
                )
            elif kind == KIND_OBJECTS:
                columns[cname] = LazyValuesColumn(
                    store, cname, int(meta["rows"])
                )
                encodings[cname] = None
            else:
                raise SchemaError(f"unknown column kind {kind!r}")
        schema = TableSchema(
            name=table_name,
            columns=schema_columns,
            primary_key=tuple(table_meta.get("primary_key", [])),
        )
        relation = Relation(schema, columns)
        relation._encodings.update(encodings)
        db.add_relation(relation)
    for fk in manifest.get("foreign_keys", []):
        db.add_foreign_key(
            fk["table"], fk["columns"], fk["ref_table"], fk["ref_columns"]
        )
    db.column_store = info
    return db


def _decode_loader(store: _DictStore, column: str) -> Callable[[], list[Any]]:
    return lambda: store.values(column)
