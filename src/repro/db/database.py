"""The database catalog: named relations plus declared constraints.

A :class:`Database` owns relations keyed by table name, a foreign-key
registry (the seed of CaJaDE's schema graph), and cached per-table
statistics used by the cost model (:mod:`repro.db.statistics`).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .errors import CatalogError, SchemaError
from .relation import Relation
from .schema import ForeignKey, TableSchema


class Database:
    """A named collection of relations with key constraints."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Relation] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._stats_cache: dict[str, "TableStatistics"] = {}

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def create_table(
        self,
        schema: TableSchema,
        rows: Iterable[Sequence[Any]] = (),
        validate: bool = True,
    ) -> Relation:
        """Create a table from a schema and row tuples."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        relation = Relation.from_rows(schema, rows, validate=validate)
        relation.encode_categoricals()
        self._tables[schema.name] = relation
        return relation

    def add_relation(self, relation: Relation, replace: bool = False) -> None:
        """Register an already-built relation under its schema name.

        TEXT columns are dictionary-encoded on registration (load time),
        so derived aliases and the late-materialized mining kernel gather
        the table-level codes instead of re-encoding per APT.
        """
        if relation.schema.name in self._tables and not replace:
            raise SchemaError(f"table {relation.schema.name!r} already exists")
        relation.encode_categoricals()
        self._tables[relation.schema.name] = relation
        self._stats_cache.pop(relation.schema.name, None)

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[name]
        self._stats_cache.pop(name, None)
        self._foreign_keys = [
            fk
            for fk in self._foreign_keys
            if fk.table != name and fk.ref_table != name
        ]

    def table(self, name: str) -> Relation:
        if name not in self._tables:
            raise CatalogError(
                f"no table named {name!r}; available: {sorted(self._tables)}"
            )
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}({rel.num_rows})" for name, rel in sorted(self._tables.items())
        )
        return f"Database({self.name!r}: {sizes})"

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_foreign_key(
        self,
        table: str,
        columns: Sequence[str],
        ref_table: str,
        ref_columns: Sequence[str],
    ) -> ForeignKey:
        """Declare a foreign key; both sides must exist in the catalog."""
        for side, cols in ((table, columns), (ref_table, ref_columns)):
            schema = self.table(side).schema
            for col in cols:
                if not schema.has_column(col):
                    raise SchemaError(
                        f"foreign key references missing column "
                        f"{side}.{col}"
                    )
        fk = ForeignKey(
            table=table,
            columns=tuple(columns),
            ref_table=ref_table,
            ref_columns=tuple(ref_columns),
        )
        self._foreign_keys.append(fk)
        return fk

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        return [fk for fk in self._foreign_keys if fk.table == table]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def warm_join_indexes(self) -> int:
        """Eagerly build sort indexes for declared foreign-key columns.

        The sorted-window join strategy builds each per-column sort
        permutation lazily on first probe; serving deployments can call
        this after load so the first request never pays the argsort.
        Joins key on the FK endpoints (both directions of the schema
        graph), so those columns are warmed.  Returns the number of
        indexable FK endpoint columns; idempotent — repeated calls
        reuse the process-shared indexes.
        """
        warmed = 0
        for fk in self._foreign_keys:
            for table, columns in (
                (fk.table, fk.columns),
                (fk.ref_table, fk.ref_columns),
            ):
                relation = self._tables.get(table)
                if relation is None:
                    continue
                for column in columns:
                    if relation.sort_index(column) is not None:
                        warmed += 1
        return warmed

    def statistics(self, name: str) -> "TableStatistics":
        """Cached per-table statistics for the cost model."""
        from .statistics import TableStatistics

        if name not in self._stats_cache:
            self._stats_cache[name] = TableStatistics.collect(self.table(name))
        return self._stats_cache[name]

    def invalidate_statistics(self) -> None:
        self._stats_cache.clear()

    # ------------------------------------------------------------------
    # Persistence (out-of-core column store)
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist every table in the memory-mappable column-store format.

        See :mod:`repro.db.colstore` for the file layout.  A database
        saved here reopens with :meth:`open` in O(manifest + dicts
        touched) time instead of re-running CSV coercion and encoding.
        """
        from .colstore import save_columnar

        save_columnar(self, directory)

    @classmethod
    def open(cls, directory) -> "Database":
        """Open a database saved by :meth:`save` with memmap-backed columns."""
        from .colstore import open_columnar

        return open_columnar(directory)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def sql(self, text: str) -> Relation:
        """Parse and execute a SQL query against this database."""
        from .executor import execute
        from .parser import parse_sql

        return execute(parse_sql(text), self)

    def total_rows(self) -> int:
        return sum(rel.num_rows for rel in self._tables.values())
