"""Exception hierarchy for the in-memory relational engine.

All engine errors derive from :class:`DatabaseError` so callers can catch a
single base class.  Each subclass corresponds to a distinct failure category
(schema violations, SQL syntax, execution problems) which keeps error
handling in the CaJaDE layers explicit.
"""


class DatabaseError(Exception):
    """Base class for all errors raised by :mod:`repro.db`."""


class SchemaError(DatabaseError):
    """Raised when a schema definition or constraint is invalid."""


class CatalogError(DatabaseError):
    """Raised when a referenced table or column does not exist."""


class IntegrityError(DatabaseError):
    """Raised when a data modification violates a key constraint."""


class ParseError(DatabaseError):
    """Raised when SQL text cannot be parsed.

    The parser only supports the paper's query class (single-block
    SELECT/FROM/WHERE/GROUP BY with aggregates); anything beyond that
    raises ParseError with a message naming the unsupported feature.
    """


class ExecutionError(DatabaseError):
    """Raised when a logically valid query fails during evaluation."""


class TypeMismatchError(ExecutionError):
    """Raised when an expression combines incompatible value types."""
