"""Scalar expressions and predicates over relations.

This is the AST shared by the SQL parser, the executor and CaJaDE's join
conditions.  Evaluation is vectorized: ``Predicate.mask(relation)`` returns
a boolean numpy array over the relation's rows.

Column references may be qualified (``game.winner_id``) or bare
(``winner_id``); resolution against a relation first tries the exact name,
then the suffix match ``*_name`` / ``alias.name`` used by provenance-table
column prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .errors import ExecutionError
from .relation import Relation


def resolve_column(relation: Relation, name: str) -> str:
    """Resolve a possibly-qualified column name against ``relation``.

    Resolution order: exact match, then ``alias.attr`` → ``attr``-suffix
    match (unique suffix required).  Raises ExecutionError when the name is
    absent or ambiguous.
    """
    names = relation.schema.column_names
    if name in names:
        return name
    bare = name.split(".")[-1]
    if bare in names:
        return bare
    suffix_hits = [c for c in names if c.split(".")[-1] == bare]
    if len(suffix_hits) == 1:
        return suffix_hits[0]
    if len(suffix_hits) > 1:
        raise ExecutionError(f"ambiguous column reference {name!r}: {suffix_hits}")
    raise ExecutionError(
        f"unknown column {name!r} in relation {relation.schema.name!r}"
    )


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------
class Expression:
    """Base class: a scalar expression evaluable per row, vectorized."""

    def values(self, relation: Relation) -> np.ndarray:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) reference to a relation column."""

    name: str

    def values(self, relation: Relation) -> np.ndarray:
        return relation.column(resolve_column(relation, self.name))

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def values(self, relation: Relation) -> np.ndarray:
        if isinstance(self.value, str):
            return np.full(relation.num_rows, self.value, dtype=object)
        return np.full(relation.num_rows, self.value)

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic on numeric expressions (+, -, *, /)."""

    op: str
    left: Expression
    right: Expression

    _OPS = {
        "+": np.add,
        "-": np.subtract,
        "*": np.multiply,
        "/": np.divide,
    }

    def values(self, relation: Relation) -> np.ndarray:
        if self.op not in self._OPS:
            raise ExecutionError(f"unknown arithmetic operator {self.op!r}")
        left = self.left.values(relation).astype(np.float64)
        right = self.right.values(relation).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return self._OPS[self.op](left, right)

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
class Predicate:
    """Base class: a boolean expression evaluable as a row mask."""

    def mask(self, relation: Relation) -> np.ndarray:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left OP right`` for OP in =, !=, <, <=, >, >=.

    NULL semantics follow SQL: comparisons involving NULL are False.
    """

    op: str
    left: Expression
    right: Expression

    _NUMERIC_OPS = {
        "=": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }

    def mask(self, relation: Relation) -> np.ndarray:
        if self.op not in self._NUMERIC_OPS:
            raise ExecutionError(f"unknown comparison operator {self.op!r}")
        left = self.left.values(relation)
        right = self.right.values(relation)
        if left.dtype == object or right.dtype == object:
            return self._object_mask(left, right)
        with np.errstate(invalid="ignore"):
            result = self._NUMERIC_OPS[self.op](left, right)
        # NaN (NULL) comparisons are False even for !=.
        if left.dtype.kind == "f" or right.dtype.kind == "f":
            nulls = np.zeros(len(result), dtype=bool)
            if left.dtype.kind == "f":
                nulls |= np.isnan(left)
            if right.dtype.kind == "f":
                nulls |= np.isnan(right)
            result = result & ~nulls
        return result

    def _object_mask(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        result = np.zeros(len(left), dtype=bool)
        for i in range(len(left)):
            lv, rv = left[i], right[i]
            if lv is None or rv is None:
                continue
            try:
                if self.op == "=":
                    result[i] = lv == rv
                elif self.op == "!=":
                    result[i] = lv != rv
                elif self.op == "<":
                    result[i] = lv < rv
                elif self.op == "<=":
                    result[i] = lv <= rv
                elif self.op == ">":
                    result[i] = lv > rv
                else:
                    result[i] = lv >= rv
            except TypeError as exc:
                raise ExecutionError(
                    f"cannot compare {lv!r} with {rv!r}"
                ) from exc
        return result

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates (vacuously true when empty)."""

    parts: tuple[Predicate, ...]

    def mask(self, relation: Relation) -> np.ndarray:
        result = np.ones(relation.num_rows, dtype=bool)
        for part in self.parts:
            result &= part.mask(relation)
            if not result.any():
                break
        return result

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for part in self.parts:
            cols |= part.referenced_columns()
        return cols

    def __str__(self) -> str:
        return " AND ".join(f"({p})" for p in self.parts) or "TRUE"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates (vacuously false when empty)."""

    parts: tuple[Predicate, ...]

    def mask(self, relation: Relation) -> np.ndarray:
        result = np.zeros(relation.num_rows, dtype=bool)
        for part in self.parts:
            result |= part.mask(relation)
        return result

    def referenced_columns(self) -> set[str]:
        cols: set[str] = set()
        for part in self.parts:
            cols |= part.referenced_columns()
        return cols

    def __str__(self) -> str:
        return " OR ".join(f"({p})" for p in self.parts) or "FALSE"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    inner: Predicate

    def mask(self, relation: Relation) -> np.ndarray:
        return ~self.inner.mask(relation)

    def referenced_columns(self) -> set[str]:
        return self.inner.referenced_columns()

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


def conjunction(parts: list[Predicate]) -> Predicate:
    """Flatten a list of predicates into a single conjunction."""
    flat: list[Predicate] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


@dataclass(frozen=True)
class EquiJoinCondition:
    """An equality join condition ``left_table.left_col = right_table.right_col``.

    Join conditions in CaJaDE's schema/join graphs are conjunctions of these
    (paper: "only equi-joins are allowed").
    """

    left_column: str
    right_column: str

    def __str__(self) -> str:
        return f"{self.left_column} = {self.right_column}"
