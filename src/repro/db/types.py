"""Value types for the in-memory relational engine.

The engine distinguishes three logical column types which is exactly the
granularity CaJaDE needs (Definition 5 treats attributes as either
*categorical* or *numeric/ordinal*):

- ``INT`` and ``FLOAT`` are numeric — patterns may use ``<=``, ``>=``, ``=``.
- ``TEXT`` is categorical — patterns may only use ``=``.

NULLs are represented by ``None`` in object columns and ``numpy.nan`` in
float columns.  Integer columns with NULLs are promoted to float storage,
mirroring what a pragmatic columnar store does.
"""

from __future__ import annotations

import enum
import math
from typing import Any

import numpy as np


class ColumnType(enum.Enum):
    """Logical type of a relation column."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"

    @property
    def is_numeric(self) -> bool:
        """Whether pattern predicates on this type may use inequalities."""
        return self in (ColumnType.INT, ColumnType.FLOAT)

    @property
    def is_categorical(self) -> bool:
        """Whether pattern predicates on this type are equality-only."""
        return self is ColumnType.TEXT

    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used for columnar storage of this type."""
        if self is ColumnType.INT:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)


def infer_column_type(values: list[Any]) -> ColumnType:
    """Infer a :class:`ColumnType` from a list of Python values.

    ``None`` values are ignored for inference.  Booleans are treated as
    integers.  A mix of ints and floats infers FLOAT; any string forces TEXT.
    An all-NULL column defaults to TEXT.
    """
    saw_int = saw_float = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_int = True
        elif isinstance(value, (int, np.integer)):
            saw_int = True
        elif isinstance(value, (float, np.floating)):
            if isinstance(value, float) and math.isnan(value):
                continue
            saw_float = True
        else:
            return ColumnType.TEXT
    if saw_float:
        return ColumnType.FLOAT
    if saw_int:
        return ColumnType.INT
    return ColumnType.TEXT


def is_null(value: Any) -> bool:
    """SQL-style NULL test covering both ``None`` and NaN."""
    if value is None:
        return True
    if isinstance(value, (float, np.floating)):
        return math.isnan(value)
    return False


def coerce_value(value: Any, ctype: ColumnType) -> Any:
    """Coerce a raw Python value to the canonical form for ``ctype``.

    Raises ``ValueError`` when the value cannot represent the type, which
    surfaces bad CSV rows early instead of corrupting a column.
    """
    if is_null(value):
        return None
    if ctype is ColumnType.INT:
        return int(value)
    if ctype is ColumnType.FLOAT:
        return float(value)
    return str(value)


def parse_literal(text: str) -> Any:
    """Parse a CSV/SQL literal into ``int``, ``float`` or ``str``.

    Empty strings and the token ``NULL`` map to ``None``.
    """
    stripped = text.strip()
    if stripped == "" or stripped.upper() == "NULL":
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped
