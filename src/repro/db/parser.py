"""A small SQL parser for the paper's query class.

Supports single-block ``SELECT ... FROM ... [WHERE ...] [GROUP BY ...]``
queries with aggregate functions (COUNT/SUM/AVG/MIN/MAX), arithmetic over
aggregates, comma-style joins and explicit ``JOIN ... ON``.  Anything
outside this class (subqueries, HAVING, ORDER BY, set operations, ...)
raises :class:`~repro.db.errors.ParseError` naming the unsupported feature,
matching the paper's scope (§2, footnote 1).
"""

from __future__ import annotations

import re
from typing import Any

from .errors import ParseError
from .expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
    Predicate,
)
from .query import AGGREGATE_FUNCTIONS, AggregateCall, Query, SelectItem, TableRef

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # single-quoted string
      | \d+\.\d*| \.\d+ | \d+    # numbers
      | [A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*  # identifiers
      | <> | != | <= | >= | [=<>(),;*+\-/]
    )
    """,
    re.VERBOSE,
)

_UNSUPPORTED = {
    "having": "HAVING clauses",
    "order": "ORDER BY",
    "limit": "LIMIT",
    "union": "set operations",
    "intersect": "set operations",
    "except": "set operations",
    "distinct": "SELECT DISTINCT",
    "left": "outer joins",
    "right": "outer joins",
    "full": "outer joins",
    "outer": "outer joins",
    "exists": "EXISTS subqueries",
    "in": "IN predicates",
    "like": "LIKE predicates",
    "between": "BETWEEN predicates",
    "case": "CASE expressions",
}


def tokenize(sql: str) -> list[str]:
    """Split SQL text into tokens, preserving quoted strings."""
    tokens: list[str] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ParseError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, tokens: list[str], text: str):
        self.tokens = tokens
        self.pos = 0
        self.text = text

    # -- token helpers -------------------------------------------------
    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def peek_lower(self) -> str | None:
        tok = self.peek()
        return tok.lower() if tok is not None else None

    def advance(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of SQL input")
        self.pos += 1
        return tok

    def expect(self, keyword: str) -> None:
        tok = self.advance()
        if tok.lower() != keyword.lower():
            raise ParseError(f"expected {keyword!r}, found {tok!r}")

    def accept(self, keyword: str) -> bool:
        if self.peek_lower() == keyword.lower():
            self.pos += 1
            return True
        return False

    def _check_unsupported(self, token: str) -> None:
        feature = _UNSUPPORTED.get(token.lower())
        if feature:
            raise ParseError(
                f"{feature} are outside the supported single-block SPJA "
                "query class"
            )
        if token.lower() == "select":
            raise ParseError(
                "nested subqueries are outside the supported single-block "
                "SPJA query class"
            )

    # -- grammar -------------------------------------------------------
    def parse_query(self) -> Query:
        self.expect("select")
        select = self.parse_select_list()
        self.expect("from")
        tables = self.parse_from_list()
        where: Predicate | None = None
        group_by: list[ColumnRef] = []
        while self.peek() is not None:
            tok = self.peek_lower()
            if tok == "where":
                self.advance()
                where = self.parse_predicate()
            elif tok == "group":
                self.advance()
                self.expect("by")
                group_by = self.parse_group_by()
            else:
                self._check_unsupported(self.tokens[self.pos])
                raise ParseError(f"unexpected token {self.tokens[self.pos]!r}")
        return Query(
            select=select,
            tables=tables,
            where=where,
            group_by=group_by,
            text=self.text,
        )

    def parse_select_list(self) -> list[SelectItem]:
        items = [self.parse_select_item()]
        while self.accept(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias: str | None = None
        if self.accept("as"):
            alias = self.advance()
        elif self.peek() is not None and self.peek_lower() not in (
            ",", "from"
        ) and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", self.peek() or ""):
            keyword = self.peek_lower()
            if (
                keyword not in ("from", "where", "group", "as")
                and keyword not in _UNSUPPORTED
            ):
                alias = self.advance()
        if alias is None:
            alias = self._default_alias(expression)
        return SelectItem(expression=expression, alias=alias)

    @staticmethod
    def _default_alias(expression: Expression) -> str:
        if isinstance(expression, ColumnRef):
            return expression.name.split(".")[-1]
        if isinstance(expression, AggregateCall):
            if expression.argument is None:
                return expression.func
            inner = _Parser._default_alias(expression.argument)
            return f"{expression.func}_{inner}"
        return "expr"

    def parse_from_list(self) -> list[TableRef]:
        tables = [self.parse_table_ref()]
        while True:
            if self.accept(","):
                tables.append(self.parse_table_ref())
            elif self.peek_lower() in ("join", "inner"):
                # JOIN ... ON is folded into comma-join + WHERE semantics
                # by lifting the ON condition into the WHERE clause later;
                # to keep the grammar single-block we reject it explicitly
                # and ask for comma-style joins as used by the paper.
                raise ParseError(
                    "explicit JOIN syntax is not supported; use comma-style "
                    "joins with conditions in WHERE (as in the paper's "
                    "workload queries)"
                )
            else:
                break
        return tables

    def parse_table_ref(self) -> TableRef:
        name = self.advance()
        self._check_unsupported(name)
        if name == "(":
            raise ParseError(
                "derived tables (subqueries in FROM) are not supported"
            )
        alias = None
        nxt = self.peek()
        reserved = {"where", "group", "join", "inner", "on", "as", "from"}
        if (
            nxt is not None
            and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", nxt)
            and nxt.lower() not in reserved
            and nxt.lower() not in _UNSUPPORTED
        ):
            alias = self.advance()
        return TableRef.of(name, alias)

    def parse_group_by(self) -> list[ColumnRef]:
        refs = [ColumnRef(self.advance())]
        while self.accept(","):
            refs.append(ColumnRef(self.advance()))
        return refs

    # -- predicates ----------------------------------------------------
    def parse_predicate(self) -> Predicate:
        return self.parse_or()

    def parse_or(self) -> Predicate:
        parts = [self.parse_and()]
        while self.accept("or"):
            parts.append(self.parse_and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def parse_and(self) -> Predicate:
        parts = [self.parse_not()]
        while self.accept("and"):
            parts.append(self.parse_not())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def parse_not(self) -> Predicate:
        if self.accept("not"):
            return Not(self.parse_not())
        if self.peek() == "(" and self._paren_is_predicate():
            self.advance()
            inner = self.parse_predicate()
            self.expect(")")
            return inner
        return self.parse_comparison()

    def _paren_is_predicate(self) -> bool:
        """Lookahead: does this parenthesized group contain a comparison?"""
        depth = 0
        for tok in self.tokens[self.pos:]:
            if tok == "(":
                depth += 1
            elif tok == ")":
                depth -= 1
                if depth == 0:
                    return False
            elif depth >= 1 and tok in ("=", "!=", "<>", "<", "<=", ">", ">="):
                return True
            elif depth >= 1 and tok.lower() in ("and", "or"):
                return True
        return False

    def parse_comparison(self) -> Predicate:
        left = self.parse_expression()
        op = self.advance()
        if op == "<>":
            op = "!="
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            self._check_unsupported(op)
            raise ParseError(f"expected comparison operator, found {op!r}")
        right = self.parse_expression()
        return Comparison(op=op, left=left, right=right)

    # -- scalar expressions ---------------------------------------------
    def parse_expression(self) -> Expression:
        left = self.parse_term()
        while self.peek() in ("+", "-"):
            op = self.advance()
            right = self.parse_term()
            left = Arithmetic(op=op, left=left, right=right)
        return left

    def parse_term(self) -> Expression:
        left = self.parse_factor()
        while self.peek() in ("*", "/"):
            op = self.advance()
            right = self.parse_factor()
            left = Arithmetic(op=op, left=left, right=right)
        return left

    def parse_factor(self) -> Expression:
        tok = self.advance()
        if tok == "(":
            inner = self.parse_expression()
            self.expect(")")
            return inner
        if tok.startswith("'"):
            return Literal(tok[1:-1].replace("''", "'"))
        if re.fullmatch(r"\d+\.\d*|\.\d+", tok):
            return Literal(float(tok))
        if re.fullmatch(r"\d+", tok):
            return Literal(int(tok))
        lowered = tok.lower()
        if lowered in AGGREGATE_FUNCTIONS and self.peek() == "(":
            self.advance()
            if self.peek() == "*":
                self.advance()
                self.expect(")")
                return AggregateCall(func=lowered, argument=None)
            argument = self.parse_expression()
            self.expect(")")
            return AggregateCall(func=lowered, argument=argument)
        self._check_unsupported(tok)
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9.]*", tok):
            raise ParseError(f"unexpected token {tok!r} in expression")
        return ColumnRef(tok)


def parse_sql(sql: str) -> Query:
    """Parse SQL text into a :class:`~repro.db.query.Query`.

    Raises ParseError for anything outside the supported single-block
    SPJA class.
    """
    tokens = tokenize(sql)
    if not tokens:
        raise ParseError("empty SQL string")
    parser = _Parser(tokens, sql.strip())
    return parser.parse_query()
