"""EXPLAIN-style query plans with cardinality estimates.

The paper's join-graph validity check asks the DBMS to estimate the cost
of the APT materialization query upfront (§4).  This module exposes the
same estimator for ordinary queries: :func:`explain_plan` mirrors the
executor's greedy join pipeline and annotates each step with the
statistics-based cardinality estimate next to nothing being executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .database import Database
from .executor import _classify_predicates
from .parser import parse_sql
from .query import Query
from .statistics import estimate_join_cardinality, selectivity_of_equality


@dataclass
class PlanStep:
    """One step of a query plan with its estimated output cardinality."""

    description: str
    estimated_rows: float

    def render(self, depth: int) -> str:
        indent = "  " * depth
        return f"{indent}-> {self.description}  (~{self.estimated_rows:.0f} rows)"


@dataclass
class QueryPlan:
    """A linearized plan: scans, joins, filters, aggregation."""

    steps: list[PlanStep] = field(default_factory=list)

    @property
    def estimated_cost(self) -> float:
        """Total tuples flowing through the pipeline (the λqcost metric)."""
        return sum(step.estimated_rows for step in self.steps)

    def render(self) -> str:
        lines = [step.render(depth) for depth, step in enumerate(self.steps)]
        lines.append(f"estimated pipeline cost: {self.estimated_cost:.0f} tuples")
        return "\n".join(lines)


def explain_plan(query: Query | str, db: Database) -> QueryPlan:
    """Build the estimated plan the executor would follow for ``query``."""
    if isinstance(query, str):
        query = parse_sql(query)
    planned = _classify_predicates(query, db)
    plan = QueryPlan()

    # Per-table scans with pushdown selectivity estimates.
    estimated: dict[str, float] = {}
    for ref in query.tables:
        stats = db.statistics(ref.table)
        rows = float(stats.num_rows)
        predicates = planned.per_alias.get(ref.alias, [])
        for predicate in predicates:
            columns = predicate.referenced_columns()
            if columns:
                bare = next(iter(columns)).split(".")[-1]
                rows *= selectivity_of_equality(stats.distinct(bare))
            else:
                rows *= 0.5
        rows = max(1.0, rows)
        estimated[ref.alias] = rows
        suffix = f" with {len(predicates)} pushed filter(s)" if predicates else ""
        plan.steps.append(
            PlanStep(
                description=f"scan {ref.table} AS {ref.alias}{suffix}",
                estimated_rows=rows,
            )
        )

    # Greedy join pipeline, mirroring the executor's order heuristic.
    remaining = set(estimated)
    current_alias = min(remaining, key=lambda a: estimated[a])
    current_rows = estimated[current_alias]
    joined = {current_alias}
    remaining.discard(current_alias)
    pending = list(planned.joins)
    while remaining:
        progressed = False
        for alias in sorted(remaining, key=lambda a: estimated[a]):
            conditions = [
                j for j in pending
                if (j[0] in joined and j[2] == alias)
                or (j[2] in joined and j[0] == alias)
            ]
            if not conditions:
                continue
            key_distincts = []
            for la, lc, ra, rc in conditions:
                left_alias, left_col = (la, lc) if la in joined else (ra, rc)
                right_col = rc if la in joined else lc
                left_table = next(
                    t.table for t in query.tables if t.alias == left_alias
                )
                right_table = next(
                    t.table for t in query.tables if t.alias == alias
                )
                key_distincts.append(
                    (
                        db.statistics(left_table).distinct(left_col),
                        db.statistics(right_table).distinct(right_col),
                    )
                )
            current_rows = estimate_join_cardinality(
                current_rows, estimated[alias], key_distincts
            )
            plan.steps.append(
                PlanStep(
                    description=(
                        f"hash join + {alias} on "
                        + " AND ".join(
                            f"{j[0]}.{j[1]} = {j[2]}.{j[3]}"
                            for j in conditions
                        )
                    ),
                    estimated_rows=max(1.0, current_rows),
                )
            )
            pending = [j for j in pending if j not in conditions]
            joined.add(alias)
            remaining.discard(alias)
            progressed = True
            break
        if not progressed:
            alias = min(remaining, key=lambda a: estimated[a])
            current_rows *= estimated[alias]
            plan.steps.append(
                PlanStep(
                    description=f"cross product × {alias}",
                    estimated_rows=current_rows,
                )
            )
            joined.add(alias)
            remaining.discard(alias)

    if planned.residual or pending:
        plan.steps.append(
            PlanStep(
                description=(
                    f"filter {len(planned.residual) + len(pending)} residual "
                    "predicate(s)"
                ),
                estimated_rows=max(1.0, current_rows * 0.5),
            )
        )

    if query.group_by or query.aggregate_output_names:
        group_names = ", ".join(r.name for r in query.group_by) or "(all)"
        distinct_product = 1.0
        for ref in query.group_by:
            bare = ref.name.split(".")[-1]
            best = max(
                (
                    db.statistics(t.table).distinct(bare)
                    for t in query.tables
                    if db.table(t.table).schema.has_column(bare)
                ),
                default=1,
            )
            distinct_product *= max(1, best)
        plan.steps.append(
            PlanStep(
                description=f"group by {group_names} + aggregate",
                estimated_rows=min(current_rows, distinct_product),
            )
        )
    return plan
