"""Pluggable equi-join strategies behind the ``join_row_indices`` core.

A *join strategy* decides how one plan join step — ``frame ⋈ context``
on equality conditions — is executed and what the engine's prefix trie
caches for it:

* ``hash`` (the reference): the frame's :meth:`IndexFrame.join`, which
  runs the shared :func:`repro.db.executor.join_row_indices` hash-build
  core; the trie caches the resulting index-vector frame.
* ``sorted-window``: when the context side is the build side (strictly
  smaller, mirroring the core's swap rule) and the key pair is clean,
  the join becomes two ``np.searchsorted`` calls against the context
  column's shared :class:`~repro.db.relation.SortIndex` — no per-join
  hash build, no object gathers (TEXT probes gather int32 codes and
  translate them through a memoized code table).  The trie then caches
  a compact :class:`WindowEntry` — probe rows + int32 ``(lo, hi)``
  windows + the shared permutation handle — instead of the expanded
  index vectors; :meth:`WindowEntry.expand` reproduces the frame with
  the core's exact ``repeat``/``cumsum`` expansion.

Byte-identity with the hash core is structural: window probes reproduce
the core's code semantics (NULLs never match, boxed-Python equality on
TEXT, float-cast guards on mixed numerics), the stable permutation keeps
equal-key build rows in ascending row order exactly like the core's
stable argsort, and every case the window path cannot mirror falls back
to the core itself.  The differential harness in
``tests/test_join_strategies.py`` asserts this over generated
adversarial inputs; strategies registered in :data:`JOIN_STRATEGIES`
are picked up by the same oracle automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ExecutionError
from .executor import _unsafe_float_cast
from .frame import IndexFrame
from .relation import _INT32_MAX, Relation, SortIndex


@dataclass
class JoinStrategyStats:
    """Counters describing one strategy instance's lifetime.

    ``windows_built`` counts join steps served by the window fast path,
    ``searchsorted_probes`` the probe rows ranged into windows,
    ``permutation_reuses`` the window joins whose sort permutation this
    strategy had already used (the permutation itself is built at most
    once per table column per process), and ``fallback_joins`` the steps
    routed to the shared hash core.
    """

    windows_built: int = 0
    searchsorted_probes: int = 0
    permutation_reuses: int = 0
    fallback_joins: int = 0


class WindowEntry:
    """A compact cached join step: probe rows + windows into a shared
    sort permutation.

    Instead of the expanded per-source index vectors (one int64 entry
    per *output* row per source), a window entry stores the probe side's
    row vectors compacted to int32 plus two int32 arrays of length
    ``probe_n`` — the ``[lo, hi)`` window of each probe row in the
    context column's sorted key order.  The permutation itself
    (``index.perm``/``index.keys``) is shared across every entry probing
    the same column, so caches charge it once via
    :attr:`shared_components` and each entry's marginal cost is
    :attr:`own_bytes`.

    :meth:`expand` reconstructs the joined frame with exactly the
    ``repeat``/``cumsum`` expansion of ``join_row_indices``; the
    strategy itself returns ``entry.expand()`` as the live result, so a
    later cache hit expands through the identical code path and is
    byte-identical by construction.
    """

    __slots__ = ("sources", "rows", "context", "index", "lo", "hi")

    def __init__(
        self,
        sources: tuple[Relation, ...],
        rows: tuple[np.ndarray | None, ...],
        context: Relation,
        index: SortIndex,
        lo: np.ndarray,
        hi: np.ndarray,
    ):
        self.sources = sources
        self.rows = rows
        self.context = context
        self.index = index
        self.lo = lo
        self.hi = hi

    @property
    def own_bytes(self) -> int:
        """Marginal bytes of this entry: windows + probe row vectors."""
        return (
            self.lo.nbytes
            + self.hi.nbytes
            + sum(idx.nbytes for idx in self.rows if idx is not None)
        )

    @property
    def shared_components(self) -> tuple[tuple[int, int], ...]:
        """``(token, nbytes)`` of arrays shared across entries.

        Caches holding several entries over the same sort permutation
        charge its bytes once per distinct token (see
        :meth:`repro.engine.trie.PrefixCache.put`).
        """
        return ((self.index.token, self.index.nbytes),)

    @property
    def estimated_bytes(self) -> int:
        """Standalone size (own + shared), for the plain cache protocol."""
        return self.own_bytes + self.index.nbytes

    def expand(self) -> IndexFrame:
        """Reconstruct the joined frame (the core's exact expansion)."""
        counts = self.hi.astype(np.int64) - self.lo
        probe_n = len(counts)
        total = int(counts.sum())
        probe_idx = np.repeat(np.arange(probe_n, dtype=np.int64), counts)
        if total:
            starts = np.repeat(self.lo.astype(np.int64), counts)
            segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
            offsets = np.arange(total, dtype=np.int64) - segment_starts
            build_idx = self.index.perm[starts + offsets]
        else:
            build_idx = np.empty(0, dtype=np.int32)
        rows = tuple(
            probe_idx if idx is None else idx[probe_idx] for idx in self.rows
        ) + (build_idx,)
        return IndexFrame(self.sources + (self.context,), rows)

    def __repr__(self) -> str:
        return (
            f"WindowEntry({len(self.lo)} probe rows over "
            f"{len(self.sources)} sources, {self.own_bytes} own bytes)"
        )


def compact_frame(frame: IndexFrame) -> IndexFrame:
    """A frame with its row vectors cast to int32 where sources permit.

    Sorted-window entries index int32 code permutations; compacting the
    surrounding row vectors to match halves the trie's per-entry cost on
    the paths the window cannot serve (fallback joins, filter steps).
    Values are unchanged — gathers produce identical bytes — so this is
    a pure storage-width choice.
    """
    if all(idx is None or idx.dtype == np.int32 for idx in frame.rows):
        return frame
    if any(source.num_rows > _INT32_MAX for source in frame.sources):
        return frame
    rows = tuple(
        None if idx is None else idx.astype(np.int32, copy=False)
        for idx in frame.rows
    )
    return IndexFrame(frame.sources, rows)


class HashJoinStrategy:
    """The reference strategy: every step runs the shared hash core."""

    name = "hash"

    def __init__(self) -> None:
        self.stats = JoinStrategyStats()

    def join_frame(
        self,
        frame: IndexFrame,
        context: "Relation | IndexFrame",
        conditions: "list[tuple[str, str]] | tuple[tuple[str, str], ...]",
    ) -> tuple[IndexFrame, object]:
        """Execute one join step; returns ``(result, cache_value)``."""
        result = frame.join(context, list(conditions))
        return result, result

    def compact(self, frame: IndexFrame) -> IndexFrame:
        """Hook for shrinking intermediates before caching (identity)."""
        return frame


class SortedWindowStrategy:
    """FK joins as searchsorted windows over shared sort permutations."""

    name = "sorted-window"

    def __init__(self) -> None:
        self.stats = JoinStrategyStats()
        # Tokens of permutations this strategy has already probed —
        # distinguishes "built (or first seen)" from "reused" in stats.
        self._seen_tokens: set[int] = set()

    def join_frame(
        self,
        frame: IndexFrame,
        context: "Relation | IndexFrame",
        conditions: "list[tuple[str, str]] | tuple[tuple[str, str], ...]",
    ) -> tuple[IndexFrame, object]:
        """Execute one join step; returns ``(result, cache_value)``.

        The cache value is a :class:`WindowEntry` on the fast path and
        the (int32-compacted) result frame on the fallback path.
        """
        # Mirror IndexFrame.join's validation (same errors, same order)
        # before committing to either path.
        if not conditions:
            raise ExecutionError("join requires at least one condition")
        right_names = (
            context.column_names
            if isinstance(context, (Relation, IndexFrame))
            else []
        )
        overlap = set(frame.column_names) & set(right_names)
        if overlap:
            raise ExecutionError(
                f"join would produce duplicate columns: {overlap}"
            )
        entry = self._window_entry(frame, context, conditions)
        if entry is None:
            self.stats.fallback_joins += 1
            result = compact_frame(frame.join(context, list(conditions)))
            return result, result
        self.stats.windows_built += 1
        return entry.expand(), entry

    def compact(self, frame: IndexFrame) -> IndexFrame:
        return compact_frame(frame)

    # ------------------------------------------------------------------
    def _window_entry(
        self,
        frame: IndexFrame,
        context: "Relation | IndexFrame",
        conditions,
    ) -> WindowEntry | None:
        """Try the window fast path; ``None`` falls back to the core.

        Preconditions mirror the core exactly: the context must be the
        build side (``right_n < left_n`` is the core's strict swap
        rule), the key must be a single clean pair, and the probe's key
        type must reproduce the core's encoding semantics without an
        object path.
        """
        if len(conditions) != 1:
            return None
        if not isinstance(context, Relation):
            return None
        if context.num_rows >= frame.num_rows:
            return None
        left_col, right_col = conditions[0]
        index = context.sort_index(right_col)
        if index is None:
            return None
        reused = index.token in self._seen_tokens
        windows = self._probe_windows(frame, left_col, index)
        if windows is None:
            return None
        if reused:
            self.stats.permutation_reuses += 1
        else:
            self._seen_tokens.add(index.token)
        lo, hi = windows
        self.stats.searchsorted_probes += int(len(lo))
        rows = frame.rows
        if all(s.num_rows <= _INT32_MAX for s in frame.sources):
            rows = tuple(
                None if idx is None else idx.astype(np.int32, copy=False)
                for idx in rows
            )
        return WindowEntry(
            sources=frame.sources,
            rows=rows,
            context=context,
            index=index,
            lo=lo.astype(np.int32, copy=False),
            hi=hi.astype(np.int32, copy=False),
        )

    def _probe_windows(
        self, frame: IndexFrame, left_col: str, index: SortIndex
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-probe-row ``[lo, hi)`` windows into ``index``'s keys."""
        if index.encoding is not None:
            # TEXT build side: gather the probe's int32 codes (cheaper
            # than gathering objects) and translate them into build
            # codes under the core's boxed-Python equality.  A
            # translated -1 (NULL-ish or absent value) must never land
            # in the match-code array's leading -1 run, so it is masked
            # to an empty window.
            pair = frame.column_encoding(left_col)
            if pair is None:
                return None
            probe_encoding, probe_rows = pair
            codes = (
                probe_encoding.codes
                if probe_rows is None
                else probe_encoding.codes[probe_rows]
            )
            build_codes = index.translation(probe_encoding)[codes]
            lo = np.searchsorted(index.keys, build_codes, side="left")
            hi = np.searchsorted(index.keys, build_codes, side="right")
            invalid = build_codes < 0
        else:
            # Numeric build side: probe raw values against the sorted
            # domain (NaN build rows sit past n_valid and are excluded).
            if frame.column_dtype(left_col).kind not in "if":
                return None
            probe = frame.column(left_col)
            keys = index.keys
            if probe.dtype != keys.dtype:
                # Mixed numerics compare under float semantics, exactly
                # like the core — unless a cast could lose bits, which
                # the core answers with its object path; fall back.
                if _unsafe_float_cast(probe) or _unsafe_float_cast(keys):
                    return None
            domain = keys[: index.n_valid]
            lo = np.searchsorted(domain, probe, side="left")
            hi = np.searchsorted(domain, probe, side="right")
            invalid = (
                np.isnan(probe) if probe.dtype.kind == "f" else None
            )
        if invalid is not None and invalid.any():
            lo = np.where(invalid, 0, lo)
            hi = np.where(invalid, 0, hi)
        return lo, hi


# Registered strategies, keyed by config name.  The differential harness
# parametrizes over this mapping, so a new strategy added here is tested
# against the hash oracle automatically.
JOIN_STRATEGIES = {
    HashJoinStrategy.name: HashJoinStrategy,
    SortedWindowStrategy.name: SortedWindowStrategy,
}

JOIN_STRATEGY_NAMES = tuple(sorted(JOIN_STRATEGIES))


def make_join_strategy(name: str):
    """Instantiate a registered join strategy by config name."""
    try:
        factory = JOIN_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown join strategy {name!r}; "
            f"choose one of {sorted(JOIN_STRATEGIES)}"
        ) from None
    return factory()
