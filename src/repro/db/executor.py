"""Query evaluation: scan → filter → hash join → group-aggregate.

The executor materializes the *working table* of a single-block query (the
pre-aggregation join of its FROM tables, filtered by WHERE, with columns
qualified as ``alias.attr``) and then aggregates it.  The working table is
exactly the paper's provenance table PT(Q, D) for why-provenance, which is
why :mod:`repro.db.provenance` reuses it.

Join planning is a greedy left-deep pipeline: single-table predicates are
pushed down, equi-join conjuncts drive hash joins, the smallest filtered
table starts the pipeline, and any residual (non-equi or multi-table)
predicates are applied on the joined result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from .database import Database
from .errors import ExecutionError
from .expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Predicate,
    conjunction,
)
from .query import AggregateCall, Query, SelectItem, contains_aggregate
from .relation import Relation
from .schema import Column, TableSchema
from .types import ColumnType


# ----------------------------------------------------------------------
# Hash join
# ----------------------------------------------------------------------
def hash_join(
    left: Relation,
    right: Relation,
    conditions: list[tuple[str, str]],
) -> Relation:
    """Equi-join two relations on ``[(left_col, right_col), ...]``.

    Builds a hash table on the smaller input.  NULL keys never match
    (SQL semantics).  The output schema is the concatenation of both
    inputs' columns; callers must ensure the names are disjoint.
    """
    if not conditions:
        raise ExecutionError("hash_join requires at least one condition")
    overlap = set(left.column_names) & set(right.column_names)
    if overlap:
        raise ExecutionError(f"join would produce duplicate columns: {overlap}")

    swap = right.num_rows < left.num_rows
    build, probe = (right, left) if swap else (left, right)
    build_cols = [c[1] if swap else c[0] for c in conditions]
    probe_cols = [c[0] if swap else c[1] for c in conditions]

    table: dict[tuple[Any, ...], list[int]] = {}
    build_arrays = [build.column(c) for c in build_cols]
    for i in range(build.num_rows):
        key = tuple(arr[i] for arr in build_arrays)
        if any(_is_null_key(v) for v in key):
            continue
        table.setdefault(key, []).append(i)

    probe_arrays = [probe.column(c) for c in probe_cols]
    build_idx: list[int] = []
    probe_idx: list[int] = []
    for j in range(probe.num_rows):
        key = tuple(arr[j] for arr in probe_arrays)
        if any(_is_null_key(v) for v in key):
            continue
        hits = table.get(key)
        if hits:
            build_idx.extend(hits)
            probe_idx.extend([j] * len(hits))

    build_sel = build.take(np.array(build_idx, dtype=np.int64))
    probe_sel = probe.take(np.array(probe_idx, dtype=np.int64))
    left_sel, right_sel = (probe_sel, build_sel) if swap else (build_sel, probe_sel)
    return _zip_columns(left_sel, right_sel)


def _is_null_key(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, (float, np.floating)):
        return math.isnan(value)
    return False


def _zip_columns(left: Relation, right: Relation) -> Relation:
    """Concatenate the columns of two row-aligned relations."""
    columns = {name: left.column(name) for name in left.column_names}
    columns.update({name: right.column(name) for name in right.column_names})
    schema = TableSchema(
        name=f"{left.schema.name}_x_{right.schema.name}",
        columns=list(left.schema.columns) + list(right.schema.columns),
    )
    return Relation(schema, columns)


def cross_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product (used only when no join condition connects)."""
    n, m = left.num_rows, right.num_rows
    left_idx = np.repeat(np.arange(n), m)
    right_idx = np.tile(np.arange(m), n)
    return _zip_columns(left.take(left_idx), right.take(right_idx))


# ----------------------------------------------------------------------
# Predicate classification for join planning
# ----------------------------------------------------------------------
@dataclass
class _PlannedPredicates:
    per_alias: dict[str, list[Predicate]]
    joins: list[tuple[str, str, str, str]]  # alias_a, col_a, alias_b, col_b
    residual: list[Predicate]


def _flatten_conjuncts(predicate: Predicate | None) -> list[Predicate]:
    if predicate is None:
        return []
    if isinstance(predicate, And):
        parts: list[Predicate] = []
        for part in predicate.parts:
            parts.extend(_flatten_conjuncts(part))
        return parts
    return [predicate]


def _alias_of_column(name: str, query: Query, db: Database) -> str | None:
    """Determine which FROM alias a column reference belongs to."""
    if "." in name:
        qualifier = name.split(".")[0]
        for ref in query.tables:
            if ref.alias == qualifier:
                return qualifier
        # Qualifier may be the table name rather than the alias.
        for ref in query.tables:
            if ref.table == qualifier:
                return ref.alias
        return None
    hits = []
    for ref in query.tables:
        schema = db.table(ref.table).schema
        if schema.has_column(name):
            hits.append(ref.alias)
    if len(hits) == 1:
        return hits[0]
    if len(hits) > 1:
        raise ExecutionError(
            f"ambiguous column {name!r}: present in aliases {hits}"
        )
    return None


def _classify_predicates(query: Query, db: Database) -> _PlannedPredicates:
    per_alias: dict[str, list[Predicate]] = {t.alias: [] for t in query.tables}
    joins: list[tuple[str, str, str, str]] = []
    residual: list[Predicate] = []
    for conjunct in _flatten_conjuncts(query.where):
        aliases = set()
        unresolved = False
        for col in conjunct.referenced_columns():
            alias = _alias_of_column(col, query, db)
            if alias is None:
                unresolved = True
                break
            aliases.add(alias)
        if unresolved:
            residual.append(conjunct)
            continue
        if len(aliases) == 1:
            per_alias[next(iter(aliases))].append(conjunct)
        elif (
            len(aliases) == 2
            and isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            left_alias = _alias_of_column(conjunct.left.name, query, db)
            right_alias = _alias_of_column(conjunct.right.name, query, db)
            assert left_alias is not None and right_alias is not None
            joins.append(
                (
                    left_alias,
                    conjunct.left.name.split(".")[-1],
                    right_alias,
                    conjunct.right.name.split(".")[-1],
                )
            )
        else:
            residual.append(conjunct)
    return _PlannedPredicates(per_alias=per_alias, joins=joins, residual=residual)


# ----------------------------------------------------------------------
# Working table (pre-aggregation join)
# ----------------------------------------------------------------------
def working_table(query: Query, db: Database) -> Relation:
    """Materialize the filtered join of the query's FROM tables.

    Columns are qualified as ``alias.attr``.  This relation *is* the
    why-provenance table PT(Q, D) of the query.
    """
    planned = _classify_predicates(query, db)

    filtered: dict[str, Relation] = {}
    for ref in query.tables:
        rel = db.table(ref.table)
        preds = planned.per_alias.get(ref.alias, [])
        if preds:
            rel = rel.filter_mask(conjunction(preds).mask(rel))
        filtered[ref.alias] = rel.prefix_columns(f"{ref.alias}.")

    remaining = set(filtered)
    start = min(remaining, key=lambda a: filtered[a].num_rows)
    current = filtered[start]
    joined = {start}
    remaining.discard(start)

    pending_joins = list(planned.joins)
    while remaining:
        progress = False
        for alias in sorted(remaining, key=lambda a: filtered[a].num_rows):
            conditions = []
            for la, lc, ra, rc in pending_joins:
                if la in joined and ra == alias:
                    conditions.append((f"{la}.{lc}", f"{alias}.{rc}"))
                elif ra in joined and la == alias:
                    conditions.append((f"{ra}.{rc}", f"{alias}.{lc}"))
            if conditions:
                current = hash_join(current, filtered[alias], conditions)
                pending_joins = [
                    j
                    for j in pending_joins
                    if not (
                        (j[0] in joined and j[2] == alias)
                        or (j[2] in joined and j[0] == alias)
                    )
                ]
                joined.add(alias)
                remaining.discard(alias)
                progress = True
                break
        if not progress:
            # No join condition connects: fall back to a cross product
            # with the smallest remaining table.
            alias = min(remaining, key=lambda a: filtered[a].num_rows)
            current = cross_product(current, filtered[alias])
            joined.add(alias)
            remaining.discard(alias)

    # Joins between two already-joined aliases (cycles) and residual
    # predicates become post-join filters.
    post: list[Predicate] = []
    for la, lc, ra, rc in pending_joins:
        post.append(
            Comparison("=", ColumnRef(f"{la}.{lc}"), ColumnRef(f"{ra}.{rc}"))
        )
    post.extend(planned.residual)
    if post:
        current = current.filter_mask(conjunction(post).mask(current))
    return current.rename("working")


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _group_indices(
    relation: Relation, group_columns: list[str]
) -> dict[tuple[Any, ...], np.ndarray]:
    """Partition row indices by the values of ``group_columns``."""
    if not group_columns:
        return {(): np.arange(relation.num_rows)}
    arrays = [relation.column(c) for c in group_columns]
    groups: dict[tuple[Any, ...], list[int]] = {}
    for i in range(relation.num_rows):
        key = tuple(arr[i] for arr in arrays)
        groups.setdefault(key, []).append(i)
    return {k: np.array(v, dtype=np.int64) for k, v in groups.items()}


def _aggregate_value(
    call: AggregateCall, relation: Relation, indices: np.ndarray
) -> Any:
    if call.func == "count" and call.argument is None:
        return int(len(indices))
    assert call.argument is not None
    values = call.argument.values(relation)[indices]
    if values.dtype == object:
        non_null = [v for v in values if v is not None]
        if call.func == "count":
            return len(non_null)
        if not non_null:
            return None
        if call.func == "min":
            return min(non_null)
        if call.func == "max":
            return max(non_null)
        raise ExecutionError(
            f"{call.func.upper()} is not defined on categorical values"
        )
    numeric = values.astype(np.float64)
    valid = numeric[~np.isnan(numeric)]
    if call.func == "count":
        return int(len(valid))
    if len(valid) == 0:
        return None
    if call.func == "sum":
        return float(valid.sum())
    if call.func == "avg":
        return float(valid.mean())
    if call.func == "min":
        return float(valid.min())
    return float(valid.max())


def _evaluate_select_item(
    expression: Expression,
    relation: Relation,
    indices: np.ndarray,
) -> Any:
    """Evaluate a SELECT expression for a single group."""
    if isinstance(expression, AggregateCall):
        return _aggregate_value(expression, relation, indices)
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        values = expression.values(relation)
        return values[indices[0]]
    if isinstance(expression, Arithmetic):
        left = _evaluate_select_item(expression.left, relation, indices)
        right = _evaluate_select_item(expression.right, relation, indices)
        if left is None or right is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: a / b}
        try:
            return ops[expression.op](left, right)
        except ZeroDivisionError:
            return None
    raise ExecutionError(f"cannot evaluate SELECT expression {expression}")


def group_columns_in_working(query: Query, work: Relation) -> list[str]:
    """Resolve the query's GROUP BY references to working-table columns."""
    from .expressions import resolve_column

    return [resolve_column(work, ref.name) for ref in query.group_by]


def aggregate(query: Query, work: Relation) -> Relation:
    """Apply grouping + aggregate evaluation to a working table."""
    group_cols = group_columns_in_working(query, work)
    groups = _group_indices(work, group_cols)
    rows: list[list[Any]] = []
    for key in groups:
        indices = groups[key]
        row = [
            _evaluate_select_item(item.expression, work, indices)
            for item in query.select
        ]
        rows.append(row)

    columns: list[Column] = []
    for pos, item in enumerate(query.select):
        sample = [row[pos] for row in rows]
        columns.append(Column(item.alias, _result_type(sample)))
    schema = TableSchema(name="result", columns=columns)
    result = Relation.from_rows(schema, rows)
    if group_cols:
        return result.sort_by([c.name for c in columns if _sortable(result, c)])
    return result


def _sortable(relation: Relation, column: Column) -> bool:
    return not any(v is None for v in relation.column(column.name))


def _result_type(values: list[Any]) -> ColumnType:
    from .types import infer_column_type

    return infer_column_type(values)


def execute(query: Query, db: Database) -> Relation:
    """Evaluate a single-block SPJA query and return its result relation."""
    work = working_table(query, db)
    if query.group_by or any(
        contains_aggregate(i.expression) for i in query.select
    ):
        return aggregate(query, work)
    # Pure SPJ query: project the SELECT expressions row-wise.
    columns: dict[str, np.ndarray] = {}
    schema_cols: list[Column] = []
    for item in query.select:
        values = item.expression.values(work)
        columns[item.alias] = values
        ctype = (
            ColumnType.TEXT
            if values.dtype == object
            else (ColumnType.INT if values.dtype.kind == "i" else ColumnType.FLOAT)
        )
        schema_cols.append(Column(item.alias, ctype))
    return Relation(TableSchema(name="result", columns=schema_cols), columns)
