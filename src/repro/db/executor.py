"""Query evaluation: scan → filter → hash join → group-aggregate.

The executor materializes the *working table* of a single-block query (the
pre-aggregation join of its FROM tables, filtered by WHERE, with columns
qualified as ``alias.attr``) and then aggregates it.  The working table is
exactly the paper's provenance table PT(Q, D) for why-provenance, which is
why :mod:`repro.db.provenance` reuses it.

Join planning is a greedy left-deep pipeline: single-table predicates are
pushed down, equi-join conjuncts drive hash joins, the smallest filtered
table starts the pipeline, and any residual (non-equi or multi-table)
predicates are applied on the joined result.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from .database import Database
from .errors import ExecutionError
from .expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Predicate,
    conjunction,
)
from .query import AggregateCall, Query, SelectItem, contains_aggregate
from .relation import Relation
from .schema import Column, TableSchema
from .types import ColumnType


# ----------------------------------------------------------------------
# Hash join
# ----------------------------------------------------------------------
class JoinCache:
    """Memoizes :func:`hash_join` results by input fingerprints.

    Relations are immutable, so ``(left.fingerprint, right.fingerprint,
    conditions)`` uniquely identifies a join's output and identical join
    work is never redone.  Entries are kept in an LRU bounded by count
    and, when ``capacity_bytes`` is given, by the estimated bytes of the
    retained results (single results over the budget are not stored).
    The cached outputs themselves are shared, never copied.
    """

    def __init__(
        self, max_entries: int = 512, capacity_bytes: int | None = None
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self._max_entries = max_entries
        self._capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple, tuple[Relation, int]]" = (
            OrderedDict()
        )
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        left: Relation, right: Relation, conditions: list[tuple[str, str]]
    ) -> tuple:
        return (left.fingerprint, right.fingerprint, tuple(conditions))

    def get(self, key: tuple) -> Relation | None:
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return hit[0]

    def put(self, key: tuple, relation: Relation) -> None:
        nbytes = relation.estimated_bytes
        if self._capacity_bytes is not None and (
            self._capacity_bytes <= 0 or nbytes > self._capacity_bytes
        ):
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[1]
        self._entries[key] = (relation, nbytes)
        self.current_bytes += nbytes
        while self._entries and (
            len(self._entries) > self._max_entries
            or (
                self._capacity_bytes is not None
                and self.current_bytes > self._capacity_bytes
            )
        ):
            _, (_, evicted) = self._entries.popitem(last=False)
            self.current_bytes -= evicted

    def __len__(self) -> int:
        return len(self._entries)


def join_row_indices(
    left_arrays: list[np.ndarray],
    right_arrays: list[np.ndarray],
    left_n: int,
    right_n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs of an equi-join, in ``hash_join``'s output order.

    ``left_arrays``/``right_arrays`` are the gathered key columns of the
    two sides; the result ``(left_idx, right_idx)`` lists matching row
    pairs.  This is the single join core shared by the eager
    :func:`hash_join` and the late-materialized
    :meth:`repro.db.frame.IndexFrame.join`, so both produce identical
    row orders: the hash table is built on the smaller side, keys encode
    to dense integer codes, and a stable sort keeps equal-key build rows
    in insertion order.  NULL keys never match (SQL semantics).
    """
    swap = right_n < left_n
    if swap:
        build_arrays, probe_arrays = right_arrays, left_arrays
        probe_n = left_n
    else:
        build_arrays, probe_arrays = left_arrays, right_arrays
        probe_n = right_n

    build_codes, probe_codes, build_valid, probe_valid = _encode_join_keys(
        build_arrays, probe_arrays
    )

    # Group build rows by key code: a stable sort keeps rows of equal
    # keys in build order, matching the insertion order of the classic
    # dict-of-lists build phase.
    build_rows = np.nonzero(build_valid)[0]
    order = build_rows[np.argsort(build_codes[build_rows], kind="stable")]
    sorted_codes = build_codes[order]

    lo = np.searchsorted(sorted_codes, probe_codes, side="left")
    hi = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = np.where(probe_valid, hi - lo, 0)

    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(probe_n, dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - segment_starts
    build_idx = (
        order[starts + offsets] if total else np.empty(0, dtype=np.int64)
    )
    return (probe_idx, build_idx) if swap else (build_idx, probe_idx)


def hash_join(
    left: Relation,
    right: Relation,
    conditions: list[tuple[str, str]],
    cache: JoinCache | None = None,
) -> Relation:
    """Equi-join two relations on ``[(left_col, right_col), ...]``.

    Builds a hash table on the smaller input.  NULL keys never match
    (SQL semantics).  The output schema is the concatenation of both
    inputs' columns; callers must ensure the names are disjoint.

    Keys are encoded column-wise into dense integer codes so build and
    probe are pure vectorized numpy (sort + searchsorted) instead of a
    per-row Python tuple loop; the row-pair computation is shared with
    the index-vector join path (:func:`join_row_indices`).  ``cache``
    optionally memoizes the whole join by the inputs' fingerprints.
    """
    if not conditions:
        raise ExecutionError("hash_join requires at least one condition")
    overlap = set(left.column_names) & set(right.column_names)
    if overlap:
        raise ExecutionError(f"join would produce duplicate columns: {overlap}")

    if cache is not None:
        key = JoinCache.key(left, right, conditions)
        cached = cache.get(key)
        if cached is not None:
            return cached

    left_arrays = [left.column(lc) for lc, _ in conditions]
    right_arrays = [right.column(rc) for _, rc in conditions]
    left_idx, right_idx = join_row_indices(
        left_arrays, right_arrays, left.num_rows, right.num_rows
    )
    result = _zip_columns(left.take(left_idx), right.take(right_idx))
    if cache is not None:
        cache.put(key, result)
    return result


def _encode_join_keys(
    build_arrays: list[np.ndarray],
    probe_arrays: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Encode multi-column join keys as dense int64 codes.

    Build and probe columns are factorized jointly so equal values get
    equal codes on both sides; multi-column keys combine per-column codes
    mixed-radix with re-compression between columns to avoid overflow.
    Returns ``(build_codes, probe_codes, build_valid, probe_valid)``
    where the valid masks are False on NULL keys (which never match).
    """
    n_build = len(build_arrays[0]) if build_arrays else 0
    combined: np.ndarray | None = None
    valid: np.ndarray | None = None
    for position, (barr, parr) in enumerate(zip(build_arrays, probe_arrays)):
        codes, col_valid = _encode_key_column(barr, parr)
        if combined is None:
            combined, valid = codes, col_valid
        else:
            assert valid is not None
            # Mixed-radix combine, then re-compress to [0, n) so chained
            # combines cannot overflow int64.
            radix = int(codes.max()) + 2 if len(codes) else 1
            combined = combined * radix + codes
            valid &= col_valid
            if position < len(build_arrays) - 1:
                _, combined = np.unique(combined, return_inverse=True)
    assert combined is not None and valid is not None
    return combined[:n_build], combined[n_build:], valid[:n_build], valid[n_build:]


def _encode_key_column(
    build_arr: np.ndarray, probe_arr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Factorize one build/probe column pair into shared int64 codes."""
    if build_arr.dtype == object or probe_arr.dtype == object:
        return _encode_object_pair(build_arr, probe_arr)
    if build_arr.dtype == probe_arr.dtype:
        merged = np.concatenate([build_arr, probe_arr])
    else:
        # Mixed numeric dtypes (e.g. int64 vs NULL-promoted float64)
        # compare under float semantics — exact for every int below
        # 2^53.  Larger integers would collide when cast, so fall back
        # to the exact-value object path for them.
        if _unsafe_float_cast(build_arr) or _unsafe_float_cast(probe_arr):
            return _encode_object_pair(build_arr, probe_arr)
        merged = np.concatenate(
            [build_arr.astype(np.float64), probe_arr.astype(np.float64)]
        )
    if merged.dtype.kind == "f":
        valid = ~np.isnan(merged)
    else:
        valid = np.ones(len(merged), dtype=bool)
    _, codes = np.unique(merged, return_inverse=True)
    return codes.astype(np.int64, copy=False), valid


def _unsafe_float_cast(arr: np.ndarray) -> bool:
    """True when casting an integer array to float64 could lose bits."""
    if arr.dtype.kind not in "iu" or len(arr) == 0:
        return False
    return int(np.abs(arr).max()) > 2**53


def _encode_object_pair(
    build_arr: np.ndarray, probe_arr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dict-based factorization under exact Python value equality.

    ``astype(object)`` boxes numeric values as native Python ints and
    floats, whose cross-type ``==``/``hash`` compare exact mathematical
    values — the semantics the replaced per-row tuple join had.
    """
    merged = np.concatenate(
        [build_arr.astype(object, copy=False),
         probe_arr.astype(object, copy=False)]
    )
    codes = np.empty(len(merged), dtype=np.int64)
    valid = np.ones(len(merged), dtype=bool)
    mapping: dict[Any, int] = {}
    for i, value in enumerate(merged):
        if _is_null_key(value):
            valid[i] = False
            codes[i] = -1
            continue
        code = mapping.get(value)
        if code is None:
            code = len(mapping)
            mapping[value] = code
        codes[i] = code
    return codes, valid


def _is_null_key(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, (float, np.floating)):
        return math.isnan(value)
    return False


def _zip_columns(left: Relation, right: Relation) -> Relation:
    """Concatenate the columns of two row-aligned relations."""
    columns = {name: left.column(name) for name in left.column_names}
    columns.update({name: right.column(name) for name in right.column_names})
    schema = TableSchema(
        name=f"{left.schema.name}_x_{right.schema.name}",
        columns=list(left.schema.columns) + list(right.schema.columns),
    )
    return Relation(schema, columns)


def cross_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product (used only when no join condition connects)."""
    n, m = left.num_rows, right.num_rows
    left_idx = np.repeat(np.arange(n), m)
    right_idx = np.tile(np.arange(m), n)
    return _zip_columns(left.take(left_idx), right.take(right_idx))


# ----------------------------------------------------------------------
# Predicate classification for join planning
# ----------------------------------------------------------------------
@dataclass
class _PlannedPredicates:
    per_alias: dict[str, list[Predicate]]
    joins: list[tuple[str, str, str, str]]  # alias_a, col_a, alias_b, col_b
    residual: list[Predicate]


def _flatten_conjuncts(predicate: Predicate | None) -> list[Predicate]:
    if predicate is None:
        return []
    if isinstance(predicate, And):
        parts: list[Predicate] = []
        for part in predicate.parts:
            parts.extend(_flatten_conjuncts(part))
        return parts
    return [predicate]


def _alias_of_column(name: str, query: Query, db: Database) -> str | None:
    """Determine which FROM alias a column reference belongs to."""
    if "." in name:
        qualifier = name.split(".")[0]
        for ref in query.tables:
            if ref.alias == qualifier:
                return qualifier
        # Qualifier may be the table name rather than the alias.
        for ref in query.tables:
            if ref.table == qualifier:
                return ref.alias
        return None
    hits = []
    for ref in query.tables:
        schema = db.table(ref.table).schema
        if schema.has_column(name):
            hits.append(ref.alias)
    if len(hits) == 1:
        return hits[0]
    if len(hits) > 1:
        raise ExecutionError(
            f"ambiguous column {name!r}: present in aliases {hits}"
        )
    return None


def _classify_predicates(query: Query, db: Database) -> _PlannedPredicates:
    per_alias: dict[str, list[Predicate]] = {t.alias: [] for t in query.tables}
    joins: list[tuple[str, str, str, str]] = []
    residual: list[Predicate] = []
    for conjunct in _flatten_conjuncts(query.where):
        aliases = set()
        unresolved = False
        for col in conjunct.referenced_columns():
            alias = _alias_of_column(col, query, db)
            if alias is None:
                unresolved = True
                break
            aliases.add(alias)
        if unresolved:
            residual.append(conjunct)
            continue
        if len(aliases) == 1:
            per_alias[next(iter(aliases))].append(conjunct)
        elif (
            len(aliases) == 2
            and isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            left_alias = _alias_of_column(conjunct.left.name, query, db)
            right_alias = _alias_of_column(conjunct.right.name, query, db)
            assert left_alias is not None and right_alias is not None
            joins.append(
                (
                    left_alias,
                    conjunct.left.name.split(".")[-1],
                    right_alias,
                    conjunct.right.name.split(".")[-1],
                )
            )
        else:
            residual.append(conjunct)
    return _PlannedPredicates(per_alias=per_alias, joins=joins, residual=residual)


# ----------------------------------------------------------------------
# Working table (pre-aggregation join)
# ----------------------------------------------------------------------
def working_table(
    query: Query, db: Database, late_materialization: bool = True
) -> Relation:
    """Materialize the filtered join of the query's FROM tables.

    Columns are qualified as ``alias.attr``.  This relation *is* the
    why-provenance table PT(Q, D) of the query.

    With ``late_materialization`` (the default) the join pipeline runs
    on :class:`~repro.db.frame.IndexFrame` index vectors — per-alias
    selections become row-index arrays, each join gathers only its key
    columns, and the full column gather happens once at the end.  The
    eager path zips every column at every join step.  Both paths share
    the same join core and produce byte-identical relations.
    """
    from .frame import IndexFrame

    planned = _classify_predicates(query, db)

    filtered: dict[str, Relation | IndexFrame] = {}
    sizes: dict[str, int] = {}
    for ref in query.tables:
        rel = db.table(ref.table)
        prefixed = rel.prefix_columns(f"{ref.alias}.")
        preds = planned.per_alias.get(ref.alias, [])
        if late_materialization:
            frame = IndexFrame.from_relation(prefixed)
            if preds:
                frame = frame.filter_mask(conjunction(preds).mask(prefixed))
            filtered[ref.alias] = frame
        else:
            if preds:
                prefixed = prefixed.filter_mask(
                    conjunction(preds).mask(prefixed)
                )
            filtered[ref.alias] = prefixed
        sizes[ref.alias] = filtered[ref.alias].num_rows

    remaining = set(filtered)
    start = min(remaining, key=lambda a: sizes[a])
    current = filtered[start]
    joined = {start}
    remaining.discard(start)

    pending_joins = list(planned.joins)
    while remaining:
        progress = False
        for alias in sorted(remaining, key=lambda a: sizes[a]):
            conditions = []
            for la, lc, ra, rc in pending_joins:
                if la in joined and ra == alias:
                    conditions.append((f"{la}.{lc}", f"{alias}.{rc}"))
                elif ra in joined and la == alias:
                    conditions.append((f"{ra}.{rc}", f"{alias}.{lc}"))
            if conditions:
                if late_materialization:
                    current = current.join(filtered[alias], conditions)
                else:
                    current = hash_join(current, filtered[alias], conditions)
                pending_joins = [
                    j
                    for j in pending_joins
                    if not (
                        (j[0] in joined and j[2] == alias)
                        or (j[2] in joined and j[0] == alias)
                    )
                ]
                joined.add(alias)
                remaining.discard(alias)
                progress = True
                break
        if not progress:
            # No join condition connects: fall back to a cross product
            # with the smallest remaining table.
            alias = min(remaining, key=lambda a: sizes[a])
            if late_materialization:
                current = current.cross(filtered[alias])
            else:
                current = cross_product(current, filtered[alias])
            joined.add(alias)
            remaining.discard(alias)

    # Joins between two already-joined aliases (cycles) and residual
    # predicates become post-join filters.
    post: list[Predicate] = []
    for la, lc, ra, rc in pending_joins:
        post.append(
            Comparison("=", ColumnRef(f"{la}.{lc}"), ColumnRef(f"{ra}.{rc}"))
        )
    post.extend(planned.residual)
    if post:
        current = current.filter_mask(conjunction(post).mask(current))
    if late_materialization:
        current = current.to_relation()
    return current.rename("working")


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def group_indices(
    relation: Relation, group_columns: list[str]
) -> dict[tuple[Any, ...], np.ndarray]:
    """Partition row indices by the values of ``group_columns``.

    Grouping runs on the relation's dictionary/factorized codes (one
    ``np.unique`` over an int64 code matrix) rather than a per-row
    Python tuple loop; groups keep first-occurrence order and the
    historical tuple-equality semantics (``Relation._row_codes``),
    falling back to the loop when a column defeats encoding.
    """
    if not group_columns:
        return {(): np.arange(relation.num_rows)}
    if relation.num_rows == 0:
        return {}
    arrays = [relation.column(c) for c in group_columns]
    codes = relation._row_codes(group_columns)
    if codes is None:
        groups: dict[tuple[Any, ...], list[int]] = {}
        for i in range(relation.num_rows):
            key = tuple(arr[i] for arr in arrays)
            groups.setdefault(key, []).append(i)
        return {k: np.array(v, dtype=np.int64) for k, v in groups.items()}
    _, first_idx, inverse = np.unique(
        codes, axis=0, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    # Rank unique keys by first occurrence so the dict iterates in the
    # order the setdefault loop produced.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order))
    row_order = np.argsort(rank[inverse], kind="stable")
    boundaries = np.nonzero(np.diff(rank[inverse][row_order]))[0] + 1
    buckets = np.split(row_order, boundaries)
    result: dict[tuple[Any, ...], np.ndarray] = {}
    for bucket_rank, bucket in enumerate(buckets):
        i = int(first_idx[order[bucket_rank]])
        key = tuple(arr[i] for arr in arrays)
        result[key] = bucket
    return result


# Backwards-compatible alias (group_indices grew external callers —
# provenance.py — when grouping was vectorized).
_group_indices = group_indices


def _aggregate_value(
    call: AggregateCall, relation: Relation, indices: np.ndarray
) -> Any:
    if call.func == "count" and call.argument is None:
        return int(len(indices))
    assert call.argument is not None
    values = call.argument.values(relation)[indices]
    if values.dtype == object:
        non_null = [v for v in values if v is not None]
        if call.func == "count":
            return len(non_null)
        if not non_null:
            return None
        if call.func == "min":
            return min(non_null)
        if call.func == "max":
            return max(non_null)
        raise ExecutionError(
            f"{call.func.upper()} is not defined on categorical values"
        )
    numeric = values.astype(np.float64)
    valid = numeric[~np.isnan(numeric)]
    if call.func == "count":
        return int(len(valid))
    if len(valid) == 0:
        return None
    if call.func == "sum":
        return float(valid.sum())
    if call.func == "avg":
        return float(valid.mean())
    if call.func == "min":
        return float(valid.min())
    return float(valid.max())


def _evaluate_select_item(
    expression: Expression,
    relation: Relation,
    indices: np.ndarray,
) -> Any:
    """Evaluate a SELECT expression for a single group."""
    if isinstance(expression, AggregateCall):
        return _aggregate_value(expression, relation, indices)
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        values = expression.values(relation)
        return values[indices[0]]
    if isinstance(expression, Arithmetic):
        left = _evaluate_select_item(expression.left, relation, indices)
        right = _evaluate_select_item(expression.right, relation, indices)
        if left is None or right is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: a / b}
        try:
            return ops[expression.op](left, right)
        except ZeroDivisionError:
            return None
    raise ExecutionError(f"cannot evaluate SELECT expression {expression}")


def _vectorized_select_column(
    expression: Expression,
    relation: Relation,
    group_list: list[np.ndarray],
) -> list[Any] | None:
    """Evaluate a SELECT expression for every group at once.

    Element-for-element identical to mapping
    :func:`_evaluate_select_item` over the groups (same scalar types,
    same NaN/None semantics); returns ``None`` when a sub-expression
    needs the retained per-group reference path (object-dtype
    aggregates, unknown expression kinds), and the caller falls back.
    """
    if isinstance(expression, AggregateCall):
        return _vectorized_aggregate(expression, relation, group_list)
    if isinstance(expression, Literal):
        return [expression.value] * len(group_list)
    if isinstance(expression, ColumnRef):
        if not group_list:
            return []
        values = expression.values(relation)
        firsts = np.fromiter(
            (indices[0] for indices in group_list),
            dtype=np.int64,
            count=len(group_list),
        )
        return list(values[firsts])
    if isinstance(expression, Arithmetic):
        left = _vectorized_select_column(expression.left, relation, group_list)
        if left is None:
            return None
        right = _vectorized_select_column(
            expression.right, relation, group_list
        )
        if right is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: a / b}
        op = ops[expression.op]
        combined: list[Any] = []
        for a, b in zip(left, right):
            if a is None or b is None:
                combined.append(None)
                continue
            try:
                combined.append(op(a, b))
            except ZeroDivisionError:
                combined.append(None)
        return combined
    return None


def _vectorized_aggregate(
    call: AggregateCall,
    relation: Relation,
    group_list: list[np.ndarray],
) -> list[Any] | None:
    """One aggregate for all groups: column pass + bincount reductions.

    The argument expression evaluates once over the whole working table
    (the reference path re-evaluates it per group), rows concatenate in
    group-major order, and groups with equal valid counts reduce as the
    rows of one ``(k, L)`` matrix.  Bit-identical to the per-group
    reference: each matrix row holds exactly the reference's ``valid``
    sequence, and numpy's row-wise ``sum``/``mean``/``min``/``max``
    reduce a contiguous row exactly like the 1-D call (same pairwise
    blocking).  Returns ``None`` for object-dtype arguments — the
    reference path keeps Python min/max semantics and the
    not-defined-on-categorical raise.
    """
    if call.func == "count" and call.argument is None:
        return [int(len(indices)) for indices in group_list]
    assert call.argument is not None
    values = call.argument.values(relation)
    if values.dtype == object:
        return None
    n_groups = len(group_list)
    if n_groups == 0:
        return []
    order = np.concatenate(group_list)
    lengths = np.fromiter(
        (len(indices) for indices in group_list),
        dtype=np.int64,
        count=n_groups,
    )
    numeric = values.astype(np.float64, copy=False)[order]
    nan_mask = np.isnan(numeric)
    gid = np.repeat(np.arange(n_groups), lengths)
    counts = np.bincount(gid[~nan_mask], minlength=n_groups)
    if call.func == "count":
        return [int(c) for c in counts]
    out: list[Any] = [None] * n_groups  # all-NaN groups aggregate to None
    valid = numeric[~nan_mask]  # group-major, within-group row order
    starts = np.zeros(n_groups, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    for length in np.unique(counts):
        width = int(length)
        if width == 0:
            continue
        g_ids = np.nonzero(counts == length)[0]
        mat = valid[starts[g_ids][:, None] + np.arange(width)]
        if call.func == "sum":
            reduced = mat.sum(axis=1)
        elif call.func == "avg":
            reduced = mat.mean(axis=1)
        elif call.func == "min":
            reduced = mat.min(axis=1)
        else:
            reduced = mat.max(axis=1)
        for g, value in zip(g_ids.tolist(), reduced.tolist()):
            out[g] = value
    return out


def group_columns_in_working(query: Query, work: Relation) -> list[str]:
    """Resolve the query's GROUP BY references to working-table columns."""
    from .expressions import resolve_column

    return [resolve_column(work, ref.name) for ref in query.group_by]


def aggregate(
    query: Query, work: Relation, vectorized: bool = True
) -> Relation:
    """Apply grouping + aggregate evaluation to a working table.

    ``vectorized=True`` (default) evaluates each SELECT item for all
    groups at once (:func:`_vectorized_select_column`);
    ``vectorized=False`` runs the retained per-group reference loop.
    The two are byte-identical — tests/test_db_executor.py holds the
    parity property — and items the vectorized path declines (object
    aggregates) fall back per item.
    """
    group_cols = group_columns_in_working(query, work)
    groups = group_indices(work, group_cols)
    group_list = list(groups.values())
    out_columns: list[list[Any]] = []
    for item in query.select:
        col = (
            _vectorized_select_column(item.expression, work, group_list)
            if vectorized
            else None
        )
        if col is None:
            col = [
                _evaluate_select_item(item.expression, work, indices)
                for indices in group_list
            ]
        out_columns.append(col)
    rows: list[list[Any]] = [
        [col[g] for col in out_columns] for g in range(len(group_list))
    ]

    columns: list[Column] = []
    for pos, item in enumerate(query.select):
        sample = [row[pos] for row in rows]
        columns.append(Column(item.alias, _result_type(sample)))
    schema = TableSchema(name="result", columns=columns)
    result = Relation.from_rows(schema, rows)
    if group_cols:
        return result.sort_by([c.name for c in columns if _sortable(result, c)])
    return result


def _sortable(relation: Relation, column: Column) -> bool:
    return not any(v is None for v in relation.column(column.name))


def _result_type(values: list[Any]) -> ColumnType:
    from .types import infer_column_type

    return infer_column_type(values)


def execute(query: Query, db: Database) -> Relation:
    """Evaluate a single-block SPJA query and return its result relation."""
    work = working_table(query, db)
    if query.group_by or any(
        contains_aggregate(i.expression) for i in query.select
    ):
        return aggregate(query, work)
    # Pure SPJ query: project the SELECT expressions row-wise.
    columns: dict[str, np.ndarray] = {}
    schema_cols: list[Column] = []
    for item in query.select:
        values = item.expression.values(work)
        columns[item.alias] = values
        ctype = (
            ColumnType.TEXT
            if values.dtype == object
            else (ColumnType.INT if values.dtype.kind == "i" else ColumnType.FLOAT)
        )
        schema_cols.append(Column(item.alias, ctype))
    return Relation(TableSchema(name="result", columns=schema_cols), columns)
