"""Shared-memory publication of encoded relations for worker processes.

The serving layer's worker pool must read the same database from many
processes.  Copying it into each worker (pickling through the spawn
machinery) would multiply resident memory by the pool size and slow
cold start; instead the front-end process **exports** every relation's
big arrays into POSIX shared memory once (`multiprocessing
.shared_memory`), and each worker **attaches** zero-copy views:

- numeric columns (``int64``/``float64``) map straight onto the shared
  segment;
- object (TEXT) columns ship as their table-level
  :class:`~repro.db.relation.ColumnEncoding` — the int32 first-occurrence
  *code array* lives in shared memory, only the small code → value
  decode table travels by pickle.  The attached relation rebuilds its
  object column by one pointer gather (``decode[codes]``) and installs a
  :class:`ColumnEncoding` whose ``codes`` **are** the shared segment, so
  the late-materialized kernel path (which consumes codes, not values)
  gathers without copying;
- object columns that defeated dictionary encoding (unhashable values)
  fall back to pickling their values outright.

Ownership is asymmetric, mirroring the pool's lifecycle: the exporting
process owns every segment and unlinks them all on
:meth:`RelationExport.close` / :meth:`DatabaseExport.close` (worker
death never leaks segments — the parent still holds them).  Attachments
are **refcounted per process**: attaching the same segment twice maps it
once, and the mapping is closed when the last attachment releases it.
Attached segments are explicitly *unregistered* from Python's
``resource_tracker``, which (on 3.11/3.12) would otherwise unlink a
still-shared segment when any attaching process exits — exactly the
worker-death case the parent-side ownership protects against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from ..db.database import Database
from ..db.relation import ColumnEncoding, Relation
from ..db.schema import ForeignKey, TableSchema

# ---------------------------------------------------------------------------
# Per-process refcounted attachment registry
# ---------------------------------------------------------------------------

_registry_lock = threading.Lock()
# shm name -> [SharedMemory, refcount]
_attached: dict[str, list[Any]] = {}
# Names this process exported (owns).  An attach of a locally-exported
# segment must NOT unregister it from the resource tracker: register
# is set-semantics per name, so the attach's redundant register was a
# no-op and an unregister would strip the exporter's own registration.
_exported_names: set[str] = set()


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove an *attached* segment from the resource tracker.

    ``SharedMemory.__init__`` registers the segment with the tracker
    even when merely attaching; a tracked attachment is unlinked when
    the attaching process's tracker shuts down, destroying a segment
    the exporter (and its other workers) still use.  The exporter
    remains registered and keeps sole unlink responsibility.

    Only applies when this process runs its *own* tracker.  Children
    spawned by the exporter inherit the exporter's tracker fd, so the
    whole tree shares one name-keyed cache: there the attach-time
    register was a duplicate no-op, and an unregister would strip the
    exporter's own registration (losing crash-leak protection and
    making the exporter's eventual unlink double-unregister).
    """
    tracker = resource_tracker._resource_tracker
    if getattr(tracker, "_pid", None) is None:
        return  # inherited (shared) tracker — registration isn't ours
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map the named segment, refcounted within this process."""
    with _registry_lock:
        entry = _attached.get(name)
        if entry is not None:
            entry[1] += 1
            return entry[0]
        shm = shared_memory.SharedMemory(name=name)
        if name not in _exported_names:
            _untrack(shm)
        _attached[name] = [shm, 1]
        return shm


def release_segment(name: str) -> None:
    """Drop one reference; the mapping closes when the last one goes."""
    with _registry_lock:
        entry = _attached.get(name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del _attached[name]
            entry[0].close()


def attached_segment_count() -> int:
    """How many distinct segments this process currently maps."""
    with _registry_lock:
        return len(_attached)


# ---------------------------------------------------------------------------
# Handles (small, picklable descriptions of what lives where)
# ---------------------------------------------------------------------------

NUMERIC = "numeric"
ENCODED = "encoded"
OBJECTS = "objects"


@dataclass
class ColumnSpec:
    """Where one column's data lives and how to rebuild it."""

    name: str
    kind: str  # NUMERIC | ENCODED | OBJECTS
    shm_name: str = ""
    dtype: str = ""
    length: int = 0
    # ENCODED: code -> value decode table; OBJECTS: the raw values.
    values: list[Any] = field(default_factory=list)
    null_codes: tuple[int, ...] = ()


@dataclass
class RelationHandle:
    """A picklable recipe for attaching one exported relation."""

    schema: TableSchema
    num_rows: int
    columns: list[ColumnSpec]

    @property
    def segment_names(self) -> list[str]:
        return [c.shm_name for c in self.columns if c.shm_name]


@dataclass
class DatabaseHandle:
    """A picklable recipe for attaching one exported database."""

    name: str
    relations: list[RelationHandle]
    foreign_keys: list[ForeignKey]

    @property
    def segment_names(self) -> list[str]:
        return [n for rel in self.relations for n in rel.segment_names]


# ---------------------------------------------------------------------------
# Export (owning side)
# ---------------------------------------------------------------------------


def _new_segment(arr: np.ndarray) -> shared_memory.SharedMemory:
    from ..db.colstore import copy_chunked

    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    if arr.nbytes:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        # Chunked fill: exporting a memmap-backed column streams pages
        # into the segment instead of materializing the whole array.
        copy_chunked(view, arr)
    with _registry_lock:
        _exported_names.add(shm.name)
    return shm


def _decode_table(encoding: ColumnEncoding) -> list[Any]:
    """``values[code] = value`` — the inverse of ``code_of``."""
    values: list[Any] = [None] * encoding.num_codes
    for value, code in encoding.code_of.items():
        values[code] = value
    return values


class RelationExport:
    """One exported relation: its handle plus the owned segments."""

    def __init__(self, relation: Relation):
        self._segments: list[shared_memory.SharedMemory] = []
        specs: list[ColumnSpec] = []
        try:
            for column in relation.schema.columns:
                # Dtype dispatch before any value materialization: a
                # disk-backed relation exports numeric arrays and code
                # arrays straight from its memmaps; only columns that
                # defeated dictionary encoding materialize values here.
                if relation.column_dtype(column.name) != object:
                    arr = relation.column(column.name)
                    shm = _new_segment(arr)
                    self._segments.append(shm)
                    specs.append(
                        ColumnSpec(
                            name=column.name,
                            kind=NUMERIC,
                            shm_name=shm.name,
                            dtype=arr.dtype.str,
                            length=len(arr),
                        )
                    )
                    continue
                encoding = relation.encoding(column.name)
                if encoding is None:
                    arr = relation.column(column.name)
                    specs.append(
                        ColumnSpec(
                            name=column.name,
                            kind=OBJECTS,
                            length=len(arr),
                            values=list(arr),
                        )
                    )
                    continue
                shm = _new_segment(encoding.codes)
                self._segments.append(shm)
                specs.append(
                    ColumnSpec(
                        name=column.name,
                        kind=ENCODED,
                        shm_name=shm.name,
                        dtype=encoding.codes.dtype.str,
                        length=len(encoding.codes),
                        values=_decode_table(encoding),
                        null_codes=tuple(encoding.null_codes),
                    )
                )
        except Exception:
            self.close()
            raise
        self.handle = RelationHandle(
            schema=relation.schema,
            num_rows=relation.num_rows,
            columns=specs,
        )
        self._closed = False

    @property
    def shared_bytes(self) -> int:
        return sum(shm.size for shm in self._segments)

    @property
    def closed(self) -> bool:
        """True once the segments are unlinked; attaches must stop."""
        return self._closed

    def close(self) -> None:
        """Unmap and unlink every owned segment (idempotent)."""
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
            try:
                # unlink() sends one unregister; re-register first so
                # the tracker's set-semantics cache is balanced even if
                # an attacher elsewhere in the tree already consumed
                # our registration.
                resource_tracker.register(shm._name, "shared_memory")
                shm.unlink()
            except FileNotFoundError:
                pass
            with _registry_lock:
                _exported_names.discard(shm.name)
        self._segments = []
        self._closed = True


class DatabaseExport:
    """A whole database exported table by table; owns all segments."""

    def __init__(self, db: Database):
        self._exports: list[RelationExport] = []
        self._closed = False
        try:
            relations = [
                RelationExport(db.table(name)) for name in db.table_names
            ]
        except Exception:
            self.close()
            raise
        self._exports = relations
        self.handle = DatabaseHandle(
            name=db.name,
            relations=[e.handle for e in self._exports],
            foreign_keys=db.foreign_keys,
        )

    @property
    def shared_bytes(self) -> int:
        return sum(e.shared_bytes for e in self._exports)

    @property
    def closed(self) -> bool:
        """True once the segments are unlinked; spawns must stop."""
        return self._closed

    def close(self) -> None:
        for export in self._exports:
            export.close()
        self._closed = True

    def __enter__(self) -> "DatabaseExport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def export_relation(relation: Relation) -> RelationExport:
    """Publish one relation's arrays into shared memory."""
    return RelationExport(relation)


def export_database(db: Database) -> DatabaseExport:
    """Publish every relation of ``db`` into shared memory."""
    return DatabaseExport(db)


# ---------------------------------------------------------------------------
# Attach (borrowing side)
# ---------------------------------------------------------------------------


def _shared_array(spec: ColumnSpec) -> np.ndarray:
    """A read-only array view over the named shared segment."""
    shm = attach_segment(spec.shm_name)
    arr: np.ndarray = np.ndarray(
        (spec.length,), dtype=np.dtype(spec.dtype), buffer=shm.buf
    )
    arr.flags.writeable = False
    return arr


class AttachedRelation:
    """A relation whose big arrays are views into shared memory.

    Numeric columns and every :class:`ColumnEncoding` code array alias
    the exporter's segments (zero copy); object columns are one pointer
    gather over the shared codes.  Hold this object (or keep its
    ``relation`` reachable from one) for as long as the relation is in
    use, and :meth:`close` when done so the segment refcounts drop.
    """

    def __init__(self, handle: RelationHandle):
        self._segment_names = list(handle.segment_names)
        columns: dict[str, np.ndarray] = {}
        encodings: dict[str, ColumnEncoding | None] = {}
        try:
            for spec in handle.columns:
                if spec.kind == NUMERIC:
                    columns[spec.name] = _shared_array(spec)
                elif spec.kind == ENCODED:
                    codes = _shared_array(spec)
                    decode = np.empty(len(spec.values), dtype=object)
                    if spec.values:
                        decode[:] = spec.values
                        values = decode[codes]
                    else:
                        values = np.empty(0, dtype=object)
                    columns[spec.name] = values
                    encodings[spec.name] = ColumnEncoding(
                        codes=codes,
                        code_of={v: i for i, v in enumerate(spec.values)},
                        null_codes=tuple(spec.null_codes),
                    )
                elif spec.kind == OBJECTS:
                    arr = np.empty(spec.length, dtype=object)
                    if spec.length:
                        arr[:] = spec.values
                    columns[spec.name] = arr
                else:  # pragma: no cover - handle corruption
                    raise ValueError(f"unknown column kind {spec.kind!r}")
        except Exception:
            self.close()
            raise
        relation = Relation(handle.schema, columns)
        relation._encodings.update(encodings)
        self.relation = relation
        self._closed = False

    def close(self) -> None:
        for name in self._segment_names:
            release_segment(name)
        self._segment_names = []
        self._closed = True


class AttachedDatabase:
    """A database rebuilt from shared memory; ``close`` releases it."""

    def __init__(self, handle: DatabaseHandle):
        self._attachments: list[AttachedRelation] = []
        db = Database(name=handle.name)
        try:
            for rel_handle in handle.relations:
                attached = AttachedRelation(rel_handle)
                self._attachments.append(attached)
                db.add_relation(attached.relation)
            for fk in handle.foreign_keys:
                db.add_foreign_key(
                    fk.table, fk.columns, fk.ref_table, fk.ref_columns
                )
        except Exception:
            self.close()
            raise
        self.database = db

    def close(self) -> None:
        for attached in self._attachments:
            attached.close()
        self._attachments = []

    def __enter__(self) -> "AttachedDatabase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def attach_relation(handle: RelationHandle) -> AttachedRelation:
    """Rebuild a relation from an export handle (zero-copy arrays)."""
    return AttachedRelation(handle)


def attach_database(handle: DatabaseHandle) -> AttachedDatabase:
    """Rebuild a database from an export handle (zero-copy arrays)."""
    return AttachedDatabase(handle)
