"""Execution backends: a sharded process pool and an inline fallback.

:class:`ProcessPoolBackend` runs one persistent worker process per
shard.  Each worker attaches the shared-memory database export
(:mod:`repro.serving.shm`), builds its own
:class:`~repro.api.CajadeSession`, and then answers locality-ordered
batches for exactly the query fingerprints
:func:`~repro.serving.scheduler.shard_for` routes to it — so each
worker's parsed queries, provenance tables, warm tries, and mining
memos cover precisely its own shard of the query space, and no state is
duplicated across workers.

Workers use the ``spawn`` start method: a spawned child inherits
nothing, which keeps the shared-memory path honest (the only bulk data
transfer is the segment attach) and avoids fork-with-threads hazards
under the asyncio front-end.  Each shard has its own request and
response queue; the front-end guarantees at most one outstanding batch
per shard, so the blocking :meth:`~ProcessPoolBackend.execute` call can
simply await its own batch id on its shard's response queue, polling
worker liveness so a killed worker surfaces as a
:class:`~repro.serving.frontend.ServiceError` instead of a hang.  The
parent owns the shm export and unlinks it on :meth:`stop` — worker
death never leaks segments.

:class:`InlineBackend` implements the same contract with in-process
sessions (one per shard) and no processes at all — the test/CI
substrate, and the fallback when the platform lacks POSIX shared
memory.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
from typing import Any

from ..api.session import CajadeSession
from ..api.types import ExplanationRequest
from ..core.config import CajadeConfig
from ..core.schema_graph import SchemaGraph
from ..db.database import Database
from .frontend import ServiceError, canonical_payload
from .shm import DatabaseHandle, attach_database, export_database

_READY_TIMEOUT = 120.0  # spawn + numpy import can be slow on small boxes
_POLL_SECONDS = 0.25


def _worker_main(
    shard: int,
    handle: DatabaseHandle,
    schema_graph: SchemaGraph,
    config: CajadeConfig,
    request_queue: "mp.Queue[Any]",
    response_queue: "mp.Queue[Any]",
) -> None:
    """Worker loop: attach shm, build a session, answer batches."""
    attached = attach_database(handle)
    try:
        session = CajadeSession(
            attached.database, schema_graph, config
        )
        response_queue.put(("ready", shard))
        while True:
            message = request_queue.get()
            if message is None:
                break
            batch_id, requests = message
            try:
                responses = session.explain_batch(list(requests))
                payloads = [canonical_payload(r) for r in responses]
            except Exception as exc:  # surface, don't kill the worker
                response_queue.put(
                    ("error", batch_id, f"{type(exc).__name__}: {exc}")
                )
                continue
            response_queue.put(("ok", batch_id, payloads))
    finally:
        attached.close()


class _Worker:
    """Parent-side record of one shard's process and queues."""

    def __init__(self, ctx: Any, shard: int):
        self.shard = shard
        self.request_queue: "mp.Queue[Any]" = ctx.Queue()
        self.response_queue: "mp.Queue[Any]" = ctx.Queue()
        self.process: Any = None
        self.batch_seq = 0


class ProcessPoolBackend:
    """One persistent spawned process per fingerprint shard."""

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
        num_shards: int = 2,
        start_method: str = "spawn",
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.base_config = config or CajadeConfig()
        self._schema_graph = (
            schema_graph or SchemaGraph.from_database(db)
        )
        self._ctx = mp.get_context(start_method)
        self._export = export_database(db)
        self._workers = [
            _Worker(self._ctx, shard) for shard in range(num_shards)
        ]
        self._started = False
        self._stopped = False

    @property
    def shared_bytes(self) -> int:
        """Bytes published once in shared memory (not per worker)."""
        return self._export.shared_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker and wait for its ready handshake."""
        if self._started:
            return
        for worker in self._workers:
            worker.process = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker.shard,
                    self._export.handle,
                    self._schema_graph,
                    self.base_config,
                    worker.request_queue,
                    worker.response_queue,
                ),
                daemon=True,
                name=f"cajade-worker-{worker.shard}",
            )
            worker.process.start()
        for worker in self._workers:
            self._await_message(worker, "ready", _READY_TIMEOUT)
        self._started = True

    def stop(self) -> None:
        """Shut workers down and unlink the shared-memory export."""
        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            if process.is_alive():
                try:
                    worker.request_queue.put(None)
                except Exception:
                    pass
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._export.close()

    def __enter__(self) -> "ProcessPoolBackend":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, shard: int, requests: list[ExplanationRequest]
    ) -> list[str]:
        worker = self._workers[shard]
        if worker.process is None or not worker.process.is_alive():
            raise ServiceError(f"worker {shard} is not running")
        worker.batch_seq += 1
        batch_id = worker.batch_seq
        worker.request_queue.put((batch_id, tuple(requests)))
        kind, payload = self._await_batch(worker, batch_id)
        if kind == "error":
            raise ServiceError(f"worker {shard} failed: {payload}")
        return payload

    def _await_message(
        self, worker: _Worker, expected: str, timeout: float
    ) -> Any:
        deadline = timeout
        waited = 0.0
        while True:
            try:
                message = worker.response_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                waited += _POLL_SECONDS
                if not worker.process.is_alive():
                    raise ServiceError(
                        f"worker {worker.shard} died during startup "
                        f"(exit code {worker.process.exitcode})"
                    )
                if waited >= deadline:
                    raise ServiceError(
                        f"worker {worker.shard} did not become ready "
                        f"within {timeout}s"
                    )
                continue
            if message[0] == expected:
                return message
            # Anything else at this stage is a protocol error.
            raise ServiceError(
                f"worker {worker.shard} sent unexpected "
                f"{message[0]!r} during startup"
            )

    def _await_batch(
        self, worker: _Worker, batch_id: int
    ) -> tuple[str, Any]:
        while True:
            try:
                message = worker.response_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                if not worker.process.is_alive():
                    raise ServiceError(
                        f"worker {worker.shard} died mid-batch "
                        f"(exit code {worker.process.exitcode})"
                    )
                continue
            kind, got_id, payload = message
            if got_id == batch_id:
                return kind, payload
            # A stale response from a batch the caller gave up on;
            # drop it and keep waiting for ours.


class InlineBackend:
    """The same contract, executed by in-process sessions.

    One :class:`CajadeSession` per shard mirrors the pool's state
    layout (each shard's tries and memos warm independently) without
    any processes — deterministic and fast for tests, and a correct
    single-process fallback for ``--serve --workers 0``.
    """

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
        num_shards: int = 1,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.base_config = config or CajadeConfig()
        graph = schema_graph or SchemaGraph.from_database(db)
        self._sessions = [
            CajadeSession(db, graph, self.base_config)
            for _ in range(num_shards)
        ]
        self._lock = threading.Lock()
        self.requests_executed = 0
        self.batches_executed = 0

    def start(self) -> None:  # symmetric with the pool
        pass

    def stop(self) -> None:
        for session in self._sessions:
            session.close()

    def session(self, shard: int) -> CajadeSession:
        """The shard's session (test hook)."""
        return self._sessions[shard]

    def execute(
        self, shard: int, requests: list[ExplanationRequest]
    ) -> list[str]:
        with self._lock:
            self.requests_executed += len(requests)
            self.batches_executed += 1
        responses = self._sessions[shard].explain_batch(requests)
        return [canonical_payload(r) for r in responses]
