"""Execution backends: a supervised sharded process pool and an inline
fallback.

:class:`ProcessPoolBackend` runs one persistent worker process per
shard.  Each worker attaches the shared-memory database export
(:mod:`repro.serving.shm`), builds its own
:class:`~repro.api.CajadeSession`, and then answers locality-ordered
batches for exactly the query fingerprints
:func:`~repro.serving.scheduler.shard_for` routes to it — so each
worker's parsed queries, provenance tables, warm tries, and mining
memos cover precisely its own shard of the query space, and no state is
duplicated across workers.

Workers use the ``spawn`` start method: a spawned child inherits
nothing, which keeps the shared-memory path honest (the only bulk data
transfer is the segment attach) and avoids fork-with-threads hazards
under the asyncio front-end.  Each shard has its own request and
response queue; the front-end guarantees at most one outstanding batch
per shard, so the blocking :meth:`~ProcessPoolBackend.execute` call can
simply await its own batch id on its shard's response queue, polling
worker liveness.

**Supervision.**  A dead worker is not a dead shard: ``execute``
detects death (liveness poll), records the failure with the
:class:`~repro.serving.supervisor.ShardSupervisor`, and surfaces a
retryable :class:`~repro.serving.frontend.WorkerDiedError`; the
*next* execute on that shard respawns a replacement against the
still-live shared-memory export (exponential backoff + seeded jitter
between consecutive respawns) and re-runs the ready handshake.  A
shard that crash-loops past its ``max_restarts`` consecutive-failure
budget is quarantined — subsequent executes raise
:class:`ShardQuarantinedError`, and the front-end either degrades to
:meth:`execute_fallback` (a lazily-built in-parent session — slower
but byte-identical) or fast-fails with a structured 503.

**Integrity.**  Workers return one outcome per request —
``("ok", payload, digest)`` or ``("error", kind, message)`` — with a
blake2b digest over each payload; the parent verifies every digest and
raises a retryable :class:`CorruptReplyError` on mismatch, so a
mangled reply can never reach a client (or the response cache).
Deterministic per-request failures (bad SQL, unknown tuple) are
isolated: the batch falls back to per-request execution so one poison
request cannot fail its batch-mates.

The parent owns the shm export and unlinks it on :meth:`stop`; worker
death never leaks segments, and a *startup* failure (worker N dies
before its ready handshake) tears down the already-spawned workers and
unlinks the export before re-raising — a crashed ``start()`` leaks
neither processes nor segments.

:class:`InlineBackend` implements the same contract with in-process
sessions (one per shard) and no processes at all — the test/CI
substrate, and the fallback when the platform lacks POSIX shared
memory.  Fault injection (:mod:`repro.serving.faults`) maps worker
death onto "drop the shard's session", so the whole failure matrix is
testable without spawning.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import queue
import random
import signal
import threading
import time
from typing import Any

from ..api.session import CajadeSession
from ..api.types import ExplanationRequest
from ..core.config import CajadeConfig
from ..core.schema_graph import SchemaGraph
from ..db.database import Database
from .faults import CORRUPT, DELAY, KILL, FaultPlan, FaultRule
from .frontend import (
    CorruptReplyError,
    DeadlineExceededError,
    Outcome,
    ServiceError,
    WorkerDiedError,
    canonical_payload,
)
from .shm import DatabaseHandle, attach_database, export_database
from .supervisor import ShardSupervisor

_READY_TIMEOUT = 120.0  # spawn + numpy import can be slow on small boxes
_POLL_SECONDS = 0.25
_MAX_RESPAWN_BACKOFF = 2.0

# Wire-level outcome tags (worker -> parent).
_OK = "ok"
_ERROR = "error"
# Error kinds inside an outcome.
TIMEOUT = "timeout"
DETERMINISTIC = "deterministic"


def _digest(payload: str) -> str:
    """A short integrity checksum over one reply payload."""
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=8
    ).hexdigest()


def _corrupt_payload(payload: str) -> str:
    """Flip the last character (fault injection's 'mangled wire')."""
    if not payload:
        return "\x00"
    last = payload[-1]
    return payload[:-1] + chr((ord(last) + 1) % 128)


def _execute_work(
    session: CajadeSession,
    work: list[tuple[ExplanationRequest, float | None]],
) -> list[tuple]:
    """Run a batch against a session, one checksummed outcome per
    request.

    Requests whose deadline already passed are answered with a
    ``timeout`` outcome without touching the engine.  The live rest run
    through ``explain_batch`` (the byte-identity fast path); if that
    raises, each request is retried individually so a single poison
    request yields one ``deterministic`` error instead of failing its
    batch-mates.
    """
    now = time.time()
    outcomes: list[tuple | None] = [None] * len(work)
    live_index: list[int] = []
    live_requests: list[ExplanationRequest] = []
    for i, (request, deadline) in enumerate(work):
        if deadline is not None and deadline <= now:
            outcomes[i] = (
                _ERROR,
                TIMEOUT,
                "deadline expired before execution",
            )
        else:
            live_index.append(i)
            live_requests.append(request)
    if live_requests:
        try:
            responses = session.explain_batch(live_requests)
            for i, response in zip(live_index, responses):
                payload = canonical_payload(response)
                outcomes[i] = (_OK, payload, _digest(payload))
        except Exception:
            # Isolate the poison request: retry one at a time.
            for i, request in zip(live_index, live_requests):
                try:
                    payload = canonical_payload(session.explain(request))
                    outcomes[i] = (_OK, payload, _digest(payload))
                except Exception as exc:
                    outcomes[i] = (
                        _ERROR,
                        DETERMINISTIC,
                        f"{type(exc).__name__}: {exc}",
                    )
    return outcomes  # type: ignore[return-value]


def _worker_main(
    shard: int,
    incarnation: int,
    handle: DatabaseHandle,
    schema_graph: SchemaGraph,
    config: CajadeConfig,
    fault_plan: FaultPlan | None,
    request_queue: "mp.Queue[Any]",
    response_queue: "mp.Queue[Any]",
) -> None:
    """Worker loop: attach shm, build a session, answer batches."""
    if fault_plan is not None and fault_plan.startup_crash(
        shard, incarnation
    ):
        os._exit(3)
    attached = attach_database(handle)
    try:
        session = CajadeSession(
            attached.database, schema_graph, config
        )
        response_queue.put(("ready", shard, incarnation))
        while True:
            message = request_queue.get()
            if message is None:
                break
            batch_id, work = message
            outcomes = _execute_work(session, list(work))
            response_queue.put(("batch", batch_id, outcomes))
    except KeyboardInterrupt:
        # A terminal Ctrl-C signals the whole foreground process
        # group; the parent coordinates shutdown, so exit quietly
        # instead of spraying a traceback per worker.
        pass
    finally:
        attached.close()


class _Worker:
    """Parent-side record of one shard-worker incarnation."""

    def __init__(self, ctx: Any, shard: int, incarnation: int):
        self.shard = shard
        self.incarnation = incarnation
        self.request_queue: "mp.Queue[Any]" = ctx.Queue()
        self.response_queue: "mp.Queue[Any]" = ctx.Queue()
        self.process: Any = None
        self.dead = False


class ProcessPoolBackend:
    """One persistent spawned process per fingerprint shard, supervised."""

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
        num_shards: int = 2,
        start_method: str = "spawn",
        max_restarts: int = 3,
        restart_backoff: float = 0.1,
        fault_plan: FaultPlan | None = None,
        seed: int = 0,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.base_config = config or CajadeConfig()
        self._db = db
        self._schema_graph = (
            schema_graph or SchemaGraph.from_database(db)
        )
        self._ctx = mp.get_context(start_method)
        self._export = export_database(db)
        self._fault_plan = fault_plan
        self._supervisor = ShardSupervisor(
            num_shards, max_restarts=max_restarts
        )
        self._restart_backoff = restart_backoff
        self._restart_rng = random.Random(seed)
        self._incarnations = [0] * num_shards
        self._batch_seq = [0] * num_shards
        self._workers: list[_Worker | None] = [None] * num_shards
        self._fallback_sessions: dict[int, CajadeSession] = {}
        self._fallback_lock = threading.Lock()
        self._started = False
        self._stopped = False

    @property
    def shared_bytes(self) -> int:
        """Bytes published once in shared memory (not per worker)."""
        return self._export.shared_bytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard: int) -> _Worker:
        """Spawn (or respawn) the shard's worker process."""
        self._incarnations[shard] += 1
        worker = _Worker(self._ctx, shard, self._incarnations[shard])
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(
                shard,
                worker.incarnation,
                self._export.handle,
                self._schema_graph,
                self.base_config,
                self._fault_plan,
                worker.request_queue,
                worker.response_queue,
            ),
            daemon=True,
            name=f"cajade-worker-{shard}.{worker.incarnation}",
        )
        worker.process.start()
        self._workers[shard] = worker
        return worker

    def start(self) -> None:
        """Spawn every worker and wait for its ready handshake.

        A partial failure (worker N dies before its handshake) must not
        leak: every already-spawned process is terminated and joined,
        and the shared-memory export is unlinked, before the error
        propagates.
        """
        if self._started:
            return
        if self._stopped:
            raise ServiceError("pool was stopped and cannot restart")
        try:
            for shard in range(self.num_shards):
                self._spawn(shard)
            for worker in self._workers:
                assert worker is not None
                self._await_message(worker, "ready", _READY_TIMEOUT)
        except Exception:
            self._teardown_workers()
            self._export.close()
            self._stopped = True
            raise
        self._started = True

    def _teardown_workers(self) -> None:
        for worker in self._workers:
            if worker is None or worker.process is None:
                continue
            process = worker.process
            if process.is_alive():
                try:
                    worker.request_queue.put(None)
                except Exception:
                    pass
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def stop(self) -> None:
        """Shut workers down and unlink the shared-memory export."""
        if self._stopped:
            return
        self._stopped = True
        self._teardown_workers()
        self._export.close()
        with self._fallback_lock:
            for session in self._fallback_sessions.values():
                session.close()
            self._fallback_sessions.clear()

    def __enter__(self) -> "ProcessPoolBackend":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _ensure_worker(self, shard: int) -> _Worker:
        """The shard's live worker, respawning a dead one if allowed.

        Consecutive respawns back off exponentially (seeded jitter) so
        a crash-looping shard does not busy-spin through its quarantine
        budget.  A respawn that fails its ready handshake counts as
        another failure; crossing the budget quarantines the shard.
        """
        worker = self._workers[shard]
        if (
            worker is not None
            and not worker.dead
            and worker.process is not None
            and worker.process.is_alive()
        ):
            return worker
        if not self._started or self._stopped or self._export.closed:
            raise ServiceError(f"pool is not running (shard {shard})")
        if worker is not None and worker.process is not None:
            worker.process.join(timeout=1.0)  # reap the corpse
        streak = self._supervisor.consecutive_failures(shard)
        delay = (
            self._restart_backoff
            * (2 ** max(0, streak - 1))
            * (1.0 + self._restart_rng.random())
        )
        time.sleep(min(delay, _MAX_RESPAWN_BACKOFF))
        worker = self._spawn(shard)
        try:
            self._await_message(worker, "ready", _READY_TIMEOUT)
        except WorkerDiedError as exc:
            worker.dead = True
            if self._supervisor.record_failure(shard, exc):
                raise
            self._supervisor.check(shard)  # raises ShardQuarantinedError
            raise  # pragma: no cover - check always raises here
        self._supervisor.record_restart(shard)
        return worker

    def health(self) -> dict:
        """Per-shard supervision state plus fault-injection totals."""
        snapshot = self._supervisor.snapshot()
        if self._fault_plan is not None:
            snapshot["faults_injected"] = self._fault_plan.fired_total
        return snapshot

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        shard: int,
        work: list[tuple[ExplanationRequest, float | None]],
    ) -> list[Outcome]:
        self._supervisor.check(shard)
        worker = self._ensure_worker(shard)
        corrupt = False
        for action in self._fault_actions(shard, len(work)):
            if action.kind == DELAY:
                time.sleep(action.delay_seconds)
            elif action.kind == CORRUPT:
                corrupt = True
            elif action.kind == KILL and worker.process.is_alive():
                os.kill(worker.process.pid, signal.SIGKILL)
        self._batch_seq[shard] += 1
        batch_id = self._batch_seq[shard]
        deadlines = [d for _r, d in work]
        batch_deadline = (
            max(deadlines) if all(d is not None for d in deadlines) else None
        )
        worker.request_queue.put((batch_id, tuple(work)))
        try:
            outcomes = self._await_batch(worker, batch_id, batch_deadline)
            checked = self._verify(shard, outcomes, corrupt)
        except (WorkerDiedError, CorruptReplyError) as exc:
            if isinstance(exc, WorkerDiedError):
                worker.dead = True
            if self._supervisor.record_failure(shard, exc):
                raise
            self._supervisor.check(shard)  # raises ShardQuarantinedError
            raise  # pragma: no cover - check always raises here
        self._supervisor.record_success(shard)
        return checked

    def _fault_actions(
        self, shard: int, num_requests: int
    ) -> list[FaultRule]:
        if self._fault_plan is None:
            return []
        return self._fault_plan.admit(shard, num_requests)

    def _verify(
        self, shard: int, outcomes: list[tuple], corrupt: bool
    ) -> list[Outcome]:
        """Checksum-verify every payload; strip digests from the wire
        form.  ``corrupt`` applies the injected wire mangling *before*
        verification — proving a corrupt reply cannot get through."""
        checked: list[Outcome] = []
        for outcome in outcomes:
            if outcome[0] != _OK:
                checked.append(tuple(outcome))
                continue
            _tag, payload, digest = outcome
            if corrupt:
                payload = _corrupt_payload(payload)
                corrupt = False  # mangle one reply per injected fault
            if _digest(payload) != digest:
                raise CorruptReplyError(
                    f"shard {shard} reply failed checksum verification"
                )
            checked.append((_OK, payload))
        return checked

    def execute_fallback(
        self,
        shard: int,
        work: list[tuple[ExplanationRequest, float | None]],
    ) -> list[Outcome]:
        """Degraded-mode execution for a quarantined shard: a lazily
        built in-parent session over the original database.  Slower
        (no warm worker state) but byte-identical — the session memo
        contract does not care which process runs the mining."""
        with self._fallback_lock:
            session = self._fallback_sessions.get(shard)
            if session is None:
                session = CajadeSession(
                    self._db, self._schema_graph, self.base_config
                )
                self._fallback_sessions[shard] = session
        outcomes = _execute_work(session, work)
        return [
            (_OK, outcome[1]) if outcome[0] == _OK else tuple(outcome)
            for outcome in outcomes
        ]

    def _await_message(
        self, worker: _Worker, expected: str, timeout: float
    ) -> Any:
        deadline = timeout
        waited = 0.0
        while True:
            try:
                message = worker.response_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                waited += _POLL_SECONDS
                if not worker.process.is_alive():
                    raise WorkerDiedError(
                        f"worker {worker.shard} died during startup "
                        f"(exit code {worker.process.exitcode})"
                    )
                if waited >= deadline:
                    raise WorkerDiedError(
                        f"worker {worker.shard} did not become ready "
                        f"within {timeout}s"
                    )
                continue
            if message[0] == expected:
                return message
            # Anything else at this stage is a protocol error.
            raise ServiceError(
                f"worker {worker.shard} sent unexpected "
                f"{message[0]!r} during startup"
            )

    def _await_batch(
        self,
        worker: _Worker,
        batch_id: int,
        deadline: float | None,
    ) -> list[tuple]:
        while True:
            if deadline is not None and time.time() > deadline:
                # Every request in the batch is past its budget.  The
                # worker keeps computing; its late reply is dropped as
                # stale by the batch-id check of the next dispatch.
                raise DeadlineExceededError(
                    f"shard {worker.shard} batch {batch_id} exceeded "
                    "its deadline"
                )
            try:
                message = worker.response_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                if not worker.process.is_alive():
                    raise WorkerDiedError(
                        f"worker {worker.shard} died mid-batch "
                        f"(exit code {worker.process.exitcode})"
                    )
                continue
            _kind, got_id, outcomes = message
            if got_id == batch_id:
                return outcomes
            # A stale response from a batch the caller gave up on;
            # drop it and keep waiting for ours.


class InlineBackend:
    """The same contract, executed by in-process sessions.

    One :class:`CajadeSession` per shard mirrors the pool's state
    layout (each shard's tries and memos warm independently) without
    any processes — deterministic and fast for tests, and a correct
    single-process fallback for ``--serve --workers 0``.

    Fault injection maps the process-pool failure matrix onto inline
    analogues: ``KILL`` drops the shard's session (its warm state — the
    exact loss a worker death causes) and raises a retryable
    :class:`WorkerDiedError`; ``CORRUPT`` mangles a reply before the
    same checksum verification the pool performs; ``DELAY`` sleeps.
    The supervisor accounting is identical, so restart/quarantine/
    degraded paths are testable without spawning a single process.
    """

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
        num_shards: int = 1,
        max_restarts: int = 3,
        fault_plan: FaultPlan | None = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.base_config = config or CajadeConfig()
        self._db = db
        self._graph = schema_graph or SchemaGraph.from_database(db)
        self._sessions = [
            CajadeSession(db, self._graph, self.base_config)
            for _ in range(num_shards)
        ]
        self._supervisor = ShardSupervisor(
            num_shards, max_restarts=max_restarts
        )
        self._fault_plan = fault_plan
        self._fallback_sessions: dict[int, CajadeSession] = {}
        self._lock = threading.Lock()
        self.requests_executed = 0
        self.batches_executed = 0

    def start(self) -> None:  # symmetric with the pool
        pass

    def stop(self) -> None:
        for session in self._sessions:
            session.close()
        for session in self._fallback_sessions.values():
            session.close()
        self._fallback_sessions.clear()

    def session(self, shard: int) -> CajadeSession:
        """The shard's session (test hook)."""
        return self._sessions[shard]

    def health(self) -> dict:
        snapshot = self._supervisor.snapshot()
        if self._fault_plan is not None:
            snapshot["faults_injected"] = self._fault_plan.fired_total
        return snapshot

    def execute(
        self,
        shard: int,
        work: list[tuple[ExplanationRequest, float | None]],
    ) -> list[Outcome]:
        self._supervisor.check(shard)
        with self._lock:
            self.requests_executed += len(work)
            self.batches_executed += 1
        corrupt = False
        killed = False
        if self._fault_plan is not None:
            for action in self._fault_plan.admit(shard, len(work)):
                if action.kind == DELAY:
                    time.sleep(action.delay_seconds)
                elif action.kind == CORRUPT:
                    corrupt = True
                elif action.kind == KILL:
                    killed = True
        if killed:
            # The inline analogue of worker death: the shard's warm
            # session is lost and rebuilt cold, exactly like a respawn.
            self._sessions[shard].close()
            self._sessions[shard] = CajadeSession(
                self._db, self._graph, self.base_config
            )
            exc = WorkerDiedError(
                f"shard {shard} session killed by fault injection"
            )
            if self._supervisor.record_failure(shard, exc):
                self._supervisor.record_restart(shard)
                raise exc
            self._supervisor.check(shard)
            raise exc  # pragma: no cover - check always raises here
        outcomes = _execute_work(self._sessions[shard], work)
        checked: list[Outcome] = []
        try:
            for outcome in outcomes:
                if outcome[0] != _OK:
                    checked.append(tuple(outcome))
                    continue
                _tag, payload, digest = outcome
                if corrupt:
                    payload = _corrupt_payload(payload)
                    corrupt = False
                if _digest(payload) != digest:
                    raise CorruptReplyError(
                        f"shard {shard} reply failed checksum "
                        "verification"
                    )
                checked.append((_OK, payload))
        except CorruptReplyError as exc:
            if self._supervisor.record_failure(shard, exc):
                raise
            self._supervisor.check(shard)
            raise  # pragma: no cover - check always raises here
        self._supervisor.record_success(shard)
        return checked

    def execute_fallback(
        self,
        shard: int,
        work: list[tuple[ExplanationRequest, float | None]],
    ) -> list[Outcome]:
        """Degraded-mode execution on a quarantine-exempt session."""
        with self._lock:
            session = self._fallback_sessions.get(shard)
            if session is None:
                session = CajadeSession(
                    self._db, self._graph, self.base_config
                )
                self._fallback_sessions[shard] = session
        outcomes = _execute_work(session, work)
        return [
            (_OK, outcome[1]) if outcome[0] == _OK else tuple(outcome)
            for outcome in outcomes
        ]
