"""Asyncio front-end: admission, coalescing, response cache, HTTP.

The request lifecycle (one ``submit()`` call):

1. **Cache probe** — the request is keyed by
   :func:`request_cache_key` — ``(query fingerprint, question repr,
   mining-config key)``.  Two requests with equal keys produce
   byte-identical canonical payloads (that is the session memo's
   contract), so a response cached under the key can be replayed
   verbatim.  The cache is a byte-bounded LRU
   (:class:`~repro.engine.trie.PrefixCache`) over canonical payload
   strings.
2. **Coalescing** — a miss whose key matches an *in-flight* computation
   awaits that computation's future instead of enqueueing a duplicate;
   N concurrent identical requests execute once and fan out.
3. **Scheduling** — a genuinely fresh request becomes a
   :class:`~repro.serving.scheduler.Ticket` on its fingerprint's shard
   queue; a per-shard drain task cuts locality-ordered batches and
   hands them to the backend (worker pool or inline session) via the
   event loop's executor, keeping at most one outstanding batch per
   shard.
4. **Fan-out** — when the batch returns, each payload resolves its
   ticket's future, populates the response cache, and wakes every
   coalesced waiter.

Responses carry the canonical payload (:func:`canonical_payload`): the
result's JSON with the volatile ``apt_cache`` engine counters removed,
key-sorted and compactly separated — the byte string that must be
identical whether the request was served cold, warm, coalesced, from
cache, or by a plain :class:`~repro.api.CajadeSession`.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from ..api.session import mining_config_key
from ..api.types import ExplanationRequest
from ..core.config import CajadeConfig
from ..core.explainer import ExplanationResult
from ..core.question import ComparisonQuestion, OutlierQuestion
from ..engine.trie import PrefixCache
from .metrics import ServiceStats
from .scheduler import Scheduler, Ticket


# ---------------------------------------------------------------------------
# Canonical payloads and cache keys
# ---------------------------------------------------------------------------


def canonical_payload(result: ExplanationResult) -> str:
    """The byte-identity form of one explanation result.

    Strips ``apt_cache`` (per-request engine counters — legitimately
    different between a cold run and a warm one) and re-serializes with
    sorted keys and compact separators, so equality of these strings is
    equality of the *explanations*, not of the execution path.
    """
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def request_cache_key(
    request: ExplanationRequest, base: CajadeConfig
) -> tuple:
    """The coalescing/response-cache identity of a request.

    Same key ⇒ byte-identical canonical payload: the fingerprint pins
    the parsed query, the question repr pins the tuples compared, and
    the mining-config key pins every config field that can influence
    output (performance-only knobs are excluded, which is exactly what
    lets a 1-worker and an 8-worker request share one cache entry).
    """
    return (
        request.fingerprint,
        repr(request.question),
        mining_config_key(request.config_for(base)),
    )


class _CachedPayload:
    """A response-cache entry; ``PrefixCache`` needs ``estimated_bytes``."""

    __slots__ = ("payload", "estimated_bytes")

    def __init__(self, payload: str):
        self.payload = payload
        # UTF-8 length plus object overhead; payloads are ASCII-heavy
        # JSON so len() is within a few bytes of the encoded size.
        self.estimated_bytes = len(payload) + 64


class ServiceError(RuntimeError):
    """A request failed inside the service (worker death, bad request)."""


@dataclass
class ServiceResponse:
    """What ``submit()`` resolves to."""

    payload: str  # canonical JSON string
    fingerprint: str
    source: str  # "cache" | "coalesced" | "executed"
    latency_seconds: float

    def to_dict(self) -> dict:
        return json.loads(self.payload)


class Backend(Protocol):
    """What the front-end needs from an execution backend."""

    num_shards: int
    base_config: CajadeConfig

    def start(self) -> None: ...

    def stop(self) -> None: ...

    def execute(
        self, shard: int, requests: list[ExplanationRequest]
    ) -> list[str]:
        """Run a locality-ordered batch, returning one canonical
        payload per request (blocking; called off the event loop)."""
        ...


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class ExplanationService:
    """Concurrent explanation serving over any :class:`Backend`."""

    def __init__(
        self,
        backend: Backend,
        response_cache_mb: float = 64.0,
        max_batch: int = 16,
    ):
        if response_cache_mb < 0:
            raise ValueError("response_cache_mb must be >= 0")
        self._backend = backend
        self._scheduler = Scheduler(
            num_shards=backend.num_shards, max_batch=max_batch
        )
        self._cache = PrefixCache(int(response_cache_mb * 1024 * 1024))
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._drains: dict[int, asyncio.Task] = {}
        self._seq = 0
        self._closed = False
        self.stats = ServiceStats(
            cache=self._cache, workers=backend.num_shards
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._backend.start()

    async def close(self) -> None:
        """Drain in-flight work, then stop the backend."""
        self._closed = True
        drains = [t for t in self._drains.values() if not t.done()]
        if drains:
            await asyncio.gather(*drains, return_exceptions=True)
        self._backend.stop()

    async def __aenter__(self) -> "ExplanationService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(self, request: ExplanationRequest) -> ServiceResponse:
        """Answer one request: cache hit, coalesce, or schedule."""
        if self._closed:
            raise ServiceError("service is closed")
        start = time.perf_counter()
        self.stats.admitted()
        key = request_cache_key(request, self._backend.base_config)

        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hit()
            return self._resolved(
                request, cached.payload, "cache", start
            )
        self.stats.cache_miss()

        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced()
            payload = await asyncio.shield(future)
            return self._resolved(request, payload, "coalesced", start)

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self._seq += 1
        ticket = Ticket(request=request, key=key, seq=self._seq)
        shard = self._scheduler.enqueue(ticket)
        self.stats.observe_depth(self._scheduler.depth)
        self._kick(shard)
        payload = await asyncio.shield(future)
        return self._resolved(request, payload, "executed", start)

    def _resolved(
        self,
        request: ExplanationRequest,
        payload: str,
        source: str,
        start: float,
    ) -> ServiceResponse:
        latency = time.perf_counter() - start
        self.stats.observe_latency(latency, source)
        return ServiceResponse(
            payload=payload,
            fingerprint=request.fingerprint,
            source=source,
            latency_seconds=latency,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _kick(self, shard: int) -> None:
        """Ensure a drain task is running for the shard."""
        task = self._drains.get(shard)
        if task is not None and not task.done():
            return
        self._drains[shard] = asyncio.get_running_loop().create_task(
            self._drain(shard)
        )

    async def _drain(self, shard: int) -> None:
        """Cut and execute batches until the shard's queue is empty.

        One drain task per shard ⇒ at most one outstanding batch per
        shard; requests queued while a batch runs ride the next cut.
        """
        loop = asyncio.get_running_loop()
        while True:
            batch = self._scheduler.take_batch(shard)
            if not batch:
                return
            self.stats.batch_dispatched()
            requests = [t.request for t in batch]
            try:
                payloads = await loop.run_in_executor(
                    None, self._backend.execute, shard, requests
                )
                if len(payloads) != len(batch):
                    raise ServiceError(
                        f"backend returned {len(payloads)} payloads "
                        f"for a batch of {len(batch)}"
                    )
            except Exception as exc:
                for ticket in batch:
                    future = self._inflight.pop(ticket.key, None)
                    if future is not None and not future.done():
                        future.set_exception(
                            ServiceError(
                                f"shard {shard} failed: {exc}"
                            )
                        )
                continue
            for ticket, payload in zip(batch, payloads):
                self._cache.put(ticket.key, _CachedPayload(payload))
                future = self._inflight.pop(ticket.key, None)
                if future is not None and not future.done():
                    future.set_result(payload)


# ---------------------------------------------------------------------------
# JSON request construction (HTTP boundary)
# ---------------------------------------------------------------------------


def question_from_json(
    data: Mapping
) -> ComparisonQuestion | OutlierQuestion:
    """Build a question from its wire form.

    ``{"primary": {...}, "secondary": {...}}`` → comparison;
    ``{"target": {...}}`` → outlier.  An explicit ``"type"`` field
    (``"comparison"`` / ``"outlier"``) is honored when present.
    """
    kind = data.get("type")
    if kind == "comparison" or (
        kind is None and "primary" in data and "secondary" in data
    ):
        return ComparisonQuestion(
            primary=dict(data["primary"]),
            secondary=dict(data["secondary"]),
        )
    if kind == "outlier" or (kind is None and "target" in data):
        return OutlierQuestion(target=dict(data["target"]))
    raise ValueError(
        "question must carry primary+secondary (comparison) or "
        "target (outlier)"
    )


def request_from_json(data: Mapping) -> ExplanationRequest:
    """Build an :class:`ExplanationRequest` from a POST /explain body."""
    if "sql" not in data:
        raise ValueError("request body must carry 'sql'")
    if "question" not in data:
        raise ValueError("request body must carry 'question'")
    return ExplanationRequest(
        sql=data["sql"],
        question=question_from_json(data["question"]),
        top_k=data.get("top_k"),
        max_join_edges=data.get("max_join_edges"),
        f1_sample_rate=data.get("f1_sample_rate"),
        workers=data.get("workers"),
        overrides=tuple(sorted(dict(data.get("overrides", {})).items())),
    )


# ---------------------------------------------------------------------------
# Minimal stdlib HTTP server (asyncio streams, no new dependencies)
# ---------------------------------------------------------------------------

_MAX_BODY = 4 * 1024 * 1024


def _http_response(
    status: str,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    headers = [
        f"HTTP/1.1 {status}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    headers.append("\r\n")
    return "\r\n".join(headers).encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ServiceError(f"malformed request line {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise ServiceError(f"request body of {length} bytes is too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def _handle_connection(
    service: ExplanationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except ServiceError as exc:
                writer.write(_http_response(
                    "400 Bad Request",
                    json.dumps({"error": str(exc)}).encode(),
                ))
                break
            if parsed is None:
                break
            method, path, headers, body = parsed
            close_after = headers.get("connection", "").lower() == "close"
            writer.write(await _route(service, method, path, body))
            await writer.drain()
            if close_after:
                break
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass


async def _route(
    service: ExplanationService, method: str, path: str, body: bytes
) -> bytes:
    if method == "GET" and path == "/stats":
        snapshot = json.dumps(service.stats.snapshot()).encode()
        return _http_response("200 OK", snapshot)
    if method == "POST" and path == "/explain":
        try:
            request = request_from_json(json.loads(body or b"{}"))
        except (ValueError, TypeError, KeyError) as exc:
            return _http_response(
                "400 Bad Request",
                json.dumps({"error": str(exc)}).encode(),
            )
        try:
            response = await service.submit(request)
        except ServiceError as exc:
            return _http_response(
                "500 Internal Server Error",
                json.dumps({"error": str(exc)}).encode(),
            )
        return _http_response(
            "200 OK",
            response.payload.encode(),
            extra_headers={
                "X-Cajade-Source": response.source,
                "X-Cajade-Fingerprint": response.fingerprint,
                "X-Cajade-Latency-Ms": (
                    f"{response.latency_seconds * 1e3:.3f}"
                ),
            },
        )
    return _http_response(
        "404 Not Found", json.dumps({"error": f"no route {path}"}).encode()
    )


async def serve_http(
    service: ExplanationService, host: str = "127.0.0.1", port: int = 8321
) -> asyncio.AbstractServer:
    """Expose the service over HTTP: POST /explain, GET /stats.

    Returns the listening server; callers own its lifecycle
    (``server.close()`` + ``await server.wait_closed()``).
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)
