"""Asyncio front-end: admission, coalescing, caching, retries, HTTP.

The request lifecycle (one ``submit()`` call):

1. **Cache probe** — the request is keyed by
   :func:`request_cache_key` — ``(query fingerprint, question repr,
   mining-config key)``.  Two requests with equal keys produce
   byte-identical canonical payloads (that is the session memo's
   contract), so a response cached under the key can be replayed
   verbatim.  The cache is a byte-bounded LRU
   (:class:`~repro.engine.trie.PrefixCache`) over canonical payload
   strings.
2. **Coalescing** — a miss whose key matches an *in-flight* computation
   awaits that computation's future instead of enqueueing a duplicate;
   N concurrent identical requests execute once and fan out.
3. **Admission control** — a genuinely fresh request is admitted only
   if its shard queue is below ``max_queue_depth`` and the total
   backlog below ``max_in_flight``; otherwise it fast-fails with a
   structured 429 carrying a ``Retry-After`` estimate (cache hits and
   coalesced joins are never shed — they add no backend work).
4. **Scheduling** — the admitted request becomes a
   :class:`~repro.serving.scheduler.Ticket` (carrying its deadline and
   attempt count) on its fingerprint's shard queue; a per-shard drain
   task cuts locality-ordered batches and hands them to the backend
   via the event loop's executor, keeping at most one outstanding
   batch per shard.
5. **Settlement** — the backend returns one *outcome* per request:
   ``("ok", payload)`` resolves the ticket and populates the response
   cache; ``("error", kind, message)`` resolves it with the matching
   :class:`ServiceError` (deterministic errors are **never** retried).
   A retryable batch failure (worker death, corrupt reply) re-enqueues
   each ticket with exponential backoff + seeded jitter, up to
   ``max_retries`` and within the ticket's deadline budget.  A
   quarantined shard degrades to the backend's inline fallback (still
   byte-identical, just slower) or fast-fails 503, per
   ``degraded_mode``.

Responses carry the canonical payload (:func:`canonical_payload`): the
result's JSON with the volatile ``apt_cache`` engine counters removed,
key-sorted and compactly separated — the byte string that must be
identical whether the request was served cold, warm, coalesced, from
cache, after a worker restart, or by a plain
:class:`~repro.api.CajadeSession`.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import time
from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from ..api.session import mining_config_key
from ..api.types import ExplanationRequest
from ..core.config import CajadeConfig
from ..core.explainer import ExplanationResult
from ..core.question import ComparisonQuestion, OutlierQuestion
from ..engine.trie import PrefixCache
from .metrics import ServiceStats
from .scheduler import QueueFullError, Scheduler, Ticket


# ---------------------------------------------------------------------------
# Canonical payloads and cache keys
# ---------------------------------------------------------------------------


def canonical_payload(result: ExplanationResult) -> str:
    """The byte-identity form of one explanation result.

    Strips ``apt_cache`` (per-request engine counters — legitimately
    different between a cold run and a warm one) and re-serializes with
    sorted keys and compact separators, so equality of these strings is
    equality of the *explanations*, not of the execution path.
    """
    payload = json.loads(result.to_json())
    payload.pop("apt_cache", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def request_cache_key(
    request: ExplanationRequest, base: CajadeConfig
) -> tuple:
    """The coalescing/response-cache identity of a request.

    Same key ⇒ byte-identical canonical payload: the fingerprint pins
    the parsed query, the question repr pins the tuples compared, and
    the mining-config key pins every config field that can influence
    output (performance-only knobs are excluded, which is exactly what
    lets a 1-worker and an 8-worker request share one cache entry).
    """
    return (
        request.fingerprint,
        repr(request.question),
        mining_config_key(request.config_for(base)),
    )


class _CachedPayload:
    """A response-cache entry; ``PrefixCache`` needs ``estimated_bytes``."""

    __slots__ = ("payload", "estimated_bytes")

    def __init__(self, payload: str):
        self.payload = payload
        # UTF-8 length plus object overhead; payloads are ASCII-heavy
        # JSON so len() is within a few bytes of the encoded size.
        self.estimated_bytes = len(payload) + 64


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class ServiceError(RuntimeError):
    """A request failed inside the service.

    The base class is *deterministic* (``retryable = False``): retrying
    an identical request would fail identically, so neither the server
    nor the client should.  Subclasses carry an HTTP status, a stable
    machine-readable ``kind`` for structured error bodies, and — for
    transient conditions — a ``retry_after`` hint in seconds.
    """

    status = 500
    kind = "internal"
    retryable = False

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class BadRequestError(ServiceError):
    """The request itself is malformed (HTTP 400)."""

    status = 400
    kind = "bad-request"


class DeadlineExceededError(ServiceError):
    """The request's deadline budget ran out (HTTP 504).

    Not retryable server-side: the budget is spent by definition.
    """

    status = 504
    kind = "deadline-exceeded"


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request (HTTP 429 + Retry-After)."""

    status = 429
    kind = "overloaded"


class WorkerDiedError(ServiceError):
    """A worker process died mid-batch — transient, retryable (503)."""

    status = 503
    kind = "worker-died"
    retryable = True


class CorruptReplyError(ServiceError):
    """A reply failed checksum verification — transient, retryable."""

    status = 503
    kind = "corrupt-reply"
    retryable = True


class ShardQuarantinedError(ServiceError):
    """The shard crash-looped past its restart budget (HTTP 503)."""

    status = 503
    kind = "quarantined"


@dataclass
class ServiceResponse:
    """What ``submit()`` resolves to."""

    payload: str  # canonical JSON string
    fingerprint: str
    source: str  # "cache" | "coalesced" | "executed" | "degraded"
    latency_seconds: float

    def to_dict(self) -> dict:
        return json.loads(self.payload)


# Per-request outcomes a backend returns: ("ok", payload) or
# ("error", kind, message) with kind in {"deterministic", "timeout"}.
Outcome = tuple


class Backend(Protocol):
    """What the front-end needs from an execution backend."""

    num_shards: int
    base_config: CajadeConfig

    def start(self) -> None: ...

    def stop(self) -> None: ...

    def execute(
        self,
        shard: int,
        work: list[tuple[ExplanationRequest, float | None]],
    ) -> list[Outcome]:
        """Run a locality-ordered batch of ``(request, deadline_epoch)``
        pairs, returning one outcome per request (blocking; called off
        the event loop).  Raises :class:`WorkerDiedError` /
        :class:`CorruptReplyError` for retryable batch failures,
        :class:`ShardQuarantinedError` once the shard is gone, and
        :class:`DeadlineExceededError` when the whole batch timed out."""
        ...


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class ExplanationService:
    """Concurrent explanation serving over any :class:`Backend`."""

    def __init__(
        self,
        backend: Backend,
        response_cache_mb: float = 64.0,
        max_batch: int = 16,
        request_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_seed: int = 0,
        max_queue_depth: int | None = 64,
        max_in_flight: int | None = 256,
        degraded_mode: str = "inline",
    ):
        if response_cache_mb < 0:
            raise ValueError("response_cache_mb must be >= 0")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if degraded_mode not in ("inline", "error"):
            raise ValueError("degraded_mode must be 'inline' or 'error'")
        self._backend = backend
        self._scheduler = Scheduler(
            num_shards=backend.num_shards,
            max_batch=max_batch,
            max_queue_depth=max_queue_depth,
        )
        self._cache = PrefixCache(int(response_cache_mb * 1024 * 1024))
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._drains: dict[int, asyncio.Task] = {}
        self._retry_tasks: set[asyncio.Task] = set()
        self._seq = 0
        self._closed = False
        self._request_timeout = request_timeout
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._retry_rng = random.Random(retry_seed)
        self._max_in_flight = max_in_flight
        self._degraded_mode = degraded_mode
        self.stats = ServiceStats(
            cache=self._cache,
            workers=backend.num_shards,
            health_provider=getattr(backend, "health", None),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._backend.start()

    async def close(self) -> None:
        """Drain in-flight work (including pending retries), then stop
        the backend."""
        self._closed = True
        while True:
            pending = [
                task
                for task in (*self._drains.values(), *self._retry_tasks)
                if not task.done()
            ]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        self._backend.stop()

    async def __aenter__(self) -> "ExplanationService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(
        self,
        request: ExplanationRequest,
        timeout: float | None = None,
    ) -> ServiceResponse:
        """Answer one request: cache hit, coalesce, shed, or schedule.

        ``timeout`` overrides the service's ``request_timeout`` for
        this request only; the resulting deadline budget covers the
        whole lifecycle — queueing, execution, and any retries.
        """
        if self._closed:
            raise ServiceError("service is closed")
        start = time.perf_counter()
        budget = timeout if timeout is not None else self._request_timeout
        deadline = (time.time() + budget) if budget else None
        self.stats.admitted()
        key = request_cache_key(request, self._backend.base_config)

        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hit()
            return self._resolved(
                request, cached.payload, "cache", start
            )
        self.stats.cache_miss()

        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced()
            payload, _source = await self._await_payload(
                future, deadline, budget
            )
            return self._resolved(request, payload, "coalesced", start)

        # Admission control: shed before creating any backend work.
        shard = self._scheduler.shard_of(request.fingerprint)
        if (
            self._max_in_flight is not None
            and self._scheduler.depth >= self._max_in_flight
        ):
            self.stats.shed()
            raise ServiceOverloadedError(
                f"service saturated ({self._scheduler.depth} requests "
                f"in flight >= max_in_flight={self._max_in_flight})",
                retry_after=self._retry_after_hint(),
            )

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._seq += 1
        ticket = Ticket(
            request=request, key=key, seq=self._seq, deadline=deadline
        )
        try:
            self._scheduler.enqueue(ticket)
        except QueueFullError as exc:
            self.stats.shed()
            raise ServiceOverloadedError(
                f"shard {shard} queue is full ({exc})",
                retry_after=self._retry_after_hint(),
            ) from None
        self._inflight[key] = future
        self.stats.observe_depth(self._scheduler.depth)
        self._kick(shard)
        payload, source = await self._await_payload(future, deadline, budget)
        return self._resolved(request, payload, source, start)

    async def _await_payload(
        self,
        future: asyncio.Future,
        deadline: float | None,
        budget: float | None,
    ) -> tuple[str, str]:
        """Wait for a ticket's future within this waiter's own budget.

        The future is shielded: a waiter timing out never cancels the
        shared computation other waiters (or the cache) still want.
        """
        shielded = asyncio.shield(future)
        if deadline is None:
            return await shielded
        remaining = deadline - time.time()
        try:
            return await asyncio.wait_for(shielded, max(0.0, remaining))
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded()
            raise DeadlineExceededError(
                f"request exceeded its {budget:g}s deadline budget"
            ) from None

    def _retry_after_hint(self) -> float:
        """How long a shed client should wait: roughly one batch."""
        return max(0.1, self.stats.last_batch_seconds)

    def _resolved(
        self,
        request: ExplanationRequest,
        payload: str,
        source: str,
        start: float,
    ) -> ServiceResponse:
        latency = time.perf_counter() - start
        self.stats.observe_latency(latency, source)
        return ServiceResponse(
            payload=payload,
            fingerprint=request.fingerprint,
            source=source,
            latency_seconds=latency,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _kick(self, shard: int) -> None:
        """Ensure a drain task is running for the shard."""
        task = self._drains.get(shard)
        if task is not None and not task.done():
            return
        self._drains[shard] = asyncio.get_running_loop().create_task(
            self._drain(shard)
        )

    async def _drain(self, shard: int) -> None:
        """Cut and execute batches until the shard's queue is empty.

        One drain task per shard ⇒ at most one outstanding batch per
        shard; requests queued while a batch runs ride the next cut.
        """
        loop = asyncio.get_running_loop()
        while True:
            batch = self._scheduler.take_batch(shard)
            if not batch:
                return
            now = time.time()
            live: list[Ticket] = []
            for ticket in batch:
                if ticket.deadline is not None and ticket.deadline <= now:
                    # Shed expired work before it wastes a worker.
                    self.stats.deadline_exceeded()
                    self._resolve_error(
                        ticket,
                        DeadlineExceededError(
                            "deadline expired while queued"
                        ),
                    )
                else:
                    live.append(ticket)
            if not live:
                continue
            self.stats.batch_dispatched()
            work = [(t.request, t.deadline) for t in live]
            t0 = time.perf_counter()
            try:
                outcomes = await loop.run_in_executor(
                    None, self._backend.execute, shard, work
                )
                if len(outcomes) != len(live):
                    raise ServiceError(
                        f"backend returned {len(outcomes)} outcomes "
                        f"for a batch of {len(live)}"
                    )
            except ShardQuarantinedError as exc:
                await self._degrade(shard, live, exc)
                continue
            except DeadlineExceededError as exc:
                for ticket in live:
                    self.stats.deadline_exceeded()
                    self._resolve_error(ticket, exc)
                continue
            except ServiceError as exc:
                if exc.retryable:
                    self._retry_or_fail(live, exc)
                else:
                    for ticket in live:
                        self._resolve_error(ticket, exc)
                continue
            except Exception as exc:  # unknown backend failure
                error = ServiceError(
                    f"shard {shard} failed: {type(exc).__name__}: {exc}"
                )
                for ticket in live:
                    self._resolve_error(ticket, error)
                continue
            self.stats.last_batch_seconds = time.perf_counter() - t0
            for ticket, outcome in zip(live, outcomes):
                self._settle(ticket, outcome, "executed")

    def _settle(
        self, ticket: Ticket, outcome: Outcome, source: str
    ) -> None:
        """Resolve one ticket from a backend outcome."""
        if outcome[0] == "ok":
            payload = outcome[1]
            self._cache.put(ticket.key, _CachedPayload(payload))
            future = self._inflight.pop(ticket.key, None)
            if future is not None and not future.done():
                future.set_result((payload, source))
            return
        _tag, kind, message = outcome
        if kind == "timeout":
            self.stats.deadline_exceeded()
            self._resolve_error(ticket, DeadlineExceededError(message))
        else:
            # Deterministic failure: retrying would fail identically.
            self._resolve_error(ticket, ServiceError(message))

    def _resolve_error(self, ticket: Ticket, exc: ServiceError) -> None:
        future = self._inflight.pop(ticket.key, None)
        if future is not None and not future.done():
            self.stats.failed()
            future.set_exception(exc)
            # Every waiter may already have timed out of its own
            # budget; mark the exception retrieved so an unobserved
            # future does not warn at garbage collection.
            future.exception()

    def _retry_or_fail(
        self, tickets: list[Ticket], exc: ServiceError
    ) -> None:
        """Re-enqueue retryable tickets with backoff; fail the rest."""
        loop = asyncio.get_running_loop()
        for ticket in tickets:
            delay = (
                self._retry_backoff
                * (2 ** ticket.attempts)
                * (1.0 + self._retry_rng.random())
            )
            budget_ok = (
                ticket.deadline is None
                or ticket.deadline > time.time() + delay
            )
            if ticket.attempts >= self._max_retries or not budget_ok:
                self._resolve_error(ticket, exc)
                continue
            ticket.attempts += 1
            self.stats.retried()
            task = loop.create_task(self._requeue_later(ticket, delay))
            self._retry_tasks.add(task)
            task.add_done_callback(self._retry_tasks.discard)

    async def _requeue_later(self, ticket: Ticket, delay: float) -> None:
        await asyncio.sleep(delay)
        try:
            shard = self._scheduler.enqueue(ticket)
        except QueueFullError:
            self.stats.shed()
            self._resolve_error(
                ticket,
                ServiceOverloadedError(
                    "queue full on retry",
                    retry_after=self._retry_after_hint(),
                ),
            )
            return
        self._kick(shard)

    async def _degrade(
        self, shard: int, tickets: list[Ticket], exc: ServiceError
    ) -> None:
        """A quarantined shard: inline fallback or structured 503."""
        fallback = getattr(self._backend, "execute_fallback", None)
        if self._degraded_mode != "inline" or fallback is None:
            for ticket in tickets:
                self._resolve_error(ticket, exc)
            return
        self.stats.degraded(len(tickets))
        work = [(t.request, t.deadline) for t in tickets]
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                None, fallback, shard, work
            )
        except Exception as fallback_exc:
            error = ServiceError(
                f"degraded execution for shard {shard} failed: "
                f"{type(fallback_exc).__name__}: {fallback_exc}"
            )
            for ticket in tickets:
                self._resolve_error(ticket, error)
            return
        for ticket, outcome in zip(tickets, outcomes):
            self._settle(ticket, outcome, "degraded")


# ---------------------------------------------------------------------------
# JSON request construction (HTTP boundary)
# ---------------------------------------------------------------------------


def question_from_json(
    data: Mapping
) -> ComparisonQuestion | OutlierQuestion:
    """Build a question from its wire form.

    ``{"primary": {...}, "secondary": {...}}`` → comparison;
    ``{"target": {...}}`` → outlier.  An explicit ``"type"`` field
    (``"comparison"`` / ``"outlier"``) is honored when present.
    """
    kind = data.get("type")
    if kind == "comparison" or (
        kind is None and "primary" in data and "secondary" in data
    ):
        return ComparisonQuestion(
            primary=dict(data["primary"]),
            secondary=dict(data["secondary"]),
        )
    if kind == "outlier" or (kind is None and "target" in data):
        return OutlierQuestion(target=dict(data["target"]))
    raise ValueError(
        "question must carry primary+secondary (comparison) or "
        "target (outlier)"
    )


def request_from_json(data: Mapping) -> ExplanationRequest:
    """Build an :class:`ExplanationRequest` from a POST /explain body."""
    if "sql" not in data:
        raise ValueError("request body must carry 'sql'")
    if "question" not in data:
        raise ValueError("request body must carry 'question'")
    return ExplanationRequest(
        sql=data["sql"],
        question=question_from_json(data["question"]),
        top_k=data.get("top_k"),
        max_join_edges=data.get("max_join_edges"),
        f1_sample_rate=data.get("f1_sample_rate"),
        workers=data.get("workers"),
        overrides=tuple(sorted(dict(data.get("overrides", {})).items())),
    )


def timeout_from_json(data: Mapping) -> float | None:
    """The optional per-request ``timeout_seconds`` of a POST body."""
    timeout = data.get("timeout_seconds")
    if timeout is None:
        return None
    timeout = float(timeout)
    if timeout <= 0:
        raise ValueError("timeout_seconds must be positive")
    return timeout


# ---------------------------------------------------------------------------
# Minimal stdlib HTTP server (asyncio streams, no new dependencies)
# ---------------------------------------------------------------------------

_MAX_BODY = 4 * 1024 * 1024

_STATUS_LINES = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
    504: "504 Gateway Timeout",
}


def _http_response(
    status: str,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    headers = [
        f"HTTP/1.1 {status}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    headers.append("\r\n")
    return "\r\n".join(headers).encode("ascii") + body


def _error_response(
    exc: ServiceError, fingerprint: str | None = None
) -> bytes:
    """A structured JSON error with the right status and headers.

    Every error body carries ``error`` (human message), ``kind`` (a
    stable machine-readable slug), ``status``, and ``retryable``;
    transient conditions add ``Retry-After``, and the fingerprint
    header rides along whenever the request parsed far enough to have
    one — so a client's error handling can key off the same identity
    as its success path.
    """
    status = _STATUS_LINES.get(exc.status, _STATUS_LINES[500])
    payload: dict[str, Any] = {
        "error": str(exc),
        "kind": exc.kind,
        "status": exc.status,
        "retryable": bool(exc.retryable or exc.status in (429, 503)),
    }
    headers: dict[str, str] = {}
    if exc.retry_after is not None:
        payload["retry_after_seconds"] = round(exc.retry_after, 3)
        headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
    if fingerprint:
        headers["X-Cajade-Fingerprint"] = fingerprint
    return _http_response(
        status, json.dumps(payload).encode(), extra_headers=headers
    )


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; None on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise BadRequestError(f"malformed request line {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise BadRequestError(
            f"request body of {length} bytes is too large"
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def _handle_connection(
    service: ExplanationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except ServiceError as exc:
                writer.write(_error_response(exc))
                break
            if parsed is None:
                break
            method, path, headers, body = parsed
            close_after = headers.get("connection", "").lower() == "close"
            writer.write(await _route(service, method, path, body))
            await writer.drain()
            if close_after:
                break
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass


async def _route(
    service: ExplanationService, method: str, path: str, body: bytes
) -> bytes:
    if method == "GET" and path == "/stats":
        snapshot = json.dumps(service.stats.snapshot()).encode()
        return _http_response("200 OK", snapshot)
    if method == "POST" and path == "/explain":
        fingerprint: str | None = None
        try:
            data = json.loads(body or b"{}")
            request = request_from_json(data)
            fingerprint = request.fingerprint
            timeout = timeout_from_json(data)
        except (ValueError, TypeError, KeyError) as exc:
            return _error_response(
                BadRequestError(str(exc)), fingerprint
            )
        try:
            response = await service.submit(request, timeout=timeout)
        except ServiceError as exc:
            return _error_response(exc, fingerprint)
        return _http_response(
            "200 OK",
            response.payload.encode(),
            extra_headers={
                "X-Cajade-Source": response.source,
                "X-Cajade-Fingerprint": response.fingerprint,
                "X-Cajade-Latency-Ms": (
                    f"{response.latency_seconds * 1e3:.3f}"
                ),
            },
        )
    return _http_response(
        "404 Not Found", json.dumps({"error": f"no route {path}"}).encode()
    )


async def serve_http(
    service: ExplanationService, host: str = "127.0.0.1", port: int = 8321
) -> asyncio.AbstractServer:
    """Expose the service over HTTP: POST /explain, GET /stats.

    Returns the listening server; callers own its lifecycle
    (``server.close()`` + ``await server.wait_closed()``).
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)
