"""Deterministic fault injection for the serving stack.

Every failure path the supervisor, retry, and admission machinery
handle must be reproducibly testable in CI — "kill a worker and hope"
is not a test.  A :class:`FaultPlan` is a small, picklable, seeded
script of :class:`FaultRule`\\s that the backends consult at well-defined
points:

- the parent consults :meth:`FaultPlan.admit` once per batch it is
  about to dispatch, advancing a per-shard *request counter* (one tick
  per request in the batch, retries included — so ``every=3`` fires on
  the 3rd, 6th, ... request the shard is asked to execute, whatever
  batches they arrive in);
- a spawning worker consults :meth:`FaultPlan.startup_crash` with its
  *incarnation* number (1 for the first spawn, 2 for the first
  restart, ...) before sending its ready handshake.

Fault kinds:

``KILL``
    SIGKILL the shard's worker immediately before dispatching the
    batch (the inline backend drops the shard's session instead) —
    exercises death detection, batch requeue, respawn, and retry.
``DELAY``
    Sleep ``delay_seconds`` before dispatch — exercises deadline
    budgets and queue back-pressure.
``CORRUPT``
    Flip a byte of one reply payload *after* the worker computed its
    checksum — exercises reply verification and retry.
``STARTUP_CRASH``
    The worker exits before its ready handshake — exercises
    ``pool.start()`` partial-failure cleanup and crash-loop
    quarantine.

Rule matching is a pure function of the counters, so the same plan
driven by the same request sequence injects exactly the same faults —
in a unit test, in the chaos benchmark, and in CI.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

KILL = "kill"
DELAY = "delay"
CORRUPT = "corrupt"
STARTUP_CRASH = "startup-crash"

_KINDS = frozenset({KILL, DELAY, CORRUPT, STARTUP_CRASH})


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault.

    ``shard=None`` matches every shard.  ``at`` fires on exactly that
    counter value (1-based); ``every`` fires on every multiple of it;
    ``times`` caps total firings per shard (``None`` = unlimited).  For
    ``STARTUP_CRASH`` the counter is the shard's spawn incarnation, for
    everything else the shard's executed-request counter.
    """

    kind: str
    shard: int | None = None
    at: int | None = None
    every: int | None = None
    times: int | None = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at is None and self.every is None:
            raise ValueError("a FaultRule needs 'at' or 'every'")
        if self.at is not None and self.at < 1:
            raise ValueError("'at' is 1-based")
        if self.every is not None and self.every < 1:
            raise ValueError("'every' must be >= 1")

    def _matches(self, tick: int) -> bool:
        if self.at is not None and tick == self.at:
            return True
        return self.every is not None and tick % self.every == 0

    def _firings_before(self, tick: int) -> int:
        """How many times this rule fired on ticks ``<= tick`` (pure)."""
        fired = 0
        if self.at is not None and self.at <= tick:
            fired += 1
        if self.every is not None:
            fired += tick // self.every
        return fired


class FaultPlan:
    """A seeded, deterministic script of faults to inject.

    The plan itself is stateful only in its per-shard counters (and the
    thread lock guarding them); rule matching is pure, so a pickled
    copy shipped to a spawned worker answers :meth:`startup_crash`
    identically to the parent's copy.  ``seed`` is carried for
    provenance (benchmarks record it next to their results) and for
    helpers that derive rule placements from it.
    """

    def __init__(self, rules: tuple[FaultRule, ...] | list[FaultRule] = (),
                 seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._request_counts: dict[int, int] = {}
        self._fired: dict[int, int] = {}  # rule index -> total firings

    # -- construction helpers -------------------------------------------
    @classmethod
    def kill_every(cls, n: int, times: int | None = None,
                   seed: int = 0) -> "FaultPlan":
        """Kill each shard's worker on every ``n``-th executed request."""
        return cls((FaultRule(kind=KILL, every=n, times=times),), seed=seed)

    # -- parent-side: per-batch consultation ----------------------------
    def admit(self, shard: int, num_requests: int) -> list[FaultRule]:
        """Advance ``shard``'s request counter by ``num_requests``;
        return the rules that fire somewhere in that window (each rule
        at most once per batch — a worker can only die once)."""
        with self._lock:
            start = self._request_counts.get(shard, 0)
            end = start + num_requests
            self._request_counts[shard] = end
            actions: list[FaultRule] = []
            for index, rule in enumerate(self.rules):
                if rule.kind == STARTUP_CRASH:
                    continue
                if rule.shard is not None and rule.shard != shard:
                    continue
                hit = any(
                    rule._matches(tick) for tick in range(start + 1, end + 1)
                )
                if not hit:
                    continue
                if rule.times is not None and self._fired.get(index, 0) >= rule.times:
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                actions.append(rule)
            return actions

    # -- worker-side: pure incarnation check ----------------------------
    def startup_crash(self, shard: int, incarnation: int) -> bool:
        """Should the ``incarnation``-th spawn of ``shard`` crash before
        its ready handshake?  Pure — safe to answer from a pickled copy
        in the child process."""
        for rule in self.rules:
            if rule.kind != STARTUP_CRASH:
                continue
            if rule.shard is not None and rule.shard != shard:
                continue
            if not rule._matches(incarnation):
                continue
            if rule.times is not None and rule._firings_before(incarnation) > rule.times:
                continue
            return True
        return False

    # -- reporting -------------------------------------------------------
    @property
    def fired_total(self) -> int:
        with self._lock:
            return sum(self._fired.values())

    def describe(self) -> dict:
        """A JSON-ready identity for benchmark provenance."""
        return {
            "seed": self.seed,
            "rules": [
                {
                    "kind": r.kind,
                    "shard": r.shard,
                    "at": r.at,
                    "every": r.every,
                    "times": r.times,
                    "delay_seconds": r.delay_seconds,
                }
                for r in self.rules
            ],
            "fired": self.fired_total,
        }

    # Pickle support: the lock is per-process state.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
