"""Parent-side supervision state for the sharded worker backends.

Each shard moves through a three-state machine:

```
              failure (death, failed handshake, corrupt reply)
   ┌─────────┐ ───────────────────────────────────────► ┌────────────┐
   │ HEALTHY │                                          │ RESTARTING │
   └─────────┘ ◄─────────────────────────────────────── └────────────┘
        ▲          successful batch (resets the streak)       │
        │                                                     │
        │          consecutive failures > max_restarts        ▼
        │                                              ┌─────────────┐
        └───────────────── (terminal) ────────────────►│ QUARANTINED │
                                                       └─────────────┘
```

The supervisor only *decides*; the backend owning the processes does
the respawning.  ``max_restarts`` bounds **consecutive** failures — a
successful batch resets the streak, so a worker that is killed every
few hundred requests restarts forever, while a crash-looping shard
(e.g. one whose startup deterministically fails) is quarantined after
``max_restarts + 1`` straight failures.  Quarantine is terminal for the
backend's lifetime: requests for that shard either degrade to an
inline in-parent execution or fast-fail with a structured 503,
per the front-end's ``degraded_mode``.

All methods are thread-safe: failures are recorded from executor
threads while ``snapshot()`` is read from the event loop for
``GET /stats``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .frontend import ShardQuarantinedError

HEALTHY = "healthy"
RESTARTING = "restarting"
QUARANTINED = "quarantined"


@dataclass
class ShardHealth:
    """One shard's supervision record (mutated under the supervisor lock)."""

    shard: int
    state: str = HEALTHY
    restarts: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    last_error: str = ""

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "state": self.state,
            "restarts": self.restarts,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class ShardSupervisor:
    """Tracks per-shard health and the restart/quarantine decision."""

    def __init__(self, num_shards: int, max_restarts: int = 3):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.max_restarts = max_restarts
        self._shards = [ShardHealth(shard) for shard in range(num_shards)]
        self._lock = threading.Lock()

    def check(self, shard: int) -> None:
        """Raise :class:`ShardQuarantinedError` if the shard is gone."""
        with self._lock:
            health = self._shards[shard]
            if health.state == QUARANTINED:
                raise ShardQuarantinedError(
                    f"shard {shard} is quarantined after "
                    f"{health.consecutive_failures} consecutive failures "
                    f"(last: {health.last_error})"
                )

    def record_failure(self, shard: int, error: BaseException | str) -> bool:
        """Record one failure; returns True when a restart is allowed,
        False when the shard just crossed into quarantine."""
        with self._lock:
            health = self._shards[shard]
            health.failures += 1
            health.consecutive_failures += 1
            health.last_error = str(error)
            if health.consecutive_failures > self.max_restarts:
                health.state = QUARANTINED
                return False
            health.state = RESTARTING
            return True

    def record_restart(self, shard: int) -> None:
        """A replacement worker came up (ready handshake succeeded)."""
        with self._lock:
            self._shards[shard].restarts += 1

    def record_success(self, shard: int) -> None:
        """A batch completed: the failure streak resets."""
        with self._lock:
            health = self._shards[shard]
            if health.state != QUARANTINED:
                health.state = HEALTHY
                health.consecutive_failures = 0

    # -- reporting -------------------------------------------------------
    def consecutive_failures(self, shard: int) -> int:
        with self._lock:
            return self._shards[shard].consecutive_failures

    @property
    def restarts_total(self) -> int:
        with self._lock:
            return sum(h.restarts for h in self._shards)

    @property
    def quarantined_shards(self) -> list[int]:
        with self._lock:
            return [h.shard for h in self._shards if h.state == QUARANTINED]

    def snapshot(self) -> dict:
        """A JSON-ready health view for ``GET /stats``."""
        with self._lock:
            return {
                "shards": [h.as_dict() for h in self._shards],
                "restarts": sum(h.restarts for h in self._shards),
                "failures": sum(h.failures for h in self._shards),
                "quarantined": [
                    h.shard for h in self._shards if h.state == QUARANTINED
                ],
            }
