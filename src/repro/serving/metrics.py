"""Service-level metrics: counters, gauges, and per-stage latency.

Reuses the :class:`~repro.core.timing.StepTimer` counter/gauge split —
admission, coalescing, cache hits, and batch counts accumulate; queue
depth is a high-water gauge.  Latency is tracked as raw per-request
seconds so the ``/stats`` endpoint and the bench can report p50/p99
without binning error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core import timing
from ..engine.trie import PrefixCache


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default method but avoids pulling
    the samples into an array for every ``/stats`` poll.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass
class ServiceStats:
    """Everything the ``/stats`` endpoint reports."""

    timer: timing.StepTimer = field(default_factory=timing.StepTimer)
    latencies: list[float] = field(default_factory=list)
    cache: PrefixCache | None = None
    workers: int = 0
    health_provider: Callable[[], dict] | None = None
    last_batch_seconds: float = 0.0
    _max_depth: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def admitted(self) -> None:
        self.timer.count(timing.SERVICE_REQUESTS)

    def coalesced(self) -> None:
        self.timer.count(timing.SERVICE_COALESCED)

    def cache_hit(self) -> None:
        self.timer.count(timing.SERVICE_CACHE_HITS)

    def cache_miss(self) -> None:
        self.timer.count(timing.SERVICE_CACHE_MISSES)

    def batch_dispatched(self) -> None:
        self.timer.count(timing.SERVICE_BATCHES)

    def retried(self) -> None:
        self.timer.count(timing.SERVICE_RETRIES)

    def shed(self) -> None:
        self.timer.count(timing.SERVICE_SHED)

    def deadline_exceeded(self) -> None:
        self.timer.count(timing.SERVICE_DEADLINE_EXCEEDED)

    def degraded(self, n: int = 1) -> None:
        self.timer.count(timing.SERVICE_DEGRADED, n)

    def failed(self) -> None:
        self.timer.count(timing.SERVICE_FAILURES)

    def observe_depth(self, depth: int) -> None:
        """Track the deepest backlog seen (high-water gauge)."""
        if depth > self._max_depth:
            self._max_depth = depth
            self.timer.set_gauge(timing.SERVICE_QUEUE_DEPTH, depth)

    def observe_latency(self, seconds: float, stage: str) -> None:
        """Record one finished request's end-to-end latency, attributed
        to the stage that resolved it (``cache`` / ``coalesced`` /
        ``executed`` / ``degraded``)."""
        self.latencies.append(seconds)
        self.timer.add(f"Service {stage}", seconds)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready view for the ``/stats`` endpoint."""
        counters = self.timer.counters()
        requests = counters.get(timing.SERVICE_REQUESTS, 0)
        hits = counters.get(timing.SERVICE_CACHE_HITS, 0)
        misses = counters.get(timing.SERVICE_CACHE_MISSES, 0)
        lookups = hits + misses
        failures = counters.get(timing.SERVICE_FAILURES, 0)
        completed = len(self.latencies)
        finished = completed + failures
        out = {
            "requests": requests,
            "coalesced": counters.get(timing.SERVICE_COALESCED, 0),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "batches": counters.get(timing.SERVICE_BATCHES, 0),
            "retries": counters.get(timing.SERVICE_RETRIES, 0),
            "shed": counters.get(timing.SERVICE_SHED, 0),
            "deadline_exceeded": counters.get(
                timing.SERVICE_DEADLINE_EXCEEDED, 0
            ),
            "degraded": counters.get(timing.SERVICE_DEGRADED, 0),
            "failures": failures,
            # Of the requests that finished (either way), the fraction
            # that resolved successfully — shed requests were never
            # admitted work, so they do not count against availability.
            "availability": (completed / finished) if finished else 1.0,
            "max_queue_depth": self._max_depth,
            "workers": self.workers,
            "completed": completed,
            "latency_p50_ms": percentile(self.latencies, 50.0) * 1e3,
            "latency_p99_ms": percentile(self.latencies, 99.0) * 1e3,
            "stage_seconds": {
                name: round(secs, 6)
                for name, secs in self.timer.breakdown().items()
            },
        }
        if self.cache is not None:
            # entries/median are point-in-time gauges; refresh them the
            # way the engine does before reading its cache stats.
            self.cache.stats.entries = len(self.cache)
            self.cache.stats.median_entry_bytes = (
                self.cache.median_entry_bytes()
            )
            cache_view = self.cache.stats.as_dict()
            cache_view["capacity_bytes"] = self.cache.capacity_bytes
            out["response_cache"] = cache_view
        if self.health_provider is not None:
            out["health"] = self.health_provider()
        return out
