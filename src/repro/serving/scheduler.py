"""Request batching and deterministic fingerprint sharding.

The scheduler sits between the asyncio front-end and the worker pool.
It owns two decisions:

- **Which worker?**  :func:`shard_for` maps a query fingerprint to a
  shard by hashing the fingerprint itself (the hex digest is already a
  blake2b hash, so its leading 64 bits are uniformly distributed).  The
  mapping is a pure function of ``(fingerprint, num_shards)``, so every
  request against the same SQL lands on the same persistent worker —
  whose :class:`~repro.api.CajadeSession` therefore accumulates the
  parsed query, provenance table, warm materialization trie, and mining
  memo for exactly its own fingerprints.

- **Which order?**  Within one dispatch, queued requests for a shard
  are grouped by fingerprint then question (:func:`locality_order`, the
  same ordering contract as ``CajadeSession.explain_batch``), so a
  worker finishes all trie reuse for one query before moving to the
  next, instead of thrashing between engines.

Batches are cut by :meth:`Scheduler.take_batch`, which drains up to
``max_batch`` queued tickets for one shard.  The front-end enforces at
most one outstanding batch per shard, so a long batch on shard 0 never
blocks dispatch to shard 1.

Queues are *bounded* (``max_queue_depth``): :meth:`Scheduler.enqueue`
raises :class:`QueueFullError` when a shard's backlog is at capacity,
which the front-end translates into a structured 429 — load shedding
is a server-side admission decision here, not a client courtesy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..api.types import ExplanationRequest


def shard_for(fingerprint: str, num_shards: int) -> int:
    """Deterministically map a query fingerprint to a shard index."""
    if num_shards <= 0:
        raise ValueError("num_shards must be >= 1")
    return int(fingerprint[:16], 16) % num_shards


class QueueFullError(Exception):
    """A shard's queue is at ``max_queue_depth``; the ticket was not
    enqueued.  The front-end maps this to a 429 with Retry-After."""


@dataclass
class Ticket:
    """One admitted request travelling through the scheduler.

    ``key`` is the response-cache key (fingerprint, question repr,
    mining-config key); every ticket with the same key resolves to the
    same payload, and the front-end coalesces them onto one ticket
    before enqueueing.  ``deadline`` is an absolute ``time.time()``
    epoch the whole lifecycle (queueing, execution, retries) must fit
    inside (``None`` = no budget); ``attempts`` counts completed
    retries for the front-end's bounded-retry policy.  ``context`` is
    an opaque front-end cookie the scheduler never inspects.
    """

    request: ExplanationRequest
    key: tuple
    seq: int
    deadline: float | None = None
    attempts: int = 0
    context: Any = None

    @property
    def fingerprint(self) -> str:
        return self.request.fingerprint


def locality_order(tickets: list[Ticket]) -> list[Ticket]:
    """Sort a batch for trie locality: fingerprint, then question.

    Mirrors ``explain_batch``'s grouping (first-seen fingerprint rank,
    then first-seen question rank, then admission order) so the worker's
    per-query engine and mining memo see maximal consecutive reuse.
    """
    fp_rank: dict[str, int] = {}
    question_rank: dict[tuple[str, str], int] = {}
    keyed: list[tuple[int, int, int, Ticket]] = []
    for ticket in tickets:
        fp = ticket.fingerprint
        fp_rank.setdefault(fp, len(fp_rank))
        qkey = (fp, repr(ticket.request.question))
        question_rank.setdefault(qkey, len(question_rank))
        keyed.append((fp_rank[fp], question_rank[qkey], ticket.seq, ticket))
    keyed.sort(key=lambda item: item[:3])
    return [item[3] for item in keyed]


@dataclass
class Scheduler:
    """Per-shard FIFO queues with locality-ordered batch draining."""

    num_shards: int
    max_batch: int = 16
    max_queue_depth: int | None = None
    _queues: list[deque[Ticket]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be >= 1")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        self._queues = [deque() for _ in range(self.num_shards)]

    def shard_of(self, fingerprint: str) -> int:
        """The shard a fingerprint routes to (admission pre-check)."""
        return shard_for(fingerprint, self.num_shards)

    def enqueue(self, ticket: Ticket) -> int:
        """Queue a ticket on its fingerprint's shard; returns the shard.

        Raises :class:`QueueFullError` when the shard's backlog is at
        ``max_queue_depth`` — the ticket is *not* enqueued.
        """
        shard = shard_for(ticket.fingerprint, self.num_shards)
        queue = self._queues[shard]
        if (
            self.max_queue_depth is not None
            and len(queue) >= self.max_queue_depth
        ):
            raise QueueFullError(
                f"{len(queue)} tickets >= max_queue_depth="
                f"{self.max_queue_depth}"
            )
        queue.append(ticket)
        return shard

    def take_batch(self, shard: int) -> list[Ticket]:
        """Drain up to ``max_batch`` tickets for one shard, ordered for
        trie locality.  Empty list when the shard has no backlog."""
        queue = self._queues[shard]
        batch: list[Ticket] = []
        while queue and len(batch) < self.max_batch:
            batch.append(queue.popleft())
        return locality_order(batch)

    def pending(self, shard: int) -> int:
        return len(self._queues[shard])

    @property
    def depth(self) -> int:
        """Total queued tickets across all shards."""
        return sum(len(q) for q in self._queues)
