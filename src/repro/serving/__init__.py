"""The concurrent explanation service (serving layer).

Layering: db → core → engine → api → **serving** → cli.  This package
multiplexes many concurrent :class:`~repro.api.ExplanationRequest`s
over the session API:

- :mod:`~repro.serving.frontend` — asyncio admission: cross-request
  response cache, in-flight coalescing, deadline budgets, bounded
  retries, load shedding, ``submit()`` and the HTTP endpoint
  (``POST /explain``, ``GET /stats``) with structured JSON errors;
- :mod:`~repro.serving.scheduler` — deterministic fingerprint → shard
  routing, bounded per-shard queues, locality-ordered batching;
- :mod:`~repro.serving.pool` — the supervised sharded worker pool
  (auto-restart, checksummed replies, quarantine, degraded fallback)
  and an inline single-process backend with the same contract;
- :mod:`~repro.serving.supervisor` — per-shard health state machine
  (healthy → restarting → quarantined);
- :mod:`~repro.serving.faults` — deterministic fault injection
  (kill / delay / corrupt / startup-crash) for chaos tests and the
  chaos benchmark;
- :mod:`~repro.serving.shm` — zero-copy shared-memory publication of
  encoded relations to the workers;
- :mod:`~repro.serving.metrics` — service counters, health, and
  latency percentiles behind ``/stats``.
"""

from .faults import (
    CORRUPT,
    DELAY,
    KILL,
    STARTUP_CRASH,
    FaultPlan,
    FaultRule,
)
from .frontend import (
    BadRequestError,
    CorruptReplyError,
    DeadlineExceededError,
    ExplanationService,
    ServiceError,
    ServiceOverloadedError,
    ServiceResponse,
    ShardQuarantinedError,
    WorkerDiedError,
    canonical_payload,
    request_cache_key,
    request_from_json,
    serve_http,
    timeout_from_json,
)
from .metrics import ServiceStats
from .pool import InlineBackend, ProcessPoolBackend
from .scheduler import (
    QueueFullError,
    Scheduler,
    Ticket,
    locality_order,
    shard_for,
)
from .shm import (
    AttachedDatabase,
    DatabaseExport,
    attach_database,
    export_database,
)
from .supervisor import (
    HEALTHY,
    QUARANTINED,
    RESTARTING,
    ShardHealth,
    ShardSupervisor,
)

__all__ = [
    "CORRUPT",
    "DELAY",
    "HEALTHY",
    "KILL",
    "QUARANTINED",
    "RESTARTING",
    "STARTUP_CRASH",
    "AttachedDatabase",
    "BadRequestError",
    "CorruptReplyError",
    "DatabaseExport",
    "DeadlineExceededError",
    "ExplanationService",
    "FaultPlan",
    "FaultRule",
    "InlineBackend",
    "ProcessPoolBackend",
    "QueueFullError",
    "Scheduler",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceResponse",
    "ServiceStats",
    "ShardHealth",
    "ShardQuarantinedError",
    "ShardSupervisor",
    "Ticket",
    "WorkerDiedError",
    "attach_database",
    "canonical_payload",
    "export_database",
    "locality_order",
    "request_cache_key",
    "request_from_json",
    "serve_http",
    "shard_for",
    "timeout_from_json",
]
