"""The concurrent explanation service (serving layer).

Layering: db → core → engine → api → **serving** → cli.  This package
multiplexes many concurrent :class:`~repro.api.ExplanationRequest`s
over the session API:

- :mod:`~repro.serving.frontend` — asyncio admission: cross-request
  response cache, in-flight coalescing, ``submit()`` and the HTTP
  endpoint (``POST /explain``, ``GET /stats``);
- :mod:`~repro.serving.scheduler` — deterministic fingerprint → shard
  routing and locality-ordered batching;
- :mod:`~repro.serving.pool` — the sharded persistent worker pool
  (and an inline single-process backend);
- :mod:`~repro.serving.shm` — zero-copy shared-memory publication of
  encoded relations to the workers;
- :mod:`~repro.serving.metrics` — service counters and latency
  percentiles behind ``/stats``.
"""

from .frontend import (
    ExplanationService,
    ServiceError,
    ServiceResponse,
    canonical_payload,
    request_cache_key,
    request_from_json,
    serve_http,
)
from .metrics import ServiceStats
from .pool import InlineBackend, ProcessPoolBackend
from .scheduler import Scheduler, Ticket, locality_order, shard_for
from .shm import (
    AttachedDatabase,
    DatabaseExport,
    attach_database,
    export_database,
)

__all__ = [
    "AttachedDatabase",
    "DatabaseExport",
    "ExplanationService",
    "InlineBackend",
    "ProcessPoolBackend",
    "Scheduler",
    "ServiceError",
    "ServiceResponse",
    "ServiceStats",
    "Ticket",
    "attach_database",
    "canonical_payload",
    "export_database",
    "locality_order",
    "request_cache_key",
    "request_from_json",
    "serve_http",
    "shard_for",
]
