"""repro — a reproduction of CaJaDE (SIGMOD 2021).

"Putting Things into Context: Rich Explanations for Query Answers using
Join Graphs" — Li, Miao, Zeng, Glavic, Roy.

The public API re-exports the most commonly used entry points:

>>> from repro import CajadeExplainer, ComparisonQuestion
>>> from repro.datasets import load_nba
>>> db, schema_graph = load_nba(scale=0.25)
>>> explainer = CajadeExplainer(db, schema_graph)
>>> result = explainer.explain(sql, ComparisonQuestion(t1, t2))
>>> print(result.describe(3))
"""

from .core import (
    CajadeConfig,
    CajadeExplainer,
    ComparisonQuestion,
    Explanation,
    ExplanationResult,
    JoinGraph,
    OutlierQuestion,
    Pattern,
    SchemaGraph,
    StepTimer,
)
from .db import Database, ProvenanceTable, Relation, TableSchema, parse_sql

__version__ = "1.0.0"

__all__ = [
    "CajadeConfig",
    "CajadeExplainer",
    "ComparisonQuestion",
    "Database",
    "Explanation",
    "ExplanationResult",
    "JoinGraph",
    "OutlierQuestion",
    "parse_sql",
    "Pattern",
    "ProvenanceTable",
    "Relation",
    "SchemaGraph",
    "StepTimer",
    "TableSchema",
    "__version__",
]
