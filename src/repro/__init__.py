"""repro — a reproduction of CaJaDE (SIGMOD 2021).

"Putting Things into Context: Rich Explanations for Query Answers using
Join Graphs" — Li, Miao, Zeng, Glavic, Roy.

The canonical entry point is the session API: register a database once,
then ask many questions while parsed queries, provenance tables and the
materialization trie stay warm:

>>> from repro import CajadeSession
>>> from repro.datasets import load_nba
>>> db, schema_graph = load_nba(scale=0.25)
>>> session = CajadeSession(db, schema_graph)
>>> response = session.ask(sql).why_higher(t1, t2).top_k(3).run()
>>> print(response.describe())

The one-shot :class:`CajadeExplainer` remains as a deprecated shim over
a one-request session (byte-identical results, no cross-question reuse).
"""

from .api import (
    CajadeSession,
    ExplanationRequest,
    ExplanationResponse,
    QuestionBuilder,
    SessionStats,
    query_fingerprint,
)
from .core import (
    CajadeConfig,
    CajadeExplainer,
    ComparisonQuestion,
    Explanation,
    ExplanationResult,
    JoinGraph,
    OutlierQuestion,
    Pattern,
    SchemaGraph,
    StepTimer,
)
from .db import Database, ProvenanceTable, Relation, TableSchema, parse_sql

__version__ = "1.1.0"

__all__ = [
    "CajadeConfig",
    "CajadeExplainer",
    "CajadeSession",
    "ComparisonQuestion",
    "Database",
    "Explanation",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationResult",
    "JoinGraph",
    "OutlierQuestion",
    "parse_sql",
    "Pattern",
    "ProvenanceTable",
    "query_fingerprint",
    "QuestionBuilder",
    "Relation",
    "SchemaGraph",
    "SessionStats",
    "StepTimer",
    "TableSchema",
    "__version__",
]
