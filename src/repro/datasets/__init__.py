"""Synthetic datasets mirroring the paper's NBA and MIMIC schemas."""

from .mimic import generate_mimic, load_mimic, mimic_schema_graph
from .nba import generate_nba, load_nba, nba_schema_graph
from .scaling import scale_down_database, scale_up_database
from .workloads import (
    WorkloadQuery,
    all_queries,
    mimic_queries,
    nba_queries,
    query_by_name,
    user_study_query,
)

__all__ = [
    "all_queries",
    "generate_mimic",
    "generate_nba",
    "load_mimic",
    "load_nba",
    "mimic_queries",
    "mimic_schema_graph",
    "nba_queries",
    "nba_schema_graph",
    "query_by_name",
    "scale_down_database",
    "scale_up_database",
    "user_study_query",
    "WorkloadQuery",
]
