"""Database scaling utilities (paper §5, "Datasets").

The paper scales datasets down by random sampling and up by duplicating
rows "appending identifiers to primary key columns and other selected
columns to ensure that the constraints of the schema are not violated and
the join result sizes are scaled too".

:func:`scale_up_database` implements exactly that duplication scheme
generically: key *domains* (a primary-key column plus every foreign-key
column referencing it, transitively) are remapped consistently per copy —
integer domains by offsetting, text domains by suffixing — so all PK
constraints keep holding and every join fans out by the same factor.

:func:`scale_down_database` samples a fraction of each table's rows while
preserving referential integrity: root tables are sampled first and
children keep only rows whose FK targets survived.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..db.database import Database
from ..db.relation import Relation


def _key_domains(db: Database) -> dict[tuple[str, str], int]:
    """Union-find over (table, column): PK cols share a domain with every
    FK col referencing them."""
    nodes: list[tuple[str, str]] = []
    index: dict[tuple[str, str], int] = {}

    def node_id(table: str, column: str) -> int:
        key = (table, column)
        if key not in index:
            index[key] = len(nodes)
            nodes.append(key)
        return index[key]

    parent: list[int] = []

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for table in db.table_names:
        for col in db.table(table).schema.primary_key:
            node_id(table, col)
    for fk in db.foreign_keys:
        for col, ref_col in zip(fk.columns, fk.ref_columns):
            node_id(fk.table, col)
            node_id(fk.ref_table, ref_col)
    parent = list(range(len(nodes)))

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for fk in db.foreign_keys:
        for col, ref_col in zip(fk.columns, fk.ref_columns):
            union(index[(fk.table, col)], index[(fk.ref_table, ref_col)])
    return {key: find(index[key]) for key in index}


def scale_up_database(db: Database, factor: int) -> Database:
    """Duplicate every table ``factor`` times with consistent key remapping.

    Per-copy remapping: integer key-domain columns are offset by
    ``copy * (domain_max + 1)``; text key-domain columns get a ``#copy``
    suffix.  Non-key columns are copied verbatim, so value distributions
    (and therefore pattern mining results) are preserved while join
    result sizes scale linearly.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return db

    domains = _key_domains(db)
    domain_max: dict[int, int] = {}
    for (table, column), domain in domains.items():
        arr = db.table(table).column(column)
        if arr.dtype != object and len(arr):
            current = int(np.nanmax(arr.astype(np.float64)))
            domain_max[domain] = max(domain_max.get(domain, 0), current)

    scaled = Database(name=f"{db.name}_x{factor}")
    for table in db.table_names:
        relation = db.table(table)
        key_cols = {
            col: domains[(table, col)]
            for col in relation.column_names
            if (table, col) in domains
        }
        rows: list[tuple[Any, ...]] = []
        names = relation.column_names
        base_rows = list(relation.iter_rows())
        for copy in range(factor):
            if copy == 0:
                rows.extend(base_rows)
                continue
            for row in base_rows:
                new_row = list(row)
                for pos, name in enumerate(names):
                    if name not in key_cols:
                        continue
                    value = new_row[pos]
                    if value is None:
                        continue
                    if isinstance(value, str):
                        new_row[pos] = f"{value}#{copy}"
                    else:
                        offset = copy * (domain_max.get(key_cols[name], 0) + 1)
                        new_row[pos] = int(value) + offset
                rows.append(tuple(new_row))
        scaled.create_table(relation.schema, rows)
    for fk in db.foreign_keys:
        scaled.add_foreign_key(fk.table, fk.columns, fk.ref_table, fk.ref_columns)
    return scaled


def scale_down_database(
    db: Database, fraction: float, seed: int = 0
) -> Database:
    """Sample each table down to ``fraction`` preserving FK integrity.

    Tables are processed parents-first; each child keeps only rows whose
    FK targets survived in every referenced table, then is further
    sampled toward the target fraction if it is still too large.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return db
    rng = np.random.default_rng(seed)

    # Topological order: referenced tables before referencing tables.
    order: list[str] = []
    pending = set(db.table_names)
    while pending:
        progressed = False
        for table in sorted(pending):
            parents = {
                fk.ref_table
                for fk in db.foreign_keys_of(table)
                if fk.ref_table != table
            }
            if parents <= set(order):
                order.append(table)
                pending.discard(table)
                progressed = True
        if not progressed:  # FK cycle: break arbitrarily
            table = sorted(pending)[0]
            order.append(table)
            pending.discard(table)

    scaled = Database(name=f"{db.name}_f{fraction:g}")
    surviving_keys: dict[str, set[tuple[Any, ...]]] = {}
    for table in order:
        relation = db.table(table)
        keep = np.ones(relation.num_rows, dtype=bool)
        for fk in db.foreign_keys_of(table):
            if fk.ref_table == table:
                continue
            allowed = surviving_keys.get(fk.ref_table)
            if allowed is None:
                continue
            ref_schema = scaled.table(fk.ref_table).schema
            if tuple(fk.ref_columns) != ref_schema.primary_key:
                continue
            arrays = [relation.column(c) for c in fk.columns]
            for i in range(relation.num_rows):
                if not keep[i]:
                    continue
                key = tuple(arr[i] for arr in arrays)
                if key not in allowed:
                    keep[i] = False
        filtered = relation.filter_mask(keep)
        target = max(1, int(round(relation.num_rows * fraction)))
        if filtered.num_rows > target:
            indices = rng.choice(filtered.num_rows, size=target, replace=False)
            filtered = filtered.take(np.sort(indices))
        scaled.add_relation(filtered)
        pk = relation.schema.primary_key
        if pk:
            arrays = [filtered.column(c) for c in pk]
            surviving_keys[table] = {
                tuple(arr[i] for arr in arrays)
                for i in range(filtered.num_rows)
            }
    for fk in db.foreign_keys:
        scaled.add_foreign_key(fk.table, fk.columns, fk.ref_table, fk.ref_columns)
    return scaled
