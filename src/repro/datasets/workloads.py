"""The paper's query workload (Tables 2/3/5) and user questions (Tables 4/6).

Five NBA queries and five MIMIC queries, each with the comparison question
the case studies ask.  SQL is written against the schemas of
:mod:`repro.datasets.nba` / :mod:`repro.datasets.mimic`, which mirror the
paper's Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.question import ComparisonQuestion


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query with its user question."""

    name: str
    dataset: str
    description: str
    sql: str
    question: ComparisonQuestion


def nba_queries() -> list[WorkloadQuery]:
    """Qnba1..Qnba5 with the Table 4 user questions."""
    return [
        WorkloadQuery(
            name="Qnba1",
            dataset="nba",
            description="Average points per season for Draymond Green",
            sql="""
                SELECT AVG(points) AS avg_pts, s.season_name
                FROM player p, player_game_stats pgs, game g, season s
                WHERE p.player_id = pgs.player_id
                  AND g.game_date = pgs.game_date
                  AND g.home_id = pgs.home_id
                  AND s.season_id = g.season_id
                  AND p.player_name = 'Draymond Green'
                GROUP BY s.season_name
            """,
            question=ComparisonQuestion(
                {"season_name": "2015-16"}, {"season_name": "2016-17"}
            ),
        ),
        WorkloadQuery(
            name="Qnba2",
            dataset="nba",
            description="GSW average assists per season",
            sql="""
                SELECT AVG(tgs.assists) AS avg_ast, s.season_name
                FROM team_game_stats tgs, game g, team t, season s
                WHERE s.season_id = g.season_id
                  AND tgs.game_date = g.game_date
                  AND tgs.home_id = g.home_id
                  AND tgs.team_id = t.team_id
                  AND t.team = 'GSW'
                GROUP BY s.season_name
            """,
            question=ComparisonQuestion(
                {"season_name": "2013-14"}, {"season_name": "2014-15"}
            ),
        ),
        WorkloadQuery(
            name="Qnba3",
            dataset="nba",
            description="Average points per season for LeBron James",
            sql="""
                SELECT AVG(points) AS avg_pts, s.season_name
                FROM player p, player_game_stats pgs, game g, season s
                WHERE p.player_id = pgs.player_id
                  AND g.game_date = pgs.game_date
                  AND g.home_id = pgs.home_id
                  AND s.season_id = g.season_id
                  AND p.player_name = 'LeBron James'
                GROUP BY s.season_name
            """,
            question=ComparisonQuestion(
                {"season_name": "2009-10"}, {"season_name": "2010-11"}
            ),
        ),
        WorkloadQuery(
            name="Qnba4",
            dataset="nba",
            description="GSW wins per season",
            sql="""
                SELECT COUNT(*) AS win, s.season_name
                FROM team t, game g, season s
                WHERE t.team_id = g.winner_id
                  AND g.season_id = s.season_id
                  AND t.team = 'GSW'
                GROUP BY s.season_name
            """,
            question=ComparisonQuestion(
                {"season_name": "2012-13"}, {"season_name": "2016-17"}
            ),
        ),
        WorkloadQuery(
            name="Qnba5",
            dataset="nba",
            description="Average points per season for Jimmy Butler",
            sql="""
                SELECT AVG(points) AS avg_pts, s.season_name
                FROM player p, player_game_stats pgs, game g, season s
                WHERE p.player_id = pgs.player_id
                  AND g.game_date = pgs.game_date
                  AND g.home_id = pgs.home_id
                  AND s.season_id = g.season_id
                  AND p.player_name = 'Jimmy Butler'
                GROUP BY s.season_name
            """,
            question=ComparisonQuestion(
                {"season_name": "2013-14"}, {"season_name": "2014-15"}
            ),
        ),
    ]


def mimic_queries() -> list[WorkloadQuery]:
    """Qmimic1..Qmimic5 with the Table 6 user questions."""
    return [
        WorkloadQuery(
            name="Qmimic1",
            dataset="mimic",
            description="Death rate per diagnosis chapter",
            sql="""
                SELECT 1.0 * SUM(a.hospital_expire_flag) / COUNT(*)
                       AS death_rate, d.chapter
                FROM admissions a, diagnoses d
                WHERE a.hadm_id = d.hadm_id
                GROUP BY d.chapter
            """,
            question=ComparisonQuestion({"chapter": "2"}, {"chapter": "13"}),
        ),
        WorkloadQuery(
            name="Qmimic2",
            dataset="mimic",
            description="Death rate per insurance type (Medicare vs Medicaid)",
            sql="""
                SELECT insurance,
                       1.0 * SUM(hospital_expire_flag) / COUNT(*)
                       AS death_rate
                FROM admissions
                GROUP BY insurance
            """,
            question=ComparisonQuestion(
                {"insurance": "Medicare"}, {"insurance": "Medicaid"}
            ),
        ),
        WorkloadQuery(
            name="Qmimic3",
            dataset="mimic",
            description="ICU stays per length-of-stay group",
            sql="""
                SELECT COUNT(*) AS cnt, los_group
                FROM icustays
                GROUP BY los_group
            """,
            question=ComparisonQuestion(
                {"los_group": "0-1"}, {"los_group": "x>8"}
            ),
        ),
        WorkloadQuery(
            name="Qmimic4",
            dataset="mimic",
            description="Death rate per insurance type (Medicare vs Private)",
            sql="""
                SELECT insurance,
                       1.0 * SUM(hospital_expire_flag) / COUNT(*)
                       AS death_rate
                FROM admissions
                GROUP BY insurance
            """,
            question=ComparisonQuestion(
                {"insurance": "Medicare"}, {"insurance": "Private"}
            ),
        ),
        WorkloadQuery(
            name="Qmimic5",
            dataset="mimic",
            description="Procedures per patient ethnicity",
            sql="""
                SELECT COUNT(*) AS cnt, pai.ethnicity
                FROM patients_admit_info pai, procedures p
                WHERE p.hadm_id = pai.hadm_id
                  AND p.subject_id = pai.subject_id
                GROUP BY pai.ethnicity
            """,
            question=ComparisonQuestion(
                {"ethnicity": "Hispanic"}, {"ethnicity": "Asian"}
            ),
        ),
    ]


def all_queries() -> list[WorkloadQuery]:
    """The full 10-query workload of Figure 12."""
    return nba_queries() + mimic_queries()


def query_by_name(name: str) -> WorkloadQuery:
    for query in all_queries():
        if query.name == name:
            return query
    raise KeyError(f"unknown workload query {name!r}")


def user_study_query() -> WorkloadQuery:
    """Q1' of the user study (§6.3): GSW wins, 2015-16 vs 2012-13."""
    base = query_by_name("Qnba4")
    return WorkloadQuery(
        name="Q1prime",
        dataset="nba",
        description="User study: why did GSW win more games in 2015-16 "
        "than in 2012-13?",
        sql=base.sql,
        question=ComparisonQuestion(
            {"season_name": "2015-16"}, {"season_name": "2012-13"}
        ),
    )
