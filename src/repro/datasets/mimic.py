"""Synthetic MIMIC-III-like database with the paper's Figure 6 schema.

Real MIMIC-III is credential-gated, so this generator produces a seeded
synthetic hospital database with the same schema graph and the
correlations the paper's case study (Table 6) reports:

- insurance mix and death rates per Figure 16b/d: Medicare 0.14,
  Self Pay 0.16, Government 0.05, Private 0.06, Medicaid 0.07, with
  admission counts proportional to 28215 / 611 / 1783 / 22582 / 5785;
- Medicare patients are older (mostly > 65), more often admitted through
  the emergency department, and slightly more often male;
- ICU length-of-stay groups mirror Figure 16c and correlate with the
  hospital stay length (Qmimic3's explanations);
- diagnosis chapters carry different death rates (chapter 2 'neoplasms'
  0.19 vs chapter 13 'musculoskeletal' 0.09, Figure 16a);
- ethnicity distribution per Figure 16e; Hispanic patients skew Catholic
  and younger, Asian patients skew toward shorter stays (Qmimic5).

``scale`` multiplies the number of admissions (and all dependent tables).
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.schema import TableSchema
from ..db.types import ColumnType
from ..core.schema_graph import SchemaGraph

INSURANCES = ["Medicare", "Self Pay", "Government", "Private", "Medicaid"]
INSURANCE_WEIGHTS = np.array([28215, 611, 1783, 22582, 5785], dtype=float)
INSURANCE_DEATH_RATE = {
    "Medicare": 0.14,
    "Self Pay": 0.16,
    "Government": 0.05,
    "Private": 0.06,
    "Medicaid": 0.07,
}

CHAPTERS = [str(c) for c in range(1, 18)] + ["E", "V"]
CHAPTER_DEATH_RATE = {
    "1": 0.19, "2": 0.19, "3": 0.12, "4": 0.14, "5": 0.08, "6": 0.13,
    "7": 0.12, "8": 0.18, "9": 0.14, "10": 0.15, "11": 0.01, "12": 0.14,
    "13": 0.09, "14": 0.05, "15": 0.02, "16": 0.16, "17": 0.13,
    "E": 0.10, "V": 0.09,
}

ETHNICITIES = [
    "White", "Black", "Hispanic", "Asian", "Other", "Unknown",
    "Declined To Answer",
]
ETHNICITY_WEIGHTS = np.array(
    [169478, 19579, 7821, 6247, 6056, 22710, 2641], dtype=float
)

RELIGIONS = ["Catholic", "Protestant", "Jewish", "Buddhist", "None"]
LANGUAGES = ["ENGL", "SPAN", "MAND", "RUSS", "PORT"]
ADMISSION_TYPES = ["EMERGENCY", "ELECTIVE", "URGENT", "NEWBORN"]
ADMISSION_LOCATIONS = [
    "EMERGENCY ROOM ADMIT", "PHYS REFERRAL", "CLINIC REFERRAL",
    "TRANSFER FROM HOSP",
]
DISCHARGE_LOCATIONS = ["HOME", "SNF", "REHAB", "DEAD/EXPIRED", "HOSPICE"]
MARITAL_STATUSES = ["MARRIED", "SINGLE", "WIDOWED", "DIVORCED"]
CAREUNITS = ["MICU", "SICU", "CCU", "CSRU", "TSICU"]
LOS_GROUPS = ["0-1", "1-2", "2-4", "4-8", "x>8"]


def _schema(name: str, columns: dict, pk: tuple) -> TableSchema:
    return TableSchema.build(name, columns, primary_key=pk)


def _los_group(los: float) -> str:
    if los <= 1.0:
        return "0-1"
    if los <= 2.0:
        return "1-2"
    if los <= 4.0:
        return "2-4"
    if los <= 8.0:
        return "4-8"
    return "x>8"


def generate_mimic(scale: float = 1.0, seed: int = 23) -> Database:
    """Generate the synthetic MIMIC database at the given scale factor.

    scale = 1.0 yields ≈ 6 000 admissions over ≈ 4 200 patients, with
    diagnoses / procedures / ICU stays fanning out per admission.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    db = Database(f"mimic_sf{scale:g}")

    n_admissions = max(50, int(round(6000 * scale)))
    n_patients = max(30, int(round(n_admissions * 0.7)))

    # -- patients --------------------------------------------------------
    patient_rows = []
    patient_gender: list[str] = []
    patient_dead: list[int] = []
    for subject_id in range(n_patients):
        gender = "M" if rng.random() < 0.56 else "F"
        dob_year = int(rng.integers(1915, 1995))
        dob = f"{dob_year:04d}-{int(rng.integers(1, 13)):02d}-15"
        expire_flag = 0
        dod = None
        patient_rows.append((subject_id, gender, dob, dod, expire_flag))
        patient_gender.append(gender)
        patient_dead.append(0)

    # -- admissions & dependents -----------------------------------------
    insurance_p = INSURANCE_WEIGHTS / INSURANCE_WEIGHTS.sum()
    ethnicity_p = ETHNICITY_WEIGHTS / ETHNICITY_WEIGHTS.sum()

    admission_rows = []
    admit_info_rows = []
    diagnoses_rows = []
    procedure_rows = []
    icustay_rows = []
    icustay_id = 0

    for hadm_id in range(n_admissions):
        subject_id = int(rng.integers(0, n_patients))
        gender = patient_gender[subject_id]

        insurance = str(rng.choice(INSURANCES, p=insurance_p))
        # Medicare skews old; Medicaid/Private skew younger.
        if insurance == "Medicare":
            age = float(np.clip(rng.normal(74, 8), 61, 95))
        elif insurance in ("Private", "Medicaid"):
            age = float(np.clip(rng.normal(48, 14), 16, 88))
        else:
            age = float(np.clip(rng.normal(55, 16), 16, 92))

        ethnicity = str(rng.choice(ETHNICITIES, p=ethnicity_p))
        if ethnicity == "Hispanic":
            religion = str(
                rng.choice(RELIGIONS, p=[0.62, 0.14, 0.02, 0.02, 0.2])
            )
            language = str(rng.choice(LANGUAGES, p=[0.45, 0.5, 0.0, 0.0, 0.05]))
            age = min(age, float(np.clip(rng.normal(52, 12), 16, 88)))
        elif ethnicity == "Asian":
            religion = str(
                rng.choice(RELIGIONS, p=[0.12, 0.1, 0.02, 0.4, 0.36])
            )
            language = str(rng.choice(LANGUAGES, p=[0.55, 0.0, 0.4, 0.0, 0.05]))
        else:
            religion = str(
                rng.choice(RELIGIONS, p=[0.35, 0.3, 0.08, 0.02, 0.25])
            )
            language = str(rng.choice(LANGUAGES, p=[0.9, 0.04, 0.02, 0.02, 0.02]))

        # Emergency admissions dominate for Medicare & Self Pay.
        if insurance in ("Medicare", "Self Pay"):
            adm_type = str(
                rng.choice(ADMISSION_TYPES, p=[0.82, 0.08, 0.08, 0.02])
            )
        else:
            adm_type = str(
                rng.choice(ADMISSION_TYPES, p=[0.55, 0.25, 0.12, 0.08])
            )
        adm_location = (
            "EMERGENCY ROOM ADMIT"
            if adm_type == "EMERGENCY" and rng.random() < 0.8
            else str(rng.choice(ADMISSION_LOCATIONS[1:]))
        )

        # Per-insurance damping cancels the expected boost of the risk
        # multipliers below so marginal death rates land on the paper's
        # Figure 16b values.
        damping = {
            "Medicare": 1.62, "Self Pay": 1.50, "Government": 1.30,
            "Private": 1.28, "Medicaid": 1.25,
        }[insurance]
        death_p = INSURANCE_DEATH_RATE[insurance] / damping
        # Emergency + old age push mortality up, consistent with the
        # Qmimic2/Qmimic4 explanations.
        if adm_type == "EMERGENCY":
            death_p *= 1.35
        if age > 70:
            death_p *= 1.3
        if gender == "M":
            death_p *= 1.1
        hospital_expire_flag = int(rng.random() < min(0.9, death_p))

        # Hospital stay length; deaths and ICU-heavy stays run longer.
        stay = float(np.clip(rng.lognormal(1.7, 0.7), 0.3, 80.0))
        if hospital_expire_flag:
            stay = float(np.clip(stay * rng.uniform(0.9, 1.8), 0.5, 90.0))
        discharge_location = (
            "DEAD/EXPIRED"
            if hospital_expire_flag
            else str(rng.choice(DISCHARGE_LOCATIONS[:3]))
        )
        # Asian patients skew toward shorter stays (Qmimic5 signal).
        if ethnicity == "Asian":
            stay = min(stay, float(rng.uniform(1.0, 17.0)))
        if ethnicity == "Hispanic":
            stay = max(stay, float(rng.uniform(3.0, 14.0)))

        marital = str(rng.choice(MARITAL_STATUSES, p=[0.45, 0.3, 0.15, 0.1]))
        diagnosis_text = str(rng.choice(
            ["SEPSIS", "PNEUMONIA", "CHF", "GI BLEED", "TRAUMA", "CANCER"]
        ))
        admit_year = int(rng.integers(2100, 2190))
        admittime = f"{admit_year:04d}-{int(rng.integers(1, 13)):02d}-10"

        admission_rows.append(
            (
                hadm_id,
                subject_id,
                admittime,
                adm_type,
                adm_location,
                discharge_location,
                insurance,
                marital,
                diagnosis_text,
                hospital_expire_flag,
                round(stay, 2),
            )
        )
        if hospital_expire_flag:
            patient_dead[subject_id] = 1

        admit_info_rows.append(
            (subject_id, hadm_id, round(age, 1), language, religion, ethnicity)
        )

        # -- diagnoses: chapter mix tilted by outcome --------------------
        n_diag = int(rng.integers(1, 5))
        for seq in range(1, n_diag + 1):
            if hospital_expire_flag:
                weights = np.array(
                    [CHAPTER_DEATH_RATE[c] for c in CHAPTERS]
                )
            else:
                weights = np.array(
                    [1.0 - CHAPTER_DEATH_RATE[c] for c in CHAPTERS]
                )
            weights = weights / weights.sum()
            chapter = str(rng.choice(CHAPTERS, p=weights))
            icd9 = f"{chapter}{int(rng.integers(10, 99))}.{int(rng.integers(0, 9))}"
            diagnoses_rows.append((subject_id, hadm_id, seq, icd9, chapter))

        # -- procedures ---------------------------------------------------
        n_proc = int(rng.integers(0, 4))
        if stay > 9 and rng.random() < 0.75:
            # Long stays almost always get chapter-16 procedures
            # ("Miscellaneous Diagnostic and Therapeutic Procedures"),
            # the Qmimic3 top-1 signal.
            procedure_rows.append(
                (
                    subject_id,
                    hadm_id,
                    1,
                    f"16{int(rng.integers(10, 99))}.{int(rng.integers(0, 9))}",
                    "16",
                )
            )
            start_seq = 2
        else:
            start_seq = 1
        for seq in range(start_seq, start_seq + n_proc):
            chapter = str(rng.choice(CHAPTERS))
            icd9 = f"{chapter}{int(rng.integers(10, 99))}.{int(rng.integers(0, 9))}"
            procedure_rows.append((subject_id, hadm_id, seq, icd9, chapter))

        # -- ICU stays -----------------------------------------------------
        n_icu = 1 if rng.random() < 0.85 else 2
        for _ in range(n_icu):
            # ICU length correlates strongly with hospital stay.
            los = float(
                np.clip(stay * rng.uniform(0.1, 0.5) + rng.normal(0, 0.6),
                        0.1, 60.0)
            )
            dbsource = "carevue" if rng.random() < 0.55 else "metavision"
            icustay_rows.append(
                (
                    subject_id,
                    hadm_id,
                    icustay_id,
                    dbsource,
                    str(rng.choice(CAREUNITS)),
                    round(los, 3),
                    _los_group(los),
                )
            )
            icustay_id += 1

    # Patient-level expire flag aggregates admission outcomes.
    patient_rows = [
        (
            sid,
            gender,
            dob,
            ("2190-01-01" if patient_dead[sid] else None),
            patient_dead[sid],
        )
        for (sid, gender, dob, _dod, _flag) in patient_rows
    ]

    db.create_table(
        _schema(
            "patients",
            {
                "subject_id": ColumnType.INT,
                "gender": ColumnType.TEXT,
                "dob": ColumnType.TEXT,
                "dod": ColumnType.TEXT,
                "expire_flag": ColumnType.INT,
            },
            ("subject_id",),
        ),
        patient_rows,
    )
    db.create_table(
        _schema(
            "admissions",
            {
                "hadm_id": ColumnType.INT,
                "subject_id": ColumnType.INT,
                "admittime": ColumnType.TEXT,
                "admission_type": ColumnType.TEXT,
                "admission_location": ColumnType.TEXT,
                "discharge_location": ColumnType.TEXT,
                "insurance": ColumnType.TEXT,
                "marital_status": ColumnType.TEXT,
                "diagnosis": ColumnType.TEXT,
                "hospital_expire_flag": ColumnType.INT,
                "hospital_stay_length": ColumnType.FLOAT,
            },
            ("hadm_id",),
        ),
        admission_rows,
    )
    db.create_table(
        _schema(
            "patients_admit_info",
            {
                "subject_id": ColumnType.INT,
                "hadm_id": ColumnType.INT,
                "age": ColumnType.FLOAT,
                "language": ColumnType.TEXT,
                "religion": ColumnType.TEXT,
                "ethnicity": ColumnType.TEXT,
            },
            ("subject_id", "hadm_id"),
        ),
        admit_info_rows,
    )
    db.create_table(
        _schema(
            "diagnoses",
            {
                "subject_id": ColumnType.INT,
                "hadm_id": ColumnType.INT,
                "seq_num": ColumnType.INT,
                "icd9_code": ColumnType.TEXT,
                "chapter": ColumnType.TEXT,
            },
            ("subject_id", "hadm_id", "seq_num"),
        ),
        diagnoses_rows,
    )
    db.create_table(
        _schema(
            "procedures",
            {
                "subject_id": ColumnType.INT,
                "hadm_id": ColumnType.INT,
                "seq_num": ColumnType.INT,
                "icd9_code": ColumnType.TEXT,
                "chapter": ColumnType.TEXT,
            },
            ("subject_id", "hadm_id", "seq_num"),
        ),
        procedure_rows,
    )
    db.create_table(
        _schema(
            "icustays",
            {
                "subject_id": ColumnType.INT,
                "hadm_id": ColumnType.INT,
                "icustay_id": ColumnType.INT,
                "dbsource": ColumnType.TEXT,
                "first_careunit": ColumnType.TEXT,
                "los": ColumnType.FLOAT,
                "los_group": ColumnType.TEXT,
            },
            ("subject_id", "hadm_id", "icustay_id"),
        ),
        icustay_rows,
    )

    _add_mimic_foreign_keys(db)
    return db


def _add_mimic_foreign_keys(db: Database) -> None:
    db.add_foreign_key("admissions", ("subject_id",), "patients", ("subject_id",))
    db.add_foreign_key(
        "patients_admit_info", ("subject_id",), "patients", ("subject_id",)
    )
    db.add_foreign_key(
        "patients_admit_info", ("hadm_id",), "admissions", ("hadm_id",)
    )
    db.add_foreign_key("diagnoses", ("subject_id",), "patients", ("subject_id",))
    db.add_foreign_key("diagnoses", ("hadm_id",), "admissions", ("hadm_id",))
    db.add_foreign_key("procedures", ("subject_id",), "patients", ("subject_id",))
    db.add_foreign_key("procedures", ("hadm_id",), "admissions", ("hadm_id",))
    db.add_foreign_key("icustays", ("subject_id",), "patients", ("subject_id",))
    db.add_foreign_key("icustays", ("hadm_id",), "admissions", ("hadm_id",))


def mimic_schema_graph(db: Database) -> SchemaGraph:
    """The MIMIC schema graph (FK edges, Figure 6)."""
    return SchemaGraph.from_database(db)


def load_mimic(
    scale: float = 1.0, seed: int = 23
) -> tuple[Database, SchemaGraph]:
    """Generate the MIMIC database and its schema graph."""
    db = generate_mimic(scale=scale, seed=seed)
    return db, mimic_schema_graph(db)
