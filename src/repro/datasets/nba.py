"""Synthetic NBA database with the paper's Figure 5 schema.

The paper scraped the real NBA stats site; that dataset is not
redistributable, so this generator produces a seeded synthetic database
with the same schema graph *and the statistical signals the paper's case
study depends on* (DESIGN.md §2):

- GSW's per-season win counts follow the paper's Figure 14d curve
  (26, 36, 23, 47, 51, 67, 73, 67, 58, 57 for 2009-10 .. 2018-19);
- Stephen Curry's scoring jumps in 2015-16; Draymond Green's scoring
  follows Figure 14a (2.9 → 14.0 → 10.2 ...); LeBron James's average
  points follow Figure 14c and his team changes CLE→MIA→CLE→LAL;
  Jimmy Butler ramps per Figure 14e;
- GSW's team assists follow Figure 14b (22.4 → 30.4);
- salaries grow league-wide over seasons with the player-level changes
  the explanations mention (Green's 2016-17 raise, Butler's rookie-scale
  jump after 2013-14);
- Green + Thompson share heavy lineup minutes from 2014-15 on (the
  "pair of players" explanation Ω2 of Figure 2c);
- Jarrett Jack plays for GSW only in 2012-13 (explanation Expl8).

``scale`` multiplies the number of games per season (and with it every
per-game table), preserving relative table sizes like the paper's scaled
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.database import Database
from ..db.schema import TableSchema
from ..db.types import ColumnType
from ..core.schema_graph import SchemaGraph

SEASONS = [
    "2009-10", "2010-11", "2011-12", "2012-13", "2013-14",
    "2014-15", "2015-16", "2016-17", "2017-18", "2018-19",
]

TEAMS = ["GSW", "CLE", "MIA", "CHI", "LAL", "BOS", "SAS", "HOU"]

# Target wins out of 82 for GSW per season (paper Figure 14d).
GSW_WINS = {
    "2009-10": 26, "2010-11": 36, "2011-12": 23, "2012-13": 47,
    "2013-14": 51, "2014-15": 67, "2015-16": 73, "2016-17": 67,
    "2017-18": 58, "2018-19": 57,
}

# GSW average assists per season (paper Figure 14b).
GSW_ASSISTS = {
    "2009-10": 22.4, "2010-11": 22.5, "2011-12": 22.3, "2012-13": 22.5,
    "2013-14": 23.3, "2014-15": 27.4, "2015-16": 28.9, "2016-17": 30.4,
    "2017-18": 29.3, "2018-19": 29.4,
}


@dataclass(frozen=True)
class _PlayerSpec:
    """A star player with per-season team and scoring curves."""

    name: str
    teams: dict[str, str]          # season -> team
    points: dict[str, float]       # season -> average points
    salary: dict[str, float]       # season -> salary


def _star_players() -> list[_PlayerSpec]:
    """The named players the paper's explanations reference."""

    def spread(team_spans: list[tuple[str, str, str]]) -> dict[str, str]:
        assignment = {}
        for team, first, last in team_spans:
            picking = False
            for season in SEASONS:
                if season == first:
                    picking = True
                if picking:
                    assignment[season] = team
                if season == last:
                    picking = False
        return assignment

    curry_points = {
        "2009-10": 17.5, "2010-11": 18.6, "2011-12": 14.7, "2012-13": 22.9,
        "2013-14": 24.0, "2014-15": 23.8, "2015-16": 30.1, "2016-17": 25.3,
        "2017-18": 26.4, "2018-19": 27.3,
    }
    green_points = {
        "2012-13": 2.9, "2013-14": 6.2, "2014-15": 11.7, "2015-16": 14.0,
        "2016-17": 10.2, "2017-18": 11.0, "2018-19": 7.4,
    }
    lebron_points = {
        "2009-10": 29.7, "2010-11": 26.7, "2011-12": 27.2, "2012-13": 26.8,
        "2013-14": 27.1, "2014-15": 25.3, "2015-16": 25.3, "2016-17": 26.4,
        "2017-18": 27.5, "2018-19": 27.4,
    }
    butler_points = {
        "2011-12": 2.6, "2012-13": 8.6, "2013-14": 13.1, "2014-15": 20.0,
        "2015-16": 20.9, "2016-17": 23.9, "2017-18": 22.2, "2018-19": 18.7,
    }

    def growing_salary(
        base: float, growth: float, first: str, jumps: dict[str, float]
    ) -> dict[str, float]:
        salary = {}
        level = base
        started = False
        for season in SEASONS:
            if season == first:
                started = True
            if not started:
                continue
            if season in jumps:
                level = jumps[season]
            salary[season] = level
            level *= growth
        return salary

    return [
        _PlayerSpec(
            name="Stephen Curry",
            teams=spread([("GSW", "2009-10", "2018-19")]),
            points=curry_points,
            salary=growing_salary(
                2_700_000, 1.12, "2009-10", {"2017-18": 34_700_000}
            ),
        ),
        _PlayerSpec(
            name="Klay Thompson",
            teams=spread([("GSW", "2011-12", "2018-19")]),
            points={
                s: p for s, p in zip(
                    SEASONS[2:],
                    [12.5, 16.6, 18.4, 21.7, 22.1, 22.3, 20.0, 21.5],
                )
            },
            salary=growing_salary(2_200_000, 1.25, "2011-12", {}),
        ),
        _PlayerSpec(
            name="Draymond Green",
            teams=spread([("GSW", "2012-13", "2018-19")]),
            points=green_points,
            # The 2016-17 raise that explanation Qnba1 keys on:
            # below 15 330 435 in 2015-16, above 14 260 870 afterwards.
            salary=growing_salary(
                850_000, 1.05, "2012-13", {"2016-17": 15_500_000}
            ),
        ),
        _PlayerSpec(
            name="Andre Iguodala",
            teams=spread([("LAL", "2009-10", "2012-13"),
                          ("GSW", "2013-14", "2018-19")]),
            points={s: 9.0 for s in SEASONS},
            salary=growing_salary(12_000_000, 1.02, "2009-10", {}),
        ),
        _PlayerSpec(
            name="Harrison Barnes",
            teams=spread([("GSW", "2012-13", "2015-16"),
                          ("HOU", "2016-17", "2018-19")]),
            points={s: 10.0 for s in SEASONS[3:]},
            salary=growing_salary(2_900_000, 1.15, "2012-13", {}),
        ),
        _PlayerSpec(
            name="Shaun Livingston",
            teams=spread([("MIA", "2009-10", "2013-14"),
                          ("GSW", "2014-15", "2018-19")]),
            points={s: 5.5 for s in SEASONS},
            salary=growing_salary(3_500_000, 1.05, "2009-10", {}),
        ),
        _PlayerSpec(
            name="Marreese Speights",
            teams=spread([("GSW", "2012-13", "2016-17"),
                          ("LAL", "2017-18", "2018-19")]),
            points={s: 7.0 for s in SEASONS[3:]},
            salary=growing_salary(3_200_000, 1.04, "2012-13", {}),
        ),
        _PlayerSpec(
            name="Jarrett Jack",
            teams=spread([("BOS", "2009-10", "2011-12"),
                          ("GSW", "2012-13", "2012-13"),
                          ("CLE", "2013-14", "2018-19")]),
            points={s: 9.5 for s in SEASONS},
            salary=growing_salary(4_800_000, 1.03, "2009-10", {}),
        ),
        _PlayerSpec(
            name="LeBron James",
            teams=spread([("CLE", "2009-10", "2009-10"),
                          ("MIA", "2010-11", "2013-14"),
                          ("CLE", "2014-15", "2017-18"),
                          ("LAL", "2018-19", "2018-19")]),
            points=lebron_points,
            salary=growing_salary(
                14_800_000, 1.05, "2009-10", {"2016-17": 30_900_000}
            ),
        ),
        _PlayerSpec(
            name="Jimmy Butler",
            teams=spread([("CHI", "2011-12", "2016-17"),
                          ("BOS", "2017-18", "2018-19")]),
            points=butler_points,
            # Rookie-scale contract until 2013-14 (salary <= 1 112 880),
            # then the big extension the Qnba5 explanation keys on.
            salary={
                "2011-12": 1_066_920, "2012-13": 1_112_880,
                "2013-14": 1_112_880, "2014-15": 2_008_748,
                "2015-16": 16_407_500, "2016-17": 17_552_209,
                "2017-18": 18_700_000, "2018-19": 19_841_627,
            },
        ),
        _PlayerSpec(
            name="Pau Gasol",
            teams=spread([("LAL", "2009-10", "2013-14"),
                          ("CHI", "2014-15", "2015-16"),
                          ("SAS", "2016-17", "2018-19")]),
            points={s: 15.0 for s in SEASONS},
            salary=growing_salary(17_800_000, 0.95, "2009-10", {}),
        ),
    ]


def _schema(name: str, columns: dict, pk: tuple) -> TableSchema:
    return TableSchema.build(name, columns, primary_key=pk)


def generate_nba(scale: float = 1.0, seed: int = 11) -> Database:
    """Generate the synthetic NBA database at the given scale factor.

    ``scale`` multiplies games per season; 1.0 yields a full 82-game GSW
    schedule per season (≈ 2 240 games, ≈ 27 000 player_game_stats rows).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)
    db = Database(f"nba_sf{scale:g}")

    # -- season / team / player dimension tables ------------------------
    db.create_table(
        _schema(
            "season",
            {
                "season_id": ColumnType.INT,
                "season_name": ColumnType.TEXT,
                "season_type": ColumnType.TEXT,
            },
            ("season_id",),
        ),
        [(i, name, "regular season") for i, name in enumerate(SEASONS)],
    )
    db.create_table(
        _schema(
            "team",
            {"team_id": ColumnType.INT, "team": ColumnType.TEXT},
            ("team_id",),
        ),
        [(i, t) for i, t in enumerate(TEAMS)],
    )

    stars = _star_players()
    role_players_per_team = 7
    players: list[tuple[int, str]] = []
    for player_id, star in enumerate(stars):
        players.append((player_id, star.name))
    role_ids: dict[str, list[int]] = {}
    next_id = len(stars)
    for team in TEAMS:
        ids = []
        for j in range(role_players_per_team):
            players.append((next_id, f"{team} Role{j + 1}"))
            ids.append(next_id)
            next_id += 1
        role_ids[team] = ids
    db.create_table(
        _schema(
            "player",
            {"player_id": ColumnType.INT, "player_name": ColumnType.TEXT},
            ("player_id",),
        ),
        players,
    )

    team_index = {t: i for i, t in enumerate(TEAMS)}
    season_index = {s: i for i, s in enumerate(SEASONS)}

    # -- rosters: star assignments plus per-team role players ----------
    def roster(team: str, season: str) -> list[int]:
        members = [
            pid
            for pid, star in enumerate(stars)
            if star.teams.get(season) == team
        ]
        members.extend(role_ids[team])
        return members

    # -- team strengths drive win probabilities ------------------------
    strengths: dict[tuple[str, str], float] = {}
    for season in SEASONS:
        gsw_target = GSW_WINS[season] / 82.0
        for team in TEAMS:
            if team == "GSW":
                strengths[(team, season)] = gsw_target
            else:
                strengths[(team, season)] = float(
                    np.clip(rng.normal(0.5, 0.08), 0.25, 0.75)
                )

    # -- games ----------------------------------------------------------
    # A full 82-game schedule for 8 teams is 328 games per season; the
    # scale factor sets the per-season target and the round-robin loop is
    # truncated once it is reached (fine-grained scaling).
    full_season_games = 82 * len(TEAMS) // 2
    target_games = max(len(TEAMS) * 2, int(round(scale * full_season_games)))
    games_per_round = len(TEAMS) * (len(TEAMS) - 1)
    rounds = -(-target_games // games_per_round)  # ceil
    game_rows: list[tuple] = []
    tgs_rows: list[tuple] = []
    pgs_rows: list[tuple] = []
    lineup_rows: list[tuple] = []
    lineup_player_rows: list[tuple] = []
    lgs_rows: list[tuple] = []

    lineup_id_counter = 0
    lineups: dict[tuple[str, str], list[tuple[int, list[int]]]] = {}

    def lineups_for(team: str, season: str) -> list[tuple[int, list[int]]]:
        nonlocal lineup_id_counter
        key = (team, season)
        if key not in lineups:
            members = roster(team, season)
            built = []
            for _ in range(3):
                squad = list(
                    rng.choice(members, size=min(5, len(members)), replace=False)
                )
                built.append((lineup_id_counter, [int(p) for p in squad]))
                lineup_id_counter += 1
            # GSW from 2014-15 on: a dedicated Green+Thompson lineup that
            # plays heavy minutes (the paper's Ω2 pair-of-players signal).
            if team == "GSW" and season_index[season] >= 5:
                green = next(
                    i for i, s in enumerate(stars)
                    if s.name == "Draymond Green"
                )
                klay = next(
                    i for i, s in enumerate(stars)
                    if s.name == "Klay Thompson"
                )
                others = [
                    p for p in members if p not in (green, klay)
                ][:3]
                built.append(
                    (lineup_id_counter, [green, klay] + [int(p) for p in others])
                )
                lineup_id_counter += 1
            lineups[key] = built
        return lineups[key]

    for season in SEASONS:
        start_year = 2009 + season_index[season]
        day_counter = 0
        season_games = 0
        for round_no in range(rounds):
            for hi, home in enumerate(TEAMS):
                for away in TEAMS:
                    if home == away:
                        continue
                    if season_games >= target_games:
                        continue
                    season_games += 1
                    day_counter += 1
                    month = 10 + (day_counter // 28) % 9
                    year = start_year if month >= 10 else start_year + 1
                    if month > 12:
                        month -= 12
                    day = 1 + day_counter % 28
                    game_date = f"{year:04d}-{month:02d}-{day:02d}"

                    sh = strengths[(home, season)]
                    sa = strengths[(away, season)]
                    p_home = np.clip(0.5 + (sh - sa) + 0.06, 0.05, 0.95)
                    home_wins = rng.random() < p_home
                    winner = home if home_wins else away

                    base_pts = {
                        "GSW": 104 + 2.2 * season_index[season],
                    }.get(home, 100.0)
                    home_pts = int(rng.normal(base_pts + (4 if home_wins else -2), 7))
                    away_base = 104 + 2.2 * season_index[season] if away == "GSW" else 100
                    away_pts = int(
                        rng.normal(away_base + (4 if not home_wins else -2), 7)
                    )
                    if home_wins and home_pts <= away_pts:
                        home_pts = away_pts + int(rng.integers(1, 9))
                    if not home_wins and away_pts <= home_pts:
                        away_pts = home_pts + int(rng.integers(1, 9))
                    home_poss = int(rng.normal(99, 4))
                    away_poss = int(rng.normal(99, 4))
                    game_rows.append(
                        (
                            game_date,
                            team_index[home],
                            team_index[away],
                            home_pts,
                            away_pts,
                            home_poss,
                            away_poss,
                            team_index[winner],
                            season_index[season],
                        )
                    )

                    for team, pts, poss in (
                        (home, home_pts, home_poss),
                        (away, away_pts, away_poss),
                    ):
                        assists = rng.normal(
                            GSW_ASSISTS[season] if team == "GSW" else 21.5, 2.2
                        )
                        assists = max(10, int(assists))
                        assistpoints = int(assists * rng.normal(2.35, 0.1))
                        fg3m = max(2, int(rng.normal(
                            8 + (4 if team == "GSW" and
                                 season_index[season] >= 5 else 0), 2.5)))
                        fg3pct = float(np.clip(rng.normal(
                            0.36 + (0.035 if team == "GSW" and
                                    season_index[season] >= 5 else 0.0),
                            0.05), 0.15, 0.62))
                        fg2m = max(10, int(rng.normal(28, 4)))
                        rebounds = max(20, int(rng.normal(43, 4)))
                        offreb = max(2, int(rebounds * rng.uniform(0.18, 0.3)))
                        tgs_rows.append(
                            (
                                team_index[team],
                                game_date,
                                team_index[home],
                                pts,
                                poss,
                                fg2m,
                                float(np.clip(rng.normal(0.48, 0.04), 0.3, 0.65)),
                                fg3m,
                                fg3pct,
                                assists,
                                rebounds,
                                rebounds - offreb,
                                offreb,
                                assistpoints,
                                float(np.clip(rng.normal(0.52, 0.04), 0.35, 0.68)),
                                float(np.clip(rng.normal(0.55, 0.04), 0.38, 0.7)),
                                float(np.clip(
                                    rng.normal(0.55, 0.08), 0.25, 0.85)),
                            )
                        )

                    # player_game_stats for both rosters
                    for team in (home, away):
                        for pid in roster(team, season):
                            if pid < len(stars):
                                star = stars[pid]
                                mean_pts = star.points.get(season, 8.0)
                                minutes = float(
                                    np.clip(rng.normal(
                                        34 if mean_pts >= 18 else
                                        (30 if mean_pts >= 10 else 18),
                                        4), 4, 48)
                                )
                            else:
                                mean_pts = 6.5
                                minutes = float(np.clip(rng.normal(16, 5), 2, 40))
                            pts = max(0, int(rng.normal(mean_pts, 4.5)))
                            usage = float(np.clip(
                                rng.normal(12 + mean_pts * 0.6, 2.5), 4, 42))
                            tspct = float(np.clip(
                                rng.normal(0.5 + mean_pts * 0.003, 0.07),
                                0.2, 0.85))
                            efgpct = float(np.clip(
                                rng.normal(0.48 + mean_pts * 0.002, 0.07),
                                0.2, 0.8))
                            assists_p = max(0, int(rng.normal(
                                3 + (3 if mean_pts > 20 else 0), 2)))
                            rebounds_p = max(0, int(rng.normal(
                                5 if pid < len(stars) and
                                stars[pid].name == "Draymond Green" else 3.5,
                                2)))
                            pgs_rows.append(
                                (
                                    pid,
                                    game_date,
                                    team_index[home],
                                    pts,
                                    minutes,
                                    usage,
                                    tspct,
                                    efgpct,
                                    assists_p,
                                    rebounds_p,
                                )
                            )

                    # lineup_game_stats for both teams' lineups
                    for team in (home, away):
                        for lid, squad in lineups_for(team, season):
                            is_pair_lineup = (
                                team == "GSW"
                                and season_index[season] >= 5
                                and squad[:2]
                                and pid_names(stars, squad[:2])
                                == ["Draymond Green", "Klay Thompson"]
                            )
                            mp = float(np.clip(
                                rng.normal(21 if is_pair_lineup else 11, 4),
                                1, 38))
                            lgs_rows.append(
                                (
                                    lid,
                                    game_date,
                                    team_index[home],
                                    mp,
                                    int(rng.normal(45, 8)),
                                    int(rng.normal(45, 8)),
                                )
                            )

    for (team, season), built in lineups.items():
        for lid, squad in built:
            lineup_rows.append((lid, team_index[team]))
            for pid in squad:
                lineup_player_rows.append((lid, pid))

    db.create_table(
        _schema(
            "game",
            {
                "game_date": ColumnType.TEXT,
                "home_id": ColumnType.INT,
                "away_id": ColumnType.INT,
                "home_points": ColumnType.INT,
                "away_points": ColumnType.INT,
                "home_possessions": ColumnType.INT,
                "away_possessions": ColumnType.INT,
                "winner_id": ColumnType.INT,
                "season_id": ColumnType.INT,
            },
            ("game_date", "home_id"),
        ),
        game_rows,
    )
    db.create_table(
        _schema(
            "team_game_stats",
            {
                "team_id": ColumnType.INT,
                "game_date": ColumnType.TEXT,
                "home_id": ColumnType.INT,
                "points": ColumnType.INT,
                "offposs": ColumnType.INT,
                "fg_two_m": ColumnType.INT,
                "fg_two_pct": ColumnType.FLOAT,
                "fg_three_m": ColumnType.INT,
                "fg_three_pct": ColumnType.FLOAT,
                "assists": ColumnType.INT,
                "rebounds": ColumnType.INT,
                "defrebounds": ColumnType.INT,
                "offrebounds": ColumnType.INT,
                "assistpoints": ColumnType.INT,
                "efgpct": ColumnType.FLOAT,
                "tspct": ColumnType.FLOAT,
                "assisted_two_spct": ColumnType.FLOAT,
            },
            ("team_id", "game_date", "home_id"),
        ),
        tgs_rows,
    )
    db.create_table(
        _schema(
            "player_game_stats",
            {
                "player_id": ColumnType.INT,
                "game_date": ColumnType.TEXT,
                "home_id": ColumnType.INT,
                "points": ColumnType.INT,
                "minutes": ColumnType.FLOAT,
                "usage": ColumnType.FLOAT,
                "tspct": ColumnType.FLOAT,
                "efgpct": ColumnType.FLOAT,
                "assists": ColumnType.INT,
                "rebounds": ColumnType.INT,
            },
            ("player_id", "game_date", "home_id"),
        ),
        pgs_rows,
    )

    # -- salaries & tenures ----------------------------------------------
    salary_rows = []
    for pid, star in enumerate(stars):
        for season, amount in star.salary.items():
            salary_rows.append((pid, season_index[season], float(amount)))
    for team in TEAMS:
        for pid in role_ids[team]:
            for season in SEASONS:
                amount = float(
                    rng.uniform(900_000, 3_000_000)
                    * (1.04 ** season_index[season])
                )
                salary_rows.append((pid, season_index[season], amount))
    db.create_table(
        _schema(
            "player_salary",
            {
                "player_id": ColumnType.INT,
                "season_id": ColumnType.INT,
                "salary": ColumnType.FLOAT,
            },
            ("player_id", "season_id"),
        ),
        salary_rows,
    )

    play_for_rows = []
    for pid, star in enumerate(stars):
        spans: list[tuple[str, str, str]] = []
        for season in SEASONS:
            team = star.teams.get(season)
            if team is None:
                continue
            if spans and spans[-1][0] == team:
                spans[-1] = (team, spans[-1][1], season)
            else:
                spans.append((team, season, season))
        for team, first, last in spans:
            start = f"{2009 + season_index[first]}-10-01"
            end = f"{2010 + season_index[last]}-04-12"
            play_for_rows.append((pid, team_index[team], start, end))
    for team in TEAMS:
        for pid in role_ids[team]:
            play_for_rows.append(
                (pid, team_index[team], "2009-10-01", "2019-04-09")
            )
    db.create_table(
        _schema(
            "play_for",
            {
                "player_id": ColumnType.INT,
                "team_id": ColumnType.INT,
                "date_start": ColumnType.TEXT,
                "date_end": ColumnType.TEXT,
            },
            ("player_id", "team_id", "date_start"),
        ),
        play_for_rows,
    )

    db.create_table(
        _schema(
            "lineup",
            {"lineup_id": ColumnType.INT, "team_id": ColumnType.INT},
            ("lineup_id",),
        ),
        lineup_rows,
    )
    db.create_table(
        _schema(
            "lineup_player",
            {"lineup_id": ColumnType.INT, "player_id": ColumnType.INT},
            ("lineup_id", "player_id"),
        ),
        sorted(set(lineup_player_rows)),
    )
    db.create_table(
        _schema(
            "lineup_game_stats",
            {
                "lineup_id": ColumnType.INT,
                "game_date": ColumnType.TEXT,
                "home_id": ColumnType.INT,
                "mp": ColumnType.FLOAT,
                "tmposs": ColumnType.INT,
                "oppo_tmposs": ColumnType.INT,
            },
            ("lineup_id", "game_date", "home_id"),
        ),
        lgs_rows,
    )

    _add_nba_foreign_keys(db)
    return db


def pid_names(stars: list[_PlayerSpec], pids: list[int]) -> list[str]:
    """Names of star player ids (role players have ids >= len(stars))."""
    names = []
    for pid in pids:
        if pid < len(stars):
            names.append(stars[pid].name)
        else:
            names.append(f"role{pid}")
    return sorted(names)


def _add_nba_foreign_keys(db: Database) -> None:
    db.add_foreign_key("game", ("home_id",), "team", ("team_id",))
    db.add_foreign_key("game", ("away_id",), "team", ("team_id",))
    db.add_foreign_key("game", ("winner_id",), "team", ("team_id",))
    db.add_foreign_key("game", ("season_id",), "season", ("season_id",))
    db.add_foreign_key(
        "team_game_stats", ("game_date", "home_id"), "game",
        ("game_date", "home_id"),
    )
    db.add_foreign_key("team_game_stats", ("team_id",), "team", ("team_id",))
    db.add_foreign_key(
        "player_game_stats", ("game_date", "home_id"), "game",
        ("game_date", "home_id"),
    )
    db.add_foreign_key(
        "player_game_stats", ("player_id",), "player", ("player_id",)
    )
    db.add_foreign_key(
        "player_salary", ("player_id",), "player", ("player_id",)
    )
    db.add_foreign_key(
        "player_salary", ("season_id",), "season", ("season_id",)
    )
    db.add_foreign_key("play_for", ("player_id",), "player", ("player_id",))
    db.add_foreign_key("play_for", ("team_id",), "team", ("team_id",))
    db.add_foreign_key("lineup", ("team_id",), "team", ("team_id",))
    db.add_foreign_key("lineup_player", ("lineup_id",), "lineup", ("lineup_id",))
    db.add_foreign_key(
        "lineup_player", ("player_id",), "player", ("player_id",)
    )
    db.add_foreign_key(
        "lineup_game_stats", ("lineup_id",), "lineup", ("lineup_id",)
    )
    db.add_foreign_key(
        "lineup_game_stats", ("game_date", "home_id"), "game",
        ("game_date", "home_id"),
    )


def nba_schema_graph(db: Database) -> SchemaGraph:
    """The NBA schema graph: FK edges plus the lineup_player self-edge.

    The self-edge realizes the paper's Figure 3 trick of joining
    ``lineup_player`` with itself on ``lineup_id`` to relate players in
    the same lineup.
    """
    graph = SchemaGraph.from_database(db)
    graph.add_edge("lineup_player", "lineup_player", [[("lineup_id", "lineup_id")]])
    return graph


def load_nba(
    scale: float = 1.0, seed: int = 11
) -> tuple[Database, SchemaGraph]:
    """Generate the NBA database and its schema graph."""
    db = generate_nba(scale=scale, seed=seed)
    return db, nba_schema_graph(db)
