"""Typed request/response objects of the session API.

:class:`ExplanationRequest` is the unit of work a
:class:`~repro.api.session.CajadeSession` accepts: the SQL (or an
already-parsed :class:`~repro.db.query.Query`), the user question, and
per-request budget knobs that override the session's base
:class:`~repro.core.config.CajadeConfig` for this request only.
:class:`ExplanationResponse` extends the classic
:class:`~repro.core.explainer.ExplanationResult` (same ``describe`` /
``to_json`` / ``top`` surface, so responses compare byte-identical
against one-shot results) with the request that produced it, the query
fingerprint, whether the session was already warm for that query, and a
wall-clock/timing breakdown.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..core.config import CajadeConfig
from ..core.explainer import ExplanationResult
from ..core.question import ComparisonQuestion, OutlierQuestion
from ..db.query import Query

_CONFIG_FIELDS = {f.name for f in fields(CajadeConfig)}

# Knobs baked into a session's per-query engine at registration time; a
# per-request override would silently not apply, so it is rejected.
_SESSION_LEVEL_FIELDS = frozenset({"apt_cache_mb", "join_memo_entries"})


def query_fingerprint(sql: str | Query) -> str:
    """A stable identity for one aggregate query within a session.

    SQL text is normalized by whitespace collapse only — the parser is
    the authority on deeper equivalence, and two spellings of the same
    query merely warm two session slots (correctness is unaffected).
    Parsed :class:`Query` objects fall back to their original ``text``
    when the parser recorded it, else to the dataclass repr.
    """
    if isinstance(sql, Query):
        text = sql.text or repr(sql)
    else:
        text = sql
    normalized = " ".join(text.split())
    return hashlib.blake2b(
        normalized.encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class ExplanationRequest:
    """One user question against one registered aggregate query.

    Budget knobs (``top_k``, ``max_join_edges``, ``f1_sample_rate``,
    ``workers``) are the common per-request overrides; any other
    :class:`CajadeConfig` field can be overridden through ``overrides``
    (a mapping at construction time, stored as a sorted tuple so
    requests stay frozen and comparable by value — note the question's
    tuple dicts keep the request itself unhashable).  ``None`` means
    "inherit from the session config".
    """

    sql: str | Query
    question: ComparisonQuestion | OutlierQuestion
    top_k: int | None = None
    max_join_edges: int | None = None
    f1_sample_rate: float | None = None
    workers: int | None = None
    overrides: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.overrides, Mapping):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )
        for name, _value in self.overrides:
            if name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"unknown CajadeConfig override {name!r}"
                )
            if name in _SESSION_LEVEL_FIELDS:
                raise ValueError(
                    f"{name!r} is a session-level knob (it shapes the "
                    "long-lived engine); set it on the CajadeConfig "
                    "passed to CajadeSession instead"
                )
        if not isinstance(
            self.question, (ComparisonQuestion, OutlierQuestion)
        ):
            raise TypeError(
                "question must be a ComparisonQuestion or OutlierQuestion, "
                f"got {type(self.question).__name__}"
            )

    @property
    def fingerprint(self) -> str:
        """The query fingerprint this request resolves against."""
        return query_fingerprint(self.sql)

    def config_for(self, base: CajadeConfig) -> CajadeConfig:
        """The effective config: session base + this request's knobs."""
        changes: dict[str, Any] = dict(self.overrides)
        if self.top_k is not None:
            changes["top_k"] = self.top_k
        if self.max_join_edges is not None:
            changes["max_join_edges"] = self.max_join_edges
        if self.f1_sample_rate is not None:
            changes["f1_sample_rate"] = self.f1_sample_rate
        if self.workers is not None:
            changes["workers"] = self.workers
        if not changes:
            return base
        return base.with_overrides(**changes)

    def describe(self) -> str:
        knobs = dict(self.overrides)
        for name in ("top_k", "max_join_edges", "f1_sample_rate", "workers"):
            value = getattr(self, name)
            if value is not None:
                knobs[name] = value
        suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(knobs.items())) + "]"
            if knobs
            else ""
        )
        return f"{self.question.describe()}{suffix}"


@dataclass
class ExplanationResponse(ExplanationResult):
    """An :class:`ExplanationResult` plus session-level provenance.

    ``engine`` (inherited) holds the *per-request* engine counters — the
    delta this request produced on the session's long-lived engine — so
    a warm repeat shows ``steps_reused`` growth and zero
    ``steps_computed``.  ``session_engine`` is the engine's cumulative
    lifetime view.  ``warm_query`` reports whether the session already
    held the query's parsed/provenance state when the request arrived.
    """

    request: ExplanationRequest | None = None
    fingerprint: str = ""
    warm_query: bool = False
    total_seconds: float = 0.0
    session_engine: Any = None
    mined_graphs_reused: int = 0

    @property
    def breakdown(self) -> dict[str, float]:
        """Step → seconds timing breakdown of this request."""
        return self.timer.breakdown()

    def describe_timing(self) -> str:
        return self.timer.format_table()
