"""Long-lived explanation sessions: the canonical way to drive CaJaDE.

The paper's system is interactive — an analyst registers a database
once, then asks many user questions against the same aggregate query.
:class:`CajadeSession` matches that shape: it owns the schema graph, a
parsed-query/provenance cache keyed by SQL fingerprint, and **one**
:class:`~repro.engine.MaterializationEngine` per registered query whose
prefix trie and join-result cache persist across questions.  Question
N+1 on a registered query therefore hits the warm trie instead of
re-parsing SQL, recomputing provenance, re-enumerating join graphs and
rematerializing every APT from scratch — the session amortizes exactly
the preprocessing the one-shot :class:`~repro.core.explainer
.CajadeExplainer` used to discard after every call.  On top of the
trie, the session memoizes per-graph mining finalists keyed by the
question's ordered row-id-set fingerprints and the mining-relevant
config, so *repeating* a question (or re-asking it with a different
``workers`` — the only mining-neutral knob) skips mining too and
reduces to reranking.

Results are *byte-identical* to the one-shot path at any warmth: cached
state only changes where intermediate relations and finalists come from
(the same canonical plans execute, the same per-graph generators drive
mining), never what they contain.

Three entry points::

    session = CajadeSession(db, schema_graph, config)

    # typed request/response
    response = session.explain(ExplanationRequest(sql, question))

    # fluent builder
    response = session.ask(sql).why_higher(t1, t2).top_k(5).run()

    # batched: shares one worker pool, orders requests for trie locality
    responses = session.explain_batch([request1, request2, ...])
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Iterable

import numpy as np

from ..core.apt import AugmentedProvenanceTable
from ..core.config import CajadeConfig
from ..core.diversity import select_diverse_top_k
from ..core.enumeration import EnumerationStats, enumerate_join_graphs
from ..core.explainer import Explanation
from ..core.join_graph import JoinGraph
from ..core.mining import MinedPattern, mine_apt
from ..core.pattern import Pattern
from ..core.quality import PatternSupport, QualityEvaluator, QualityStats
from ..core.question import (
    ComparisonQuestion,
    OutlierQuestion,
    ResolvedQuestion,
)
from ..core.schema_graph import SchemaGraph
from ..core.timing import (
    APT_CACHE_ENTRIES,
    APT_CACHE_EVICTIONS,
    APT_CACHE_HITS,
    APT_CACHE_MEDIAN_ENTRY_BYTES,
    APT_CACHE_MISSES,
    JG_ENUMERATION,
    JOIN_MEMO_HITS,
    JOIN_PERMUTATION_REUSES,
    JOIN_SEARCHSORTED_PROBES,
    JOIN_WINDOWS_BUILT,
    MATERIALIZE_APTS,
    StepTimer,
)
from ..db.database import Database
from ..db.parser import parse_sql
from ..db.provenance import ProvenanceTable
from ..db.query import Query
from ..engine import (
    EngineStats,
    MaterializationEngine,
    graph_rng,
    restriction_fingerprint,
    run_streaming,
)
from .types import ExplanationRequest, ExplanationResponse, query_fingerprint

# Config fields that do not change mining output: ``workers``
# preserves results exactly (per-graph generators), the engine-level
# cache knobs only move bytes around, and the scoring-kernel /
# late-materialization / histogram-forest / join-strategy knobs are
# byte-identical by construction (asserted by tests).  Everything else
# keys the session's per-graph mining memo.
_MINING_NEUTRAL_FIELDS = frozenset(
    {
        "workers",
        "apt_cache_mb",
        "join_memo_entries",
        "use_kernel",
        "kernel_cache_mb",
        "kernel_verify",
        "use_code_lca",
        "late_materialization",
        "use_hist_forest",
        "join_strategy",
    }
)


def mining_config_key(config: CajadeConfig) -> tuple:
    """The output-relevant projection of a config, as a hashable key.

    Two configs with equal keys produce byte-identical ranked
    explanations for the same question: the excluded fields are exactly
    the mining-neutral knobs (worker count, cache budgets, the
    byte-identical kernel/storage/forest toggles).  This key namespaces
    the session's per-graph mining memo, :meth:`CajadeSession
    .explain_batch`'s duplicate-request coalescing, and the serving
    layer's cross-request response cache.
    """
    return tuple(
        (name, value)
        for name, value in sorted(vars(config).items())
        if name not in _MINING_NEUTRAL_FIELDS
    )


# Backwards-compatible private alias (pre-serving-layer name).
_mining_config_key = mining_config_key


@dataclass
class SessionStats:
    """Cross-request bookkeeping of one session's lifetime."""

    requests: int = 0
    batches: int = 0
    requests_deduped: int = 0
    queries_registered: int = 0
    query_state_hits: int = 0
    enumeration_hits: int = 0
    queries_evicted: int = 0
    mined_graphs_computed: int = 0
    mined_graphs_reused: int = 0

    def describe(self) -> str:
        return (
            f"session: {self.requests} requests "
            f"({self.batches} batches, "
            f"{self.requests_deduped} deduped), "
            f"{self.queries_registered} queries registered, "
            f"{self.query_state_hits} query-state hits, "
            f"{self.enumeration_hits} enumeration hits, "
            f"{self.mined_graphs_reused} mined graphs reused / "
            f"{self.mined_graphs_computed} computed, "
            f"{self.queries_evicted} evicted"
        )


class _QueryState:
    """Everything the session keeps per registered aggregate query."""

    def __init__(
        self,
        fingerprint: str,
        query: Query,
        pt: ProvenanceTable,
        engine: MaterializationEngine,
    ):
        self.fingerprint = fingerprint
        self.query = query
        self.pt = pt
        self.engine = engine
        # (λ#edges, λqcost, pk-connectivity) -> (join graphs, stats);
        # the only config fields enumeration reads.
        self.enumerations: dict[
            tuple, tuple[list[JoinGraph], EnumerationStats]
        ] = {}
        # Per-graph mining memo: (enumeration key, ordered row-id-set
        # fingerprints of the question sides, mining config) -> graph
        # index -> exact finalists.  Mining is fully deterministic given
        # those inputs (each graph mines with graph_rng(seed, index)),
        # so reuse is byte-identical by construction.  LRU over keys.
        self.mining_memo: "OrderedDict[tuple, dict[int, list]]" = (
            OrderedDict()
        )


class CajadeSession:
    """A persistent CaJaDE service bound to one database.

    Args:
        db: the database all session queries run against.
        schema_graph: permissible joins; defaults to the FK-derived
            graph, computed once for the session's lifetime.
        config: base λ parameters; per-request knobs override copies of
            it, never the session's own.
        max_cached_queries: how many registered queries (parsed query +
            provenance table + warm engine) the session keeps, LRU.
        max_cached_minings: how many (question, mining-config) slots of
            per-graph mining finalists each query keeps, LRU; repeats of
            a question skip mining entirely and stay byte-identical
            (mining is deterministic per graph).
    """

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
        max_cached_queries: int = 8,
        max_cached_minings: int = 32,
    ):
        if max_cached_queries < 1:
            raise ValueError("max_cached_queries must be >= 1")
        if max_cached_minings < 0:
            raise ValueError("max_cached_minings must be >= 0")
        self._max_cached_minings = max_cached_minings
        self.db = db
        self.schema_graph = schema_graph or SchemaGraph.from_database(db)
        self.config = config or CajadeConfig()
        self._max_cached_queries = max_cached_queries
        self._queries: "OrderedDict[str, _QueryState]" = OrderedDict()
        self._stats = SessionStats()

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "CajadeSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drop all cached query state (the session stays usable)."""
        self._queries.clear()

    # -- query registration ---------------------------------------------
    def register(
        self, sql: str | Query, timer: StepTimer | None = None
    ) -> str:
        """Parse ``sql`` and compute its provenance now; return its
        fingerprint.  Idempotent — re-registering refreshes LRU recency
        only."""
        return self._state(sql, timer)[0].fingerprint

    def _state(
        self, sql: str | Query, timer: StepTimer | None = None
    ) -> tuple[_QueryState, bool]:
        """The (possibly cached) query state, and whether it was warm."""
        fingerprint = query_fingerprint(sql)
        state = self._queries.get(fingerprint)
        if state is not None:
            self._queries.move_to_end(fingerprint)
            self._stats.query_state_hits += 1
            return state, True

        query = sql if isinstance(sql, Query) else parse_sql(sql)
        timer = timer or StepTimer()
        with timer.step(MATERIALIZE_APTS):
            pt = ProvenanceTable.compute(
                query,
                self.db,
                late_materialization=self.config.late_materialization,
            )
        engine = MaterializationEngine(
            pt,
            self.db,
            cache_mb=self.config.apt_cache_mb,
            join_memo_entries=self.config.join_memo_entries,
            late_materialization=self.config.late_materialization,
            join_strategy=self.config.join_strategy,
        )
        state = _QueryState(fingerprint, query, pt, engine)
        self._queries[fingerprint] = state
        self._stats.queries_registered += 1
        while len(self._queries) > self._max_cached_queries:
            self._queries.popitem(last=False)
            self._stats.queries_evicted += 1
        return state, False

    def _join_graphs(
        self, state: _QueryState, config: CajadeConfig, timer: StepTimer
    ) -> tuple[list[JoinGraph], EnumerationStats]:
        key = (
            config.max_join_edges,
            config.qcost_threshold,
            config.check_pk_connectivity,
        )
        cached = state.enumerations.get(key)
        if cached is not None:
            self._stats.enumeration_hits += 1
            return cached
        stats = EnumerationStats()
        with timer.step(JG_ENUMERATION):
            join_graphs = list(
                enumerate_join_graphs(
                    self.schema_graph,
                    state.query,
                    state.pt,
                    self.db,
                    config,
                    stats=stats,
                )
            )
        state.enumerations[key] = (join_graphs, stats)
        return join_graphs, stats

    # -- asking questions -----------------------------------------------
    def ask(self, sql: str | Query) -> "QuestionBuilder":
        """Start a fluent question against ``sql``."""
        return QuestionBuilder(self, sql)

    def explain(
        self,
        request: ExplanationRequest | str | Query,
        question: ComparisonQuestion | OutlierQuestion | None = None,
        *,
        timer: StepTimer | None = None,
        top_k: int | None = None,
        max_join_edges: int | None = None,
        f1_sample_rate: float | None = None,
        workers: int | None = None,
        overrides: dict[str, Any] | None = None,
    ) -> ExplanationResponse:
        """Answer one request (or ``sql, question`` plus knobs)."""
        if not isinstance(request, ExplanationRequest):
            if question is None:
                raise TypeError(
                    "explain(sql, question) needs a question when not "
                    "given an ExplanationRequest"
                )
            request = ExplanationRequest(
                sql=request,
                question=question,
                top_k=top_k,
                max_join_edges=max_join_edges,
                f1_sample_rate=f1_sample_rate,
                workers=workers,
                overrides=tuple(sorted((overrides or {}).items())),
            )
        elif question is not None:
            raise TypeError(
                "pass either an ExplanationRequest or (sql, question), "
                "not both"
            )
        return self._execute(request, timer=timer)

    def explain_batch(
        self,
        requests: Iterable[ExplanationRequest],
        timer: StepTimer | None = None,
    ) -> list[ExplanationResponse]:
        """Answer many requests, returned in input order.

        Requests are *executed* grouped by query fingerprint and then by
        question (first-seen order), so repeats land on a trie their
        predecessor just warmed; one worker pool (sized to the largest
        per-request ``workers``) is shared across the whole batch
        instead of being rebuilt per request.

        Duplicate requests — same query fingerprint, question and
        output-relevant config (:func:`mining_config_key`, so knobs like
        ``workers`` that never change results don't split the group) —
        are computed once and the response object fanned out to every
        duplicate slot, matching the serving layer's in-flight
        coalescing semantics.  Fan-out is byte-identical by construction
        (the shared computation is exactly what each duplicate would
        have produced); the shared response's ``request``/timing fields
        describe the first occurrence.
        """
        requests = list(requests)
        self._stats.batches += 1

        fp_rank: dict[str, int] = {}
        question_rank: dict[tuple[str, str], int] = {}
        first_of: dict[tuple, int] = {}
        duplicate_of: dict[int, int] = {}
        keyed: list[tuple[int, int, int]] = []
        max_workers = 1
        for index, request in enumerate(requests):
            fingerprint = request.fingerprint
            config = request.config_for(self.config)
            rkey = (
                fingerprint,
                repr(request.question),
                mining_config_key(config),
            )
            first = first_of.setdefault(rkey, index)
            if first != index:
                duplicate_of[index] = first
                self._stats.requests_deduped += 1
                continue
            fp_rank.setdefault(fingerprint, len(fp_rank))
            qkey = (fingerprint, repr(request.question))
            question_rank.setdefault(qkey, len(question_rank))
            keyed.append(
                (fp_rank[fingerprint], question_rank[qkey], index)
            )
            max_workers = max(max_workers, config.workers)

        responses: list[ExplanationResponse | None] = [None] * len(requests)
        pool = (
            ThreadPoolExecutor(max_workers=max_workers)
            if max_workers > 1
            else None
        )
        try:
            for _fp, _q, index in sorted(keyed):
                responses[index] = self._execute(
                    requests[index], timer=timer, pool=pool
                )
        finally:
            if pool is not None:
                pool.shutdown()
        for index, first in duplicate_of.items():
            responses[index] = responses[first]
        return responses  # type: ignore[return-value]

    # -- the pipeline ----------------------------------------------------
    def _execute(
        self,
        request: ExplanationRequest,
        timer: StepTimer | None = None,
        pool: ThreadPoolExecutor | None = None,
    ) -> ExplanationResponse:
        """Run the CaJaDE pipeline (paper Algorithms 1+2) for one request.

        Identical computation to the classic one-shot explainer; the
        session only changes where parsed queries, provenance tables,
        join-graph enumerations and APT intermediates come *from* (warm
        caches instead of recomputation), never their contents.
        """
        started = time.perf_counter()
        self._stats.requests += 1
        config = request.config_for(self.config)
        timer = timer or StepTimer()

        state, warm = self._state(request.sql, timer)
        engine = state.engine
        resolved = request.question.resolve(state.pt)
        restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])

        join_graphs, enumeration_stats = self._join_graphs(
            state, config, timer
        )

        # Per-graph mining memo slot for this exact (question split,
        # mining config).  Keyed by the *ordered* (t1, t2) row-id-set
        # fingerprints — two questions sharing a union but swapping
        # sides must not alias.
        enum_key = (
            config.max_join_edges,
            config.qcost_threshold,
            config.check_pk_connectivity,
        )
        mining_key = (
            enum_key,
            restriction_fingerprint(resolved.row_ids1),
            restriction_fingerprint(resolved.row_ids2),
            _mining_config_key(config),
        )
        memo = state.mining_memo.get(mining_key)
        if memo is None:
            memo = {}
            if self._max_cached_minings > 0:
                state.mining_memo[mining_key] = memo
                while len(state.mining_memo) > self._max_cached_minings:
                    state.mining_memo.popitem(last=False)
        else:
            state.mining_memo.move_to_end(mining_key)

        # Stream APTs out of the shared-prefix engine (trie order, so
        # graphs extending the same prefix reuse its cached
        # intermediate) straight into mining — serial runs hold one APT
        # at a time; a worker pool holds at most 2x workers.  Results
        # are keyed by enumeration index and merged in index order, so
        # the outcome is byte-identical for any schedule.
        engine_before = engine.stats.copy()

        def _nonempty_apts():
            iterator = engine.materialize_iter(
                join_graphs, restrict_row_ids=restrict
            )
            while True:
                with timer.step(MATERIALIZE_APTS):
                    item = next(iterator, None)
                if item is None:
                    return
                if item[1].num_rows > 0:
                    yield item

        def _mine_one(
            index: int, apt: AugmentedProvenanceTable
        ) -> tuple[StepTimer | None, list]:
            cached = memo.get(index)
            if cached is not None:
                return None, cached
            local_timer = StepTimer()
            rng = graph_rng(config.seed, index)
            mining = mine_apt(apt, resolved, config, rng, timer=local_timer)
            finalists = _exact_stats(apt, resolved, mining.patterns, config, rng)
            if self._max_cached_minings > 0:
                memo[index] = finalists
            return local_timer, finalists

        results_by_index = run_streaming(
            _nonempty_apts(), _mine_one, config.workers, pool=pool
        )
        collected: list[tuple[Pattern, float, tuple]] = []
        mined_graphs = len(results_by_index)
        mined_reused = 0
        for index in sorted(results_by_index):
            local_timer, finalists = results_by_index[index]
            if local_timer is None:
                mined_reused += 1
            else:
                timer.merge(local_timer)
            for mined, stats, support in finalists:
                collected.append(
                    (
                        mined.pattern,
                        stats.f_score,
                        (join_graphs[index], mined, stats, support),
                    )
                )

        self._stats.mined_graphs_reused += mined_reused
        self._stats.mined_graphs_computed += mined_graphs - mined_reused

        engine_delta = engine.stats.delta(engine_before)
        timer.count(APT_CACHE_HITS, engine_delta.steps_reused)
        timer.count(APT_CACHE_MISSES, engine_delta.steps_computed)
        if engine_delta.cache is not None:
            timer.count(APT_CACHE_EVICTIONS, engine_delta.cache.evictions)
            # End-of-request gauges over the trie's live population —
            # snapshots, not increments, so a timer shared across a
            # batch reports the latest state instead of a sum.
            timer.set_gauge(APT_CACHE_ENTRIES, engine_delta.cache.entries)
            timer.set_gauge(
                APT_CACHE_MEDIAN_ENTRY_BYTES,
                engine_delta.cache.median_entry_bytes,
            )
        if config.join_memo_entries > 0:
            timer.count(JOIN_MEMO_HITS, engine_delta.join_memo_hits)
        if self.config.join_strategy != "hash":
            timer.count(JOIN_WINDOWS_BUILT, engine_delta.windows_built)
            timer.count(
                JOIN_SEARCHSORTED_PROBES, engine_delta.searchsorted_probes
            )
            timer.count(
                JOIN_PERMUTATION_REUSES, engine_delta.permutation_reuses
            )

        if config.use_diversity:
            chosen = select_diverse_top_k(collected, config.top_k)
        else:
            chosen = sorted(
                collected, key=lambda c: (-c[1], c[0].describe())
            )[: config.top_k]

        explanations = []
        for _pattern, _score, payload in chosen:
            join_graph, mined, stats, support = payload
            explanations.append(
                Explanation(
                    join_graph=join_graph,
                    pattern=mined.pattern,
                    primary=mined.primary,
                    primary_label=resolved.label_for_key(mined.primary == 1),
                    stats=stats,
                    support=support,
                )
            )
        return ExplanationResponse(
            explanations=explanations,
            question=resolved,
            timer=timer,
            enumeration=enumeration_stats,
            join_graphs_mined=mined_graphs,
            engine=engine_delta,
            request=request,
            fingerprint=state.fingerprint,
            warm_query=warm,
            total_seconds=time.perf_counter() - started,
            session_engine=engine.stats.copy(),
            mined_graphs_reused=mined_reused,
        )

    # -- introspection ---------------------------------------------------
    @property
    def stats(self) -> SessionStats:
        """A snapshot of the session's cross-request counters."""
        return replace(self._stats)

    def engine_stats(self, sql: str | Query) -> EngineStats | None:
        """Cumulative engine counters for a registered query, if any."""
        state = self._queries.get(query_fingerprint(sql))
        return state.engine.stats.copy() if state is not None else None

    @property
    def registered_queries(self) -> list[str]:
        """Fingerprints of currently cached queries, oldest first."""
        return list(self._queries)


class QuestionBuilder:
    """Fluent construction of one :class:`ExplanationRequest`.

    Every method returns the builder, so a question reads as one chain::

        session.ask(sql).why_higher(t1, t2).top_k(5).workers(2).run()
    """

    def __init__(self, session: CajadeSession, sql: str | Query):
        self._session = session
        self._sql = sql
        self._question: ComparisonQuestion | OutlierQuestion | None = None
        self._knobs: dict[str, Any] = {}
        self._overrides: dict[str, Any] = {}

    # -- question forms --------------------------------------------------
    def compare(
        self, primary: dict[str, Any], secondary: dict[str, Any]
    ) -> "QuestionBuilder":
        """Why does output tuple ``primary`` differ from ``secondary``?"""
        self._question = ComparisonQuestion(primary, secondary)
        return self

    def why_higher(
        self, t1: dict[str, Any], t2: dict[str, Any]
    ) -> "QuestionBuilder":
        """Why is t1's aggregate higher than t2's?  (CaJaDE comparison
        questions are symmetric in mining — both sides get primaries —
        so this and :meth:`why_lower` differ only in how the analyst
        reads the answer.)"""
        return self.compare(t1, t2)

    def why_lower(
        self, t1: dict[str, Any], t2: dict[str, Any]
    ) -> "QuestionBuilder":
        """Why is t1's aggregate lower than t2's?"""
        return self.compare(t1, t2)

    def outlier(self, target: dict[str, Any]) -> "QuestionBuilder":
        """Why is ``target`` surprising versus the rest of the output?"""
        self._question = OutlierQuestion(target)
        return self

    why_outlier = outlier

    # -- budget knobs ------------------------------------------------------
    def top_k(self, k: int) -> "QuestionBuilder":
        self._knobs["top_k"] = k
        return self

    def edges(self, max_join_edges: int) -> "QuestionBuilder":
        self._knobs["max_join_edges"] = max_join_edges
        return self

    def f1_sample(self, rate: float) -> "QuestionBuilder":
        self._knobs["f1_sample_rate"] = rate
        return self

    def workers(self, workers: int) -> "QuestionBuilder":
        self._knobs["workers"] = workers
        return self

    def override(self, **fields: Any) -> "QuestionBuilder":
        """Override any other :class:`CajadeConfig` field by name."""
        self._overrides.update(fields)
        return self

    # -- terminals ---------------------------------------------------------
    def build(self) -> ExplanationRequest:
        if self._question is None:
            raise ValueError(
                "no question yet: call compare/why_higher/why_lower/"
                "outlier before build() or run()"
            )
        return ExplanationRequest(
            sql=self._sql,
            question=self._question,
            overrides=tuple(sorted(self._overrides.items())),
            **self._knobs,
        )

    def run(self, timer: StepTimer | None = None) -> ExplanationResponse:
        """Build the request and answer it on the owning session."""
        return self._session.explain(self.build(), timer=timer)

    explain = run


def _exact_stats(
    apt: AugmentedProvenanceTable,
    resolved: ResolvedQuestion,
    mined: list[MinedPattern],
    config: CajadeConfig,
    rng: np.random.Generator,
) -> list[tuple[MinedPattern, QualityStats, PatternSupport]]:
    """Re-evaluate a join graph's finalists exactly (no sampling).

    Mining may run on a λF1-samp sample; the reported supports
    (c1, a1), (c2, a2) and scores of returned explanations are exact.
    """
    if not mined:
        return []
    if config.f1_sample_rate >= 1.0:
        evaluator = None
    else:
        evaluator = QualityEvaluator(
            apt,
            resolved.row_ids1,
            resolved.row_ids2,
            sample_rate=1.0,
            rng=rng,
            use_kernel=config.use_kernel,
            kernel_cache_mb=config.kernel_cache_mb,
            verify_kernel=config.kernel_verify,
        )
    results = []
    for entry in mined:
        if evaluator is None:
            stats = entry.stats
            support = PatternSupport(
                covered1=entry.stats.tp
                if entry.primary == 1
                else entry.stats.fp,
                total1=len(resolved.row_ids1),
                covered2=entry.stats.fp
                if entry.primary == 1
                else entry.stats.tp,
                total2=len(resolved.row_ids2),
            )
        else:
            cov1, cov2 = evaluator.coverage_counts(entry.pattern)
            stats = evaluator.stats_from_counts(
                cov1, cov2, primary=entry.primary
            )
            support = PatternSupport(
                covered1=cov1,
                total1=len(resolved.row_ids1),
                covered2=cov2,
                total2=len(resolved.row_ids2),
            )
        results.append((entry, stats, support))
    return results
