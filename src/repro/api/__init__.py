"""The session-oriented public API (the canonical way to drive CaJaDE).

Layering: db → core → engine → **api** → cli.  This package owns the
long-lived :class:`CajadeSession` — schema graph computed once, parsed
queries/provenance cached by SQL fingerprint, one warm
:class:`~repro.engine.MaterializationEngine` per registered query — and
the typed :class:`ExplanationRequest` / :class:`ExplanationResponse`
objects individual questions travel in.  The legacy one-shot
:class:`~repro.core.explainer.CajadeExplainer` is a deprecated shim
over a one-request session.
"""

from .session import (
    CajadeSession,
    QuestionBuilder,
    SessionStats,
    mining_config_key,
)
from .types import (
    ExplanationRequest,
    ExplanationResponse,
    query_fingerprint,
)

__all__ = [
    "CajadeSession",
    "ExplanationRequest",
    "ExplanationResponse",
    "QuestionBuilder",
    "SessionStats",
    "mining_config_key",
    "query_fingerprint",
]
