"""Histogram-based frontier-at-a-time random forest on dictionary codes.

Accelerated twin of :class:`repro.ml.random_forest.RandomForestClassifier`
(the §3.1 relevance ranker) in its all-features-per-split configuration:

    HistRandomForestClassifier(n_estimators=t, max_depth=d,
                               max_samples=s, random_state=r).fit(X, y)

reproduces

    RandomForestClassifier(n_estimators=t, max_depth=d, max_samples=s,
                           max_features=X.shape[1], random_state=r).fit(X, y)

**bit for bit** — identical bootstrap samples, tree structures, split
thresholds, predictions and feature importances — while doing
asymptotically less work per split.  The reference learner re-sorts each
node's rows (``np.nanquantile``) and scans a rows x candidates boolean
matrix per feature per node; this learner:

- dictionary-encodes every column once per forest into dense value
  ranks over the union of bootstrap rows ("bins") — kernel ml-code
  columns are already dense integer codes and pass straight through on
  a sort-free ``np.bincount`` presence scan;
- grows ALL trees breadth-first in lockstep (frontier-at-a-time, the
  frontier spanning every tree): per depth, composite
  ``slot * stride + bin`` keys feed one ``np.bincount`` pass per
  feature chunk that builds every (tree, node, feature, bin) class
  histogram at once;
- recovers the reference learner's candidate thresholds — the
  node-local ``np.nanquantile`` cut points — exactly from cumulative
  histograms: an order statistic is a ``searchsorted`` into the
  cumulative counts, and the interpolation replicates numpy's
  virtual-index and ``_lerp`` arithmetic bit for bit;
- scores the Gini gain of every candidate split of every frontier node
  of every tree from the cumulative histograms with the reference
  expression, preserving float op order and the
  first-strict-improvement tie-breaks of the per-node reference loop;
- stores fitted trees as flat arrays-of-nodes
  (feature/threshold/left/right/prediction) with a fully vectorized
  level-by-level ``predict_proba``.

Bitwise equality holds because every float produced along the way —
node means (0/1 labels make ``np.mean`` an exact integer count divided
by the node size, the same IEEE division this learner performs on
histogram counts), quantile candidates, Gini gains, importance
contributions (replayed in the reference's depth-first preorder) — is
computed by the same numpy expressions over the same values.  Feature
subsampling is the one reference feature deliberately absent: it draws
rng per node in depth-first order, which no breadth-first learner can
replay, and for *relevance ranking* (the only thing §3.1 consumes) it
only adds noise; examining every feature costs this learner almost
nothing because each depth's histogram pass covers all features anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .decision_tree import gini_impurity

# Reference learner's strict-improvement floor for accepting a split.
_MIN_GAIN = 1e-12

# Integral columns whose value range fits under this cap are binned with
# a sort-free presence bincount instead of an np.unique sort.
_INT_RANGE_CAP = 1 << 20

# Budget of composite (slot, feature, bin) keys per bincount call;
# features are chunked so histogram buffers stay a few tens of MB at
# worst even at the deepest, widest frontier.
_CHUNK_KEYS = 1 << 22

# Per-(slot, feature) offset floor for the batched searchsorted over
# cumulative histograms; the multiplier used is the max of this and the
# bootstrap sample size, so offsets always exceed any per-node count.
_SEG = 1 << 21


@dataclass
class BinnedMatrix:
    """Per-forest dictionary encoding of a float feature matrix.

    ``bins[i, j]`` is the dense value rank of ``X[i, j]`` among the
    finite values of column ``j``: ``-1`` for ``-inf`` (below every
    threshold), ``0..n_bins[j]-1`` the rank into ``uniques[j]``, and
    ``n_bins[j]`` for ``NaN``/``+inf`` (never ``<=`` any threshold).
    """

    bins: np.ndarray  # (n_rows, n_features) int32
    uniques: list[np.ndarray]  # per feature, sorted finite values
    n_bins: np.ndarray  # (n_features,) int64, len(uniques[j])

    @property
    def n_features(self) -> int:
        return self.bins.shape[1]


def bin_matrix(
    X: np.ndarray, categorical_features: set[int] | None = None
) -> BinnedMatrix:
    """Dictionary-encode each column of ``X`` into dense value ranks.

    ``categorical_features`` marks columns already holding dictionary
    codes (e.g. the mining kernel's ``ml_codes``): they are trusted to
    be integral and take the sort-free bincount path directly, so the
    codes pass straight through as bins (re-ranked only to drop unused
    code slots).  Other columns take the same path when their finite
    values are integral with a modest range, and fall back to one
    ``np.unique`` sort per column otherwise.  The encoding is exact —
    one bin per distinct finite value — so no split information is
    lost to quantization.
    """
    X = np.asarray(X, dtype=np.float64)
    n_rows, n_features = X.shape
    categorical_features = categorical_features or set()
    bins = np.empty((n_rows, n_features), dtype=np.int32)
    uniques: list[np.ndarray] = []
    for j in range(n_features):
        col = X[:, j]
        finite = np.isfinite(col)
        fin_vals = col[finite]
        if len(fin_vals) == 0:
            uniq = np.empty(0, dtype=np.float64)
            fin_bins = np.empty(0, dtype=np.int64)
        else:
            lo = float(fin_vals.min())
            hi = float(fin_vals.max())
            integral = j in categorical_features or bool(
                np.all(np.floor(fin_vals) == fin_vals)
            )
            if integral and hi - lo + 1.0 <= _INT_RANGE_CAP:
                ints = fin_vals.astype(np.int64) - int(lo)
                present = (
                    np.bincount(ints, minlength=int(hi) - int(lo) + 1)
                    > 0
                )
                rank_of = np.cumsum(present) - 1
                uniq = (np.flatnonzero(present) + int(lo)).astype(
                    np.float64
                )
                fin_bins = rank_of[ints]
            else:
                uniq, fin_bins = np.unique(
                    fin_vals, return_inverse=True
                )
        col_bins = np.full(n_rows, len(uniq), dtype=np.int32)
        col_bins[col == -np.inf] = -1
        col_bins[finite] = fin_bins
        bins[:, j] = col_bins
        uniques.append(np.asarray(uniq, dtype=np.float64))
    return BinnedMatrix(
        bins=bins,
        uniques=uniques,
        n_bins=np.array([len(u) for u in uniques], dtype=np.int64),
    )


def apply_bins(X: np.ndarray, binned: BinnedMatrix) -> np.ndarray:
    """Quantize new rows into an existing :class:`BinnedMatrix` space.

    Each finite value maps to the rank of the largest unique at or
    below it (``-1`` when smaller than every unique, sharing the
    ``-inf`` slot); ``NaN``/``+inf`` map to the overflow bin.  This is
    a nearest-lower-rank quantization for histogram accumulation —
    tree traversal (:meth:`FlatTree.predict_proba`) routes on raw
    values, not on these bins.
    """
    X = np.asarray(X, dtype=np.float64)
    out = np.empty((len(X), binned.n_features), dtype=np.int32)
    for j in range(binned.n_features):
        col = X[:, j]
        finite = np.isfinite(col)
        uniq = binned.uniques[j]
        col_bins = np.full(len(X), len(uniq), dtype=np.int32)
        col_bins[col == -np.inf] = -1
        col_bins[finite] = (
            np.searchsorted(uniq, col[finite], side="right") - 1
        )
        out[:, j] = col_bins
    return out


@dataclass
class FlatTree:
    """A fitted tree as flat arrays-of-nodes (index 0 is the root).

    ``feature[i] == -1`` marks a leaf.  ``contribution[i]`` is the
    importance mass ``gain * n_node / n_sample`` of split node ``i``,
    replayed in depth-first preorder by :meth:`importances` so the
    float accumulation order matches the recursive reference learner.
    """

    feature: np.ndarray  # int32, -1 for leaves
    threshold: np.ndarray  # float64
    left: np.ndarray  # int32
    right: np.ndarray  # int32
    prediction: np.ndarray  # float64
    contribution: np.ndarray  # float64, 0.0 for leaves
    feature_importances_: np.ndarray | None = field(default=None)

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def importances(self, n_features: int) -> np.ndarray:
        """Per-feature importance, normalized to sum to 1 (or zeros)."""
        raw = np.zeros(n_features)
        stack = [0]
        while stack:
            node = stack.pop()
            if self.feature[node] < 0:
                continue
            raw[self.feature[node]] += self.contribution[node]
            stack.append(int(self.right[node]))
            stack.append(int(self.left[node]))
        total = raw.sum()
        if total > 0:
            return raw / total
        return np.zeros(n_features)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probability per row, level-by-level gather."""
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        frontier: list[tuple[int, np.ndarray]] = [(0, np.arange(len(X)))]
        while frontier:
            next_frontier: list[tuple[int, np.ndarray]] = []
            for node, rows in frontier:
                if self.feature[node] < 0:
                    out[rows] = self.prediction[node]
                    continue
                mask = (
                    X[rows, self.feature[node]] <= self.threshold[node]
                )
                next_frontier.append((int(self.left[node]), rows[mask]))
                next_frontier.append(
                    (int(self.right[node]), rows[~mask])
                )
            frontier = next_frontier
        return out

    @property
    def depth(self) -> int:
        """Realized depth of the fitted tree."""
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        best = 0
        for node in range(self.n_nodes):
            if self.feature[node] >= 0:
                child_depth = int(depths[node]) + 1
                depths[self.left[node]] = child_depth
                depths[self.right[node]] = child_depth
                best = max(best, child_depth)
        return best


class _TreeBuilder:
    """Append-only node arrays for one growing tree."""

    __slots__ = (
        "feature", "threshold", "left", "right", "prediction",
        "contribution",
    )

    def __init__(self) -> None:
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.prediction: list[float] = []
        self.contribution: list[float] = []

    def new_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.prediction.append(0.0)
        self.contribution.append(0.0)
        return len(self.feature) - 1

    def build(self) -> FlatTree:
        return FlatTree(
            feature=np.array(self.feature, dtype=np.int32),
            threshold=np.array(self.threshold),
            left=np.array(self.left, dtype=np.int32),
            right=np.array(self.right, dtype=np.int32),
            prediction=np.array(self.prediction),
            contribution=np.array(self.contribution),
        )


class _Frontier:
    """One frontier node: a contiguous segment of the order array."""

    __slots__ = ("start", "end", "tree", "node", "depth", "n_pos")

    def __init__(
        self,
        start: int,
        end: int,
        tree: int,
        node: int,
        depth: int,
        n_pos: int,
    ):
        self.start = start
        self.end = end
        self.tree = tree
        self.node = node
        self.depth = depth
        self.n_pos = n_pos


class _ChunkPlan:
    """Per-forest layout of one feature chunk's histogram buffer.

    A chunk's buffer row (one per frontier slot) is ``stride`` wide:
    feature ``feats[i]`` owns columns ``offs[i] .. offs[i]+nb[i]+1`` —
    its ``-inf`` bin, ``nb[i]`` finite bins, and its ``NaN`` bin.
    ``fin_cols``/``base_cols`` address every finite bin and its
    feature's ``-inf`` column so within-feature cumulative counts are
    two gathers and a subtract; ``uniq`` concatenates the features'
    sorted unique values in the same finite-bin order.
    """

    __slots__ = (
        "feats", "offs", "stride", "nb", "fin_cols", "base_cols",
        "fin_start", "uniq", "n_fin_total",
    )

    def __init__(self, feats: list[int], binned: BinnedMatrix):
        self.feats = np.array(feats, dtype=np.int64)
        nb = binned.n_bins[self.feats]
        widths = nb + 2
        self.offs = np.concatenate([[0], np.cumsum(widths)[:-1]])
        self.stride = int(widths.sum())
        self.nb = nb
        self.fin_cols = np.concatenate(
            [
                off + 1 + np.arange(n)
                for off, n in zip(self.offs, nb)
            ]
        ).astype(np.int64) if nb.sum() else np.empty(0, dtype=np.int64)
        self.base_cols = np.repeat(self.offs, nb)
        self.fin_start = np.concatenate([[0], np.cumsum(nb)[:-1]])
        self.uniq = (
            np.concatenate([binned.uniques[j] for j in feats])
            if nb.sum()
            else np.empty(0, dtype=np.float64)
        )
        self.n_fin_total = int(nb.sum())


def _plan_chunks(
    binned: BinnedMatrix, worst_slots: int
) -> list[_ChunkPlan]:
    """Greedy feature chunks sized for the worst-case frontier width."""
    budget = max(_CHUNK_KEYS // max(worst_slots, 1), 2)
    plans: list[_ChunkPlan] = []
    current: list[int] = []
    stride = 0
    for j in range(binned.n_features):
        width = int(binned.n_bins[j]) + 2
        if current and stride + width > budget:
            plans.append(_ChunkPlan(current, binned))
            current, stride = [], 0
        current.append(j)
        stride += width
    if current:
        plans.append(_ChunkPlan(current, binned))
    return plans


class HistRandomForestClassifier:
    """Histogram-based bagged forest, bit-identical to the reference.

    Parameters mirror
    :class:`repro.ml.random_forest.RandomForestClassifier` with
    ``max_features`` pinned to all features per split (see the module
    docstring for why).  Work counters for
    :class:`repro.core.timing.StepTimer`:

    - ``nodes_grown``: tree nodes materialized (internal + leaves);
    - ``histograms_built``: (node, feature) histograms accumulated;
    - ``splits_evaluated``: candidate thresholds scored.
    """

    def __init__(
        self,
        n_estimators: int = 12,
        max_depth: int = 6,
        max_samples: int | None = 3000,
        min_samples_split: int = 10,
        n_thresholds: int = 24,
        random_state: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_samples = max_samples
        self.min_samples_split = min_samples_split
        self.n_thresholds = n_thresholds
        self.random_state = random_state
        self.trees_: list[FlatTree] = []
        self.feature_importances_: np.ndarray | None = None
        self.nodes_grown = 0
        self.histograms_built = 0
        self.splits_evaluated = 0

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        categorical_features: set[int] | None = None,
    ) -> "HistRandomForestClassifier":
        """Fit on float features ``X`` and 0/1 labels ``y``.

        ``categorical_features`` (column indices) marks dictionary-code
        columns for the sort-free binning path; it never changes the
        fitted forest, only how fast the binning front-end runs.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of rows")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        n_rows, n_features = X.shape
        sample_size = n_rows
        if self.max_samples is not None:
            sample_size = min(n_rows, self.max_samples)
        # The reference forest's only rng consumption in all-features
        # mode is one integers() draw per tree, in tree order.
        all_indices = np.stack(
            [
                rng.integers(0, n_rows, size=sample_size)
                for _ in range(self.n_estimators)
            ]
        )

        # Bin once per forest, over the union of bootstrap rows only —
        # rows no tree ever samples are never encoded.
        present = np.zeros(n_rows, dtype=bool)
        present[all_indices.ravel()] = True
        union_rows = np.flatnonzero(present)
        pos_of_row = np.cumsum(present) - 1
        binned = bin_matrix(X[union_rows], categorical_features)

        self.nodes_grown = 0
        self.histograms_built = 0
        self.splits_evaluated = 0
        builders = self._grow_forest(
            binned,
            pos_of_row[all_indices.ravel()],
            y[all_indices.ravel()],
            sample_size,
        )
        self.trees_ = []
        importances = np.zeros(n_features)
        for builder in builders:
            tree = builder.build()
            tree.feature_importances_ = tree.importances(n_features)
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        if total > 0:
            self.feature_importances_ = importances / total
        else:
            self.feature_importances_ = np.zeros(n_features)
        return self

    # ------------------------------------------------------------------
    def _grow_forest(
        self,
        binned: BinnedMatrix,
        sample_pos: np.ndarray,
        y: np.ndarray,
        per_tree: int,
    ) -> list[_TreeBuilder]:
        """Grow every tree breadth-first, all frontiers in lockstep.

        ``sample_pos`` maps each bootstrap draw of each tree (tree
        blocks of ``per_tree`` draws, in draw order, with duplicates)
        to its row in ``binned``; ``y`` is in the same order.  The
        ``order`` array is permuted per level so each node's rows stay
        contiguous *and in bootstrap order* — the partition matches the
        reference learner's ``X[mask]``/``X[~mask]`` recursion exactly.
        """
        n_total = len(sample_pos)
        n_features = binned.n_features
        n_trees = n_total // per_tree
        sample_bins = binned.bins[sample_pos]  # (n_total, F) int32
        pos01 = y > 0.5
        # 0/1 labels make the reference's np.mean an exact integer
        # count over the node divided by the node size — the same IEEE
        # division this learner performs on histogram counts.  Any
        # other labels fall back to gathered np.mean per node.
        binary01 = bool(np.all((y == 0.0) | (y == 1.0)))
        quantiles = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]

        worst_slots = min(
            n_trees << max(self.max_depth - 1, 0),
            max(n_total // max(self.min_samples_split, 1), 1),
            n_total,
        )
        plans = _plan_chunks(binned, worst_slots)

        builders = [_TreeBuilder() for _ in range(n_trees)]
        order = np.arange(n_total)
        frontier = [
            _Frontier(
                t * per_tree,
                (t + 1) * per_tree,
                t,
                builders[t].new_node(),
                0,
                int(pos01[t * per_tree : (t + 1) * per_tree].sum()),
            )
            for t in range(n_trees)
        ]
        self.nodes_grown += n_trees

        while frontier:
            # -- leaf gating, node predictions -------------------------
            splittable: list[_Frontier] = []
            parents: list[float] = []
            for seg in frontier:
                n_node = seg.end - seg.start
                if binary01:
                    pred = seg.n_pos / n_node
                else:
                    pred = float(y[order[seg.start : seg.end]].mean())
                builders[seg.tree].prediction[seg.node] = pred
                if (
                    seg.depth >= self.max_depth
                    or n_node < self.min_samples_split
                    or pred in (0.0, 1.0)
                ):
                    continue
                splittable.append(seg)
                parents.append(gini_impurity(pred))
            if not splittable:
                break
            n_slots = len(splittable)
            lengths = np.array(
                [seg.end - seg.start for seg in splittable],
                dtype=np.int64,
            )
            active = np.concatenate(
                [order[seg.start : seg.end] for seg in splittable]
            )
            slot_of = np.repeat(
                np.arange(n_slots, dtype=np.int64), lengths
            )
            active_bins = sample_bins[active]
            positive = pos01[active]
            node_pos = np.array(
                [seg.n_pos for seg in splittable], dtype=np.int64
            )
            parent_impurity = np.array(parents)

            best_gain = np.full((n_slots, n_features), -np.inf)
            best_threshold = np.zeros((n_slots, n_features))
            best_pos = np.zeros((n_slots, n_features), dtype=np.int64)
            best_pos_left = np.zeros(
                (n_slots, n_features), dtype=np.int64
            )
            self.histograms_built += n_slots * n_features

            # -- one composite-key bincount pass per feature chunk -----
            for plan in plans:
                keys = (
                    slot_of[:, None] * plan.stride
                    + plan.offs[None, :]
                    + (active_bins[:, plan.feats] + 1)
                )
                total_hist = np.bincount(
                    keys.ravel(), minlength=n_slots * plan.stride
                ).reshape(n_slots, plan.stride)
                pos_hist = np.bincount(
                    keys[positive].ravel(),
                    minlength=n_slots * plan.stride,
                ).reshape(n_slots, plan.stride)
                self._score_chunk(
                    plan,
                    total_hist,
                    pos_hist,
                    lengths,
                    node_pos,
                    parent_impurity,
                    quantiles,
                    max(_SEG, per_tree + 1),
                    best_gain,
                    best_threshold,
                    best_pos,
                    best_pos_left,
                )

            # -- first-strict-improvement winner per node --------------
            # Replays the reference feature loop: features ascending,
            # update only on strict improvement over the running best.
            running = np.full(n_slots, _MIN_GAIN)
            winner = np.full(n_slots, -1, dtype=np.int64)
            for f in range(n_features):
                better = best_gain[:, f] > running
                running[better] = best_gain[better, f]
                winner[better] = f

            # -- split winners, route rows stably ----------------------
            next_frontier: list[_Frontier] = []
            for s, seg in enumerate(splittable):
                f = int(winner[s])
                if f < 0:
                    continue
                builder = builders[seg.tree]
                n_node = seg.end - seg.start
                builder.feature[seg.node] = f
                builder.threshold[seg.node] = float(
                    best_threshold[s, f]
                )
                builder.contribution[seg.node] = (
                    float(running[s]) * n_node / per_tree
                )
                # Copy before the in-place writes below: the left-half
                # assignment would otherwise mutate this view before
                # the right half is gathered from it.
                seg_order = order[seg.start : seg.end].copy()
                go_left = sample_bins[seg_order, f] < best_pos[s, f]
                n_left = int(go_left.sum())
                order[seg.start : seg.start + n_left] = seg_order[
                    go_left
                ]
                order[seg.start + n_left : seg.end] = seg_order[
                    ~go_left
                ]
                left_id = builder.new_node()
                right_id = builder.new_node()
                builder.left[seg.node] = left_id
                builder.right[seg.node] = right_id
                self.nodes_grown += 2
                pos_left = int(best_pos_left[s, f])
                next_frontier.append(
                    _Frontier(
                        seg.start,
                        seg.start + n_left,
                        seg.tree,
                        left_id,
                        seg.depth + 1,
                        pos_left,
                    )
                )
                next_frontier.append(
                    _Frontier(
                        seg.start + n_left,
                        seg.end,
                        seg.tree,
                        right_id,
                        seg.depth + 1,
                        seg.n_pos - pos_left,
                    )
                )
            frontier = next_frontier

        return builders

    # ------------------------------------------------------------------
    def _score_chunk(
        self,
        plan: _ChunkPlan,
        total_hist: np.ndarray,
        pos_hist: np.ndarray,
        lengths: np.ndarray,
        node_pos: np.ndarray,
        parent_impurity: np.ndarray,
        quantiles: np.ndarray,
        seg_mult: int,
        best_gain: np.ndarray,
        best_threshold: np.ndarray,
        best_pos: np.ndarray,
        best_pos_left: np.ndarray,
    ) -> None:
        """Score every candidate split of every chunk feature, all slots.

        Only the reference ``_best_split`` float expressions are used,
        in the same order, over the same counts.  The candidate
        thresholds are the reference's per-node ``np.nanquantile`` cut
        points, rebuilt from order statistics: one batched
        ``searchsorted`` over all (slot, feature) cumulative-count
        segments (offset into disjoint integer ranges) finds the
        neighbouring order-statistic bins, and numpy's virtual-index /
        ``_lerp`` arithmetic interpolates between their values.
        """
        if plan.n_fin_total == 0:
            return
        n_slots = len(lengths)
        n_chunk = len(plan.feats)
        nf = plan.n_fin_total
        neg_total = total_hist[:, plan.offs]  # (n_slots, Fc)
        neg_pos = pos_hist[:, plan.offs]
        cs_t = np.cumsum(total_hist, axis=1)
        cs_p = np.cumsum(pos_hist, axis=1)
        # Within-feature cumulative counts over finite bins only.
        fin_t = cs_t[:, plan.fin_cols] - cs_t[:, plan.base_cols]
        fin_p = cs_p[:, plan.fin_cols] - cs_p[:, plan.base_cols]
        last_cols = np.clip(plan.fin_start + plan.nb - 1, 0, nf - 1)
        n_fin = np.where(plan.nb > 0, fin_t[:, last_cols], 0)
        valid_seg = n_fin >= 2  # (n_slots, Fc)
        if not valid_seg.any():
            return

        # Candidate thresholds: virtual index (n-1)*q, neighbouring
        # order statistics, then numpy's _lerp with its gamma >= 0.5
        # rewrite.  Order statistics come from one searchsorted over
        # every (slot, feature) segment at once: segment values and
        # probes are offset into disjoint integer ranges.
        vi = (n_fin - 1)[:, :, None] * quantiles[None, None, :]
        prev = np.floor(vi)
        gamma = vi - prev
        prev_i = prev.astype(np.int64)
        seg_of_col = (
            np.arange(n_slots, dtype=np.int64)[:, None] * n_chunk
            + np.repeat(np.arange(n_chunk, dtype=np.int64), plan.nb)[
                None, :
            ]
        )
        flat = (fin_t + seg_of_col * seg_mult).ravel()
        seg3 = (
            np.arange(n_slots, dtype=np.int64)[:, None, None] * n_chunk
            + np.arange(n_chunk, dtype=np.int64)[None, :, None]
        ) * seg_mult
        probes = np.concatenate(
            [(prev_i + seg3).ravel(), (prev_i + 1 + seg3).ravel()]
        )
        idx = np.searchsorted(flat, probes, side="right")
        row_base = (
            np.arange(n_slots, dtype=np.int64)[:, None, None] * nf
        )
        half = prev_i.size
        col_a = np.clip(
            idx[:half].reshape(prev_i.shape) - row_base, 0, nf - 1
        )
        col_b = np.clip(
            idx[half:].reshape(prev_i.shape) - row_base, 0, nf - 1
        )
        a = plan.uniq[col_a]
        b = plan.uniq[col_b]
        diff = b - a
        cand = a + diff * gamma
        flip = gamma >= 0.5
        cand[flip] = b[flip] - diff[flip] * (1 - gamma[flip])

        # The reference partitions on `col <= cand`.  Every bin
        # strictly between the two order-statistic bins is empty in
        # this node, so the left-side counts are the cumulative counts
        # at bin a — or at bin b when the interpolation lands exactly
        # on b's value.
        col = np.where(cand == b, col_b, col_a)
        gather = (row_base + col).ravel()
        n_left_i = fin_t.ravel()[gather].reshape(col.shape) + neg_total[
            :, :, None
        ]
        pos_left = fin_p.ravel()[gather].reshape(col.shape) + neg_pos[
            :, :, None
        ]
        n_left = n_left_i.astype(np.float64)
        n = lengths.astype(np.float64)[:, None, None]
        total_pos = node_pos.astype(np.float64)[:, None, None]
        n_right = n - n_left
        valid = (
            (n_left > 0) & (n_right > 0) & valid_seg[:, :, None]
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            p_left = pos_left / n_left
            p_right = (total_pos - pos_left) / n_right
            child = (
                n_left * 2.0 * p_left * (1.0 - p_left)
                + n_right * 2.0 * p_right * (1.0 - p_right)
            ) / n
        gain = parent_impurity[:, None, None] - child
        gain[~valid] = -np.inf
        self.splits_evaluated += int(valid_seg.sum()) * len(quantiles)

        best_q = np.argmax(gain, axis=2)[:, :, None]
        feats = plan.feats
        best_gain[:, feats] = np.take_along_axis(
            gain, best_q, axis=2
        )[:, :, 0]
        best_threshold[:, feats] = np.take_along_axis(
            cand, best_q, axis=2
        )[:, :, 0]
        best_col = np.take_along_axis(col, best_q, axis=2)[:, :, 0]
        best_pos[:, feats] = best_col - plan.fin_start[None, :] + 1
        best_pos_left[:, feats] = np.take_along_axis(
            pos_left, best_q, axis=2
        )[:, :, 0]

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across trees."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        probs = np.zeros(len(X))
        for tree in self.trees_:
            probs += tree.predict_proba(X)
        return probs / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct 0/1 predictions."""
        predictions = self.predict(X)
        return float(
            (predictions == np.asarray(y, dtype=np.int64)).mean()
        )
