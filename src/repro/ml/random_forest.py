"""Bagged random-forest classifier with impurity-based importances.

Used by CaJaDE's feature-selection step (paper §3.1): "We train a random
forest classifier that predicts whether a row belongs to the augmented
provenance of one of the two outputs from the user's question.  We then
rank attributes based on the relevance."
"""

from __future__ import annotations

import math

import numpy as np

from .decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """An ensemble of CART trees over bootstrap samples.

    Parameters:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        max_features: features per split; "sqrt" (default) or an int.
        max_samples: rows per bootstrap sample (cap; None = all rows).
        random_state: seed for reproducibility.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 8,
        max_features: str | int = "sqrt",
        max_samples: int | None = 4000,
        random_state: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.max_samples = max_samples
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.feature_importances_: np.ndarray | None = None

    def _features_per_split(self, n_features: int) -> int:
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble on float features X and 0/1 labels y."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        n_rows, n_features = X.shape
        sample_size = n_rows
        if self.max_samples is not None:
            sample_size = min(n_rows, self.max_samples)
        per_split = self._features_per_split(n_features)

        self.trees_ = []
        importances = np.zeros(n_features)
        for _ in range(self.n_estimators):
            indices = rng.integers(0, n_rows, size=sample_size)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=per_split,
                rng=rng,
            )
            tree.fit(X[indices], y[indices])
            self.trees_.append(tree)
            assert tree.feature_importances_ is not None
            importances += tree.feature_importances_
        total = importances.sum()
        if total > 0:
            self.feature_importances_ = importances / total
        else:
            self.feature_importances_ = np.zeros(n_features)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across trees."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        probs = np.zeros(len(X))
        for tree in self.trees_:
            probs += tree.predict_proba(X)
        return probs / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct 0/1 predictions."""
        predictions = self.predict(X)
        return float((predictions == np.asarray(y, dtype=np.int64)).mean())
