"""Correlation-based attribute clustering (VARCLUS-style).

CaJaDE clusters mutually correlated attributes and keeps one representative
per cluster to avoid redundant patterns (paper §3.1: birth date vs age).
The paper uses SAS VARCLUS [44] but notes "any technique that can cluster
correlated attributes would be applicable"; this module provides an
agglomerative single-linkage clustering over |Pearson correlation| with a
configurable threshold, plus representative selection by mean intra-cluster
correlation.

Categorical columns are label-encoded before correlation; this captures
identity-level redundancy (e.g. an id column and its name column) which is
the redundancy the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np


def _dtype_of(columns: Mapping[str, np.ndarray], name: str) -> np.dtype:
    """A column's dtype without forcing a gather when avoidable.

    Lazily-gathering mappings (e.g.
    :class:`repro.core.quality.LazyColumns` over a late-materialized
    APT) expose ``dtype_of``; plain dicts fall back to the array.
    """
    probe = getattr(columns, "dtype_of", None)
    if probe is not None:
        return probe(name)
    return columns[name].dtype


def encode_columns(
    columns: Mapping[str, np.ndarray],
    codes: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Encode a name→array mapping as a float matrix (one column each).

    TEXT columns are label-encoded by first occurrence; NULL/NaN become
    a dedicated code so they still correlate.  ``codes`` may supply
    precomputed first-occurrence label encodings for object columns
    (e.g. from :class:`repro.core.kernel.MiningKernel.ml_codes`, which
    produces exactly this encoding) to skip the per-row Python loop —
    columns covered there are never gathered from ``columns`` at all.
    """
    encoded = []
    for name in columns.keys():
        if _dtype_of(columns, name) == object:
            precomputed = codes.get(name) if codes else None
            if precomputed is not None:
                encoded.append(precomputed.astype(np.float64))
                continue
            arr = columns[name]
            label_codes: dict[object, int] = {}
            out = np.empty(len(arr))
            for i, value in enumerate(arr):
                if value not in label_codes:
                    label_codes[value] = len(label_codes)
                out[i] = label_codes[value]
            encoded.append(out)
        else:
            out = columns[name].astype(np.float64)
            nan_mask = np.isnan(out)
            if nan_mask.any():
                fill = np.nanmean(out) if (~nan_mask).any() else 0.0
                out = np.where(nan_mask, fill, out)
            encoded.append(out)
    return np.column_stack(encoded) if encoded else np.empty((0, 0))


def correlation_matrix(matrix: np.ndarray) -> np.ndarray:
    """|Pearson correlation| between columns; constants correlate 0."""
    n_cols = matrix.shape[1]
    if n_cols == 0:
        return np.empty((0, 0))
    stds = matrix.std(axis=0)
    safe = matrix.copy()
    constant = stds == 0
    corr = np.zeros((n_cols, n_cols))
    varying = ~constant
    if varying.sum() >= 1:
        sub = safe[:, varying]
        with np.errstate(invalid="ignore"):
            c = np.corrcoef(sub, rowvar=False)
        c = np.atleast_2d(c)
        c = np.nan_to_num(np.abs(c))
        idx = np.nonzero(varying)[0]
        for a, ia in enumerate(idx):
            for b, ib in enumerate(idx):
                corr[ia, ib] = c[a, b]
    np.fill_diagonal(corr, 1.0)
    return corr


def cramers_v(
    a: np.ndarray | None,
    b: np.ndarray | None,
    a_codes: np.ndarray | None = None,
    b_codes: np.ndarray | None = None,
) -> float:
    """Cramér's V association between two label-encoded columns.

    Label-encoded Pearson correlation cannot detect redundancy between,
    say, an id column and the name column it determines (the codes are a
    permutation); Cramér's V — a chi-squared-based measure on the
    contingency table — does.  Returns a value in [0, 1].

    ``a_codes``/``b_codes`` may supply a precomputed first-occurrence
    label encoding of the column (e.g. from
    :meth:`repro.core.kernel.MiningKernel.ml_codes`, which produces
    exactly what :func:`_codes` computes for object columns), skipping
    the per-row re-encoding pass; the corresponding value array may
    then be ``None`` (it is never read).  Cramér's V only reads the
    contingency table, so any bijective relabeling yields the same
    value.
    """
    return _cramers_v_from_codes(
        _resolve_codes(a, a_codes), _resolve_codes(b, b_codes)
    )


def _cramers_v_from_codes(
    a: tuple[np.ndarray, int], b: tuple[np.ndarray, int]
) -> float:
    """Cramér's V from resolved ``(codes, levels)`` pairs."""
    a_codes, a_levels = a
    b_codes, b_levels = b
    if a_levels < 2 or b_levels < 2:
        return 0.0
    n = len(a_codes)
    table = np.zeros((a_levels, b_levels))
    np.add.at(table, (a_codes, b_codes), 1.0)
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(
            np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
        )
    denominator = n * (min(a_levels, b_levels) - 1)
    if denominator <= 0:
        return 0.0
    return float(np.sqrt(min(1.0, chi2 / denominator)))


def _resolve_codes(
    values: np.ndarray | None, precomputed: np.ndarray | None
) -> tuple[np.ndarray, int]:
    """``(codes, levels)`` from a precomputed encoding or from scratch.

    Precomputed first-occurrence codes are contiguous ``0..K-1``, so the
    level count is ``max + 1``.
    """
    if precomputed is None:
        assert values is not None, "need values when no codes are given"
        return _codes(values)
    codes = precomputed.astype(np.int64, copy=False)
    levels = int(codes.max()) + 1 if len(codes) else 0
    return codes, levels


def _codes(values: np.ndarray, max_bins: int = 12) -> tuple[np.ndarray, int]:
    """Integer codes for a column; numeric columns are quantile-binned."""
    if values.dtype == object:
        mapping: dict[object, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, v in enumerate(values):
            if v not in mapping:
                mapping[v] = len(mapping)
            codes[i] = mapping[v]
        return codes, len(mapping)
    numeric = values.astype(np.float64)
    nan_mask = np.isnan(numeric)
    fill = np.nanmin(numeric) if (~nan_mask).any() else 0.0
    numeric = np.where(nan_mask, fill, numeric)
    unique = np.unique(numeric)
    if len(unique) <= max_bins:
        lookup = {v: i for i, v in enumerate(unique.tolist())}
        codes = np.array([lookup[v] for v in numeric.tolist()], dtype=np.int64)
        return codes, len(unique)
    edges = np.quantile(numeric, np.linspace(0, 1, max_bins + 1)[1:-1])
    codes = np.searchsorted(edges, numeric).astype(np.int64)
    return codes, max_bins


def association_matrix(
    columns: Mapping[str, np.ndarray],
    codes: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Pairwise association: |Pearson| for numeric pairs, Cramér's V when
    a categorical column is involved.

    ``codes`` may supply precomputed first-occurrence label encodings per
    column name (object columns only; numeric columns are quantile-binned
    here regardless), feeding :func:`cramers_v` without re-encoding —
    and without ever gathering the coded columns' value arrays from a
    lazily-materializing ``columns`` mapping.
    """
    codes = codes or {}
    names = list(columns)
    n = len(names)
    is_object = {m: _dtype_of(columns, m) == object for m in names}
    numeric_names = [m for m in names if not is_object[m]]
    pearson = np.zeros((n, n))
    if numeric_names:
        sub = encode_columns({m: columns[m] for m in numeric_names})
        corr = correlation_matrix(sub)
        idx = {m: i for i, m in enumerate(numeric_names)}
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                if a in idx and b in idx:
                    pearson[i, j] = corr[idx[a], idx[b]]
    out = np.eye(n)
    # Resolve each column's (codes, levels) once: numeric columns keep
    # their quantile binning but are no longer re-binned per pair, and
    # precomputed label encodings resolve their level count once.
    resolved: dict[str, tuple[np.ndarray, int]] = {}

    def codes_of(name: str) -> tuple[np.ndarray, int]:
        pair = resolved.get(name)
        if pair is None:
            pair = _resolve_codes(
                None if name in codes else columns[name], codes.get(name)
            )
            resolved[name] = pair
        return pair

    for i in range(n):
        for j in range(i + 1, n):
            a, b = names[i], names[j]
            if not is_object[a] and not is_object[b]:
                value = pearson[i, j]
            else:
                value = _cramers_v_from_codes(codes_of(a), codes_of(b))
            out[i, j] = out[j, i] = value
    return out


@dataclass
class AttributeCluster:
    """A cluster of mutually correlated attributes with a representative."""

    members: list[str]
    representative: str


def cluster_attributes(
    columns: Mapping[str, np.ndarray],
    threshold: float = 0.9,
    same_type_only: bool = False,
    codes: dict[str, np.ndarray] | None = None,
) -> list[AttributeCluster]:
    """Cluster attributes whose association exceeds ``threshold``.

    Single-linkage agglomeration: attributes are connected components of
    the graph with edges association >= threshold.  The representative of
    each cluster is the member with the greatest mean association to the
    rest (ties broken by name for determinism).

    ``same_type_only`` restricts merging to pairs of the same kind
    (numeric with numeric, categorical with categorical).  CaJaDE's
    feature selection uses this: merging a numeric attribute into a
    categorical representative would silently remove it from the numeric
    refinement phase.

    ``codes`` passes precomputed label encodings straight through to
    :func:`association_matrix` (identical clusters, no re-encoding).
    """
    names = list(columns)
    if not names:
        return []
    corr = association_matrix(columns, codes=codes)
    n = len(names)
    is_text = [_dtype_of(columns, name) == object for name in names]

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for i in range(n):
        for j in range(i + 1, n):
            if same_type_only and is_text[i] != is_text[j]:
                continue
            if corr[i, j] >= threshold:
                union(i, j)

    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)

    clusters: list[AttributeCluster] = []
    for member_ids in groups.values():
        members = [names[i] for i in member_ids]
        if len(member_ids) == 1:
            clusters.append(
                AttributeCluster(members=members, representative=members[0])
            )
            continue
        scores = []
        for i in member_ids:
            others = [j for j in member_ids if j != i]
            scores.append(float(np.mean([corr[i, j] for j in others])))
        ranked = sorted(
            zip(member_ids, scores), key=lambda p: (-p[1], names[p[0]])
        )
        representative = names[ranked[0][0]]
        clusters.append(
            AttributeCluster(
                members=sorted(members), representative=representative
            )
        )
    clusters.sort(key=lambda c: c.representative)
    return clusters


def pick_cluster_representatives(
    clusters: list[AttributeCluster],
) -> list[str]:
    """The representative attribute of each cluster, sorted."""
    return sorted(c.representative for c in clusters)
