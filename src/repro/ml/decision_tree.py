"""A from-scratch CART decision-tree classifier.

The paper uses random forests [10] only to rank attribute *relevance* for
the λ#sel-attr feature-selection step (§3.1), so this implementation
focuses on: binary classification, Gini impurity, quantile-candidate
splits (vectorized with numpy), and impurity-decrease feature importances.

scikit-learn is deliberately not used: the environment is offline and the
substrate must be self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """One node of a fitted tree (leaf when ``feature`` is None)."""

    prediction: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def gini_impurity(positive_fraction: float) -> float:
    """Gini impurity of a binary distribution."""
    p = positive_fraction
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART classifier with quantile candidate thresholds.

    Parameters:
        max_depth: depth cap of the tree.
        min_samples_split: do not split nodes smaller than this.
        max_features: number of features examined per split (None = all).
        n_thresholds: candidate thresholds per feature per split.
        rng: numpy Generator for feature subsampling (forest injection).
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 10,
        max_features: int | None = None,
        n_thresholds: int = 24,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.n_thresholds = n_thresholds
        self.rng = rng or np.random.default_rng(0)
        self._root: _Node | None = None
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on a float feature matrix X and a 0/1 label vector y."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of rows")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = X.shape[1]
        self._importance = np.zeros(self._n_features)
        self._total = len(y)
        self._root = self._grow(X, y, depth=0)
        total = self._importance.sum()
        if total > 0:
            self.feature_importances_ = self._importance / total
        else:
            self.feature_importances_ = np.zeros(self._n_features)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        prediction = float(y.mean())
        node = _Node(prediction=prediction)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or prediction in (0.0, 1.0)
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold, gain = split
        self._importance[feature] += gain * len(y) / self._total
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, float] | None:
        n = len(y)
        parent_impurity = gini_impurity(float(y.mean()))
        if parent_impurity == 0.0:
            return None
        features = np.arange(self._n_features)
        if self.max_features is not None and self.max_features < len(features):
            features = self.rng.choice(
                features, size=self.max_features, replace=False
            )
        # Node-level precomputation, hoisted out of the feature loop:
        # the positive-label total is feature-independent, and the
        # quantile candidate thresholds of every examined feature come
        # from one nanquantile call (non-finite cells masked to NaN, so
        # per-column results equal np.quantile over the finite values).
        total_pos = float((y > 0.5).sum())
        examined = X[:, features]
        finite_mask = np.isfinite(examined)
        finite_counts = finite_mask.sum(axis=0)
        quantiles = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
        splittable = finite_counts >= 2
        all_candidates = np.full((len(quantiles), len(features)), np.nan)
        if splittable.any():
            with np.errstate(invalid="ignore"):
                all_candidates[:, splittable] = np.nanquantile(
                    np.where(
                        finite_mask[:, splittable],
                        examined[:, splittable],
                        np.nan,
                    ),
                    quantiles,
                    axis=0,
                )
        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        for index, feature in enumerate(features):
            if not splittable[index]:
                continue
            col = examined[:, index]
            candidates = np.unique(all_candidates[:, index])
            # Vectorized gain over all candidate thresholds at once.
            below = col[:, None] <= candidates[None, :]
            n_left = below.sum(axis=0).astype(np.float64)
            n_right = n - n_left
            valid = (n_left > 0) & (n_right > 0)
            if not valid.any():
                continue
            pos_left = (below & (y[:, None] > 0.5)).sum(axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                p_left = pos_left / n_left
                p_right = (total_pos - pos_left) / n_right
                child = (
                    n_left * 2.0 * p_left * (1.0 - p_left)
                    + n_right * 2.0 * p_right * (1.0 - p_right)
                ) / n
            gain = parent_impurity - child
            gain[~valid] = -np.inf
            best_here = int(np.argmax(gain))
            if gain[best_here] > best_gain:
                best_gain = float(gain[best_here])
                best = (int(feature), float(candidates[best_here]), best_gain)
        return best

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probability for each row of X.

        Rows are routed through the tree level by level with boolean
        masks — one ``<=`` comparison per (node, its rows) instead of a
        per-row Python walk, identical predictions.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        frontier: list[tuple[_Node, np.ndarray]] = [
            (self._root, np.arange(len(X)))
        ]
        while frontier:
            next_frontier: list[tuple[_Node, np.ndarray]] = []
            for node, rows in frontier:
                if node.is_leaf:
                    out[rows] = node.prediction
                    continue
                assert node.left is not None and node.right is not None
                mask = X[rows, node.feature] <= node.threshold
                next_frontier.append((node.left, rows[mask]))
                next_frontier.append((node.right, rows[~mask]))
            frontier = next_frontier
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    @property
    def depth(self) -> int:
        """The realized depth of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
