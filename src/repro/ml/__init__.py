"""Machine-learning substrate: trees, forests, attribute clustering, metrics."""

from .decision_tree import DecisionTreeClassifier, gini_impurity
from .hist_forest import (
    BinnedMatrix,
    FlatTree,
    HistRandomForestClassifier,
    apply_bins,
    bin_matrix,
)
from .metrics import (
    dcg,
    kendall_tau_distance,
    kendall_tau_distance_scores,
    ndcg,
    recall_at_k,
    top_k_match,
)
from .random_forest import RandomForestClassifier
from .varclus import (
    association_matrix,
    cramers_v,
    AttributeCluster,
    cluster_attributes,
    correlation_matrix,
    encode_columns,
    pick_cluster_representatives,
)

__all__ = [
    "AttributeCluster",
    "apply_bins",
    "association_matrix",
    "bin_matrix",
    "BinnedMatrix",
    "cluster_attributes",
    "cramers_v",
    "correlation_matrix",
    "dcg",
    "DecisionTreeClassifier",
    "encode_columns",
    "FlatTree",
    "gini_impurity",
    "HistRandomForestClassifier",
    "kendall_tau_distance",
    "kendall_tau_distance_scores",
    "ndcg",
    "pick_cluster_representatives",
    "RandomForestClassifier",
    "recall_at_k",
    "top_k_match",
]
