"""Ranking-quality metrics used in the paper's evaluation.

- NDCG [24] measures how close a sampled/produced ranking is to the
  ground-truth ranking (Figures 10f, Table 9).
- Kendall-tau rank distance [28] counts pairwise ranking disagreements
  (Table 9).
- ``top_k_match`` counts ground-truth top-k items recovered by a sampled
  run (the blue "match" curves of Figures 10b-10e).
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain of a gain vector in rank order."""
    return sum(
        gain / math.log2(position + 2) for position, gain in enumerate(gains)
    )


def ndcg(
    ranked_items: Sequence[Hashable],
    relevance: dict[Hashable, float],
    k: int | None = None,
) -> float:
    """Normalized DCG of ``ranked_items`` against graded ``relevance``.

    Items missing from ``relevance`` contribute zero gain.  Returns 1.0
    for an ideal ordering and 0.0 when nothing relevant was retrieved.
    """
    if k is not None:
        ranked_items = list(ranked_items)[:k]
    gains = [relevance.get(item, 0.0) for item in ranked_items]
    ideal = sorted(relevance.values(), reverse=True)
    if k is not None:
        ideal = ideal[: k]
    else:
        ideal = ideal[: len(gains)]
    ideal_dcg = dcg(ideal)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg(gains) / ideal_dcg


def kendall_tau_distance(
    ranking_a: Sequence[Hashable], ranking_b: Sequence[Hashable]
) -> int:
    """Number of discordant pairs between two rankings of the same items.

    Raises ValueError when the two rankings are not permutations of each
    other.
    """
    if set(ranking_a) != set(ranking_b) or len(ranking_a) != len(ranking_b):
        raise ValueError("rankings must be permutations of the same items")
    position_b = {item: i for i, item in enumerate(ranking_b)}
    sequence = [position_b[item] for item in ranking_a]
    discordant = 0
    for i in range(len(sequence)):
        for j in range(i + 1, len(sequence)):
            if sequence[i] > sequence[j]:
                discordant += 1
    return discordant


def kendall_tau_distance_scores(
    scores_a: dict[Hashable, float], scores_b: dict[Hashable, float]
) -> int:
    """Pairwise ranking error between two score assignments.

    Counts unordered item pairs on which the two scorers strictly
    disagree about the order (ties never count as disagreement).  This is
    how the user study compares the system ranking against participants'
    ratings (Table 9).
    """
    items = sorted(set(scores_a) & set(scores_b), key=str)
    discordant = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a_cmp = _sign(scores_a[items[i]] - scores_a[items[j]])
            b_cmp = _sign(scores_b[items[i]] - scores_b[items[j]])
            if a_cmp != 0 and b_cmp != 0 and a_cmp != b_cmp:
                discordant += 1
    return discordant


def _sign(x: float) -> int:
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def top_k_match(
    ground_truth: Sequence[Hashable], candidate: Sequence[Hashable], k: int
) -> int:
    """How many of the true top-k items the candidate top-k recovered."""
    return len(set(list(ground_truth)[:k]) & set(list(candidate)[:k]))


def recall_at_k(
    ground_truth: Sequence[Hashable], candidate: Sequence[Hashable], k: int
) -> float:
    """top_k_match normalized by k (the paper's Fig 10g 'recall')."""
    truth = list(ground_truth)[:k]
    if not truth:
        return 0.0
    return top_k_match(ground_truth, candidate, k) / len(truth)
