"""Baselines the paper compares against: ET [19], CAPE [34], provenance-only."""

from .cape import CapeExplainer, CapeResult, Counterbalance
from .explanation_tables import (
    ETPattern,
    ExplanationTables,
    discretize_numeric_columns,
)
from .provenance_only import ProvenanceOnlyExplainer

__all__ = [
    "CapeExplainer",
    "CapeResult",
    "Counterbalance",
    "discretize_numeric_columns",
    "ETPattern",
    "ExplanationTables",
    "ProvenanceOnlyExplainer",
]
