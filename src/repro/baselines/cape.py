"""CAPE (Miao et al., SIGMOD 2019 [34]) — the counterbalance baseline.

CAPE explains an outlier aggregate value by finding *counterbalances*:
other output tuples that deviate from a learned trend in the opposite
direction.  The paper's §5.6 comparison feeds CAPE the NBA questions
"why was GSW's win count high in 2015-16?" and "why were LeBron James's
average points low in 2010-11?" and reports the top-3 counterbalances
(Figure 13).

This implementation captures CAPE's mechanism for single-relation,
single-group-by-attribute queries: fit a least-squares linear trend of
the aggregate value over the (ordinal) group attribute, score every
output tuple by its residual, check the user tuple is an outlier in the
claimed direction, and return the top-k tuples whose residuals point the
other way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..db.relation import Relation


@dataclass(frozen=True)
class Counterbalance:
    """One CAPE explanation: an opposite-direction outlier tuple."""

    group_value: Any
    aggregate_value: float
    residual: float

    def describe(self) -> str:
        return (
            f"({self.group_value}, {self.aggregate_value:g}) "
            f"residual {self.residual:+.2f}"
        )


@dataclass
class CapeResult:
    """Outcome of a CAPE run."""

    question_residual: float
    direction: str
    is_outlier: bool
    counterbalances: list[Counterbalance]
    slope: float
    intercept: float


class CapeExplainer:
    """Counterbalance explanations over an aggregate query result.

    Args:
        result: the aggregate query's result relation.
        group_column: the group-by output column (ordinal; values are
            ranked by sort order, e.g. season names).
        value_column: the aggregate output column.
    """

    def __init__(self, result: Relation, group_column: str, value_column: str):
        self.group_column = group_column
        self.value_column = value_column
        groups = list(result.column(group_column))
        values = result.column(value_column).astype(np.float64)
        order = np.argsort(np.array([str(g) for g in groups]))
        self.groups = [groups[i] for i in order]
        self.values = values[order]
        if len(self.values) < 3:
            raise ValueError("CAPE needs at least 3 output tuples")
        x = np.arange(len(self.values), dtype=np.float64)
        self.slope, self.intercept = np.polyfit(x, self.values, deg=1)
        self.residuals = self.values - (self.slope * x + self.intercept)

    def explain(
        self,
        group_value: Any,
        direction: str,
        k: int = 3,
        outlier_sigma: float = 0.6,
    ) -> CapeResult:
        """Top-k counterbalances for "why is <group_value> <direction>?".

        ``direction`` is "high" or "low".  The user tuple is confirmed an
        outlier when its residual exceeds ``outlier_sigma`` residual
        standard deviations in the claimed direction.
        """
        if direction not in ("high", "low"):
            raise ValueError("direction must be 'high' or 'low'")
        try:
            position = self.groups.index(group_value)
        except ValueError as exc:
            raise KeyError(
                f"{group_value!r} is not an output group"
            ) from exc
        residual = float(self.residuals[position])
        sigma = float(self.residuals.std()) or 1.0
        is_outlier = (
            residual > outlier_sigma * sigma
            if direction == "high"
            else residual < -outlier_sigma * sigma
        )
        # Counterbalances deviate the *other* way.
        wanted_sign = -1.0 if direction == "high" else 1.0
        scored = [
            Counterbalance(
                group_value=self.groups[i],
                aggregate_value=float(self.values[i]),
                residual=float(self.residuals[i]),
            )
            for i in range(len(self.groups))
            if i != position and self.residuals[i] * wanted_sign > 0
        ]
        scored.sort(key=lambda c: -abs(c.residual))
        return CapeResult(
            question_residual=residual,
            direction=direction,
            is_outlier=is_outlier,
            counterbalances=scored[:k],
            slope=float(self.slope),
            intercept=float(self.intercept),
        )
