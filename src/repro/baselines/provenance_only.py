"""Provenance-only explanations — the user study's comparison arm (§6.3).

Identical pattern mining, but restricted to the provenance table itself
(join graphs with zero edges).  Realized by running CaJaDE with
λ#edges = 0, which enumerates exactly Ω0.
"""

from __future__ import annotations

from ..api.session import CajadeSession
from ..core.config import CajadeConfig
from ..core.explainer import ExplanationResult
from ..core.question import ComparisonQuestion, OutlierQuestion
from ..core.schema_graph import SchemaGraph
from ..db.database import Database
from ..db.query import Query


class ProvenanceOnlyExplainer:
    """Pattern summaries of the unaugmented provenance table."""

    def __init__(self, db: Database, config: CajadeConfig | None = None):
        base = config or CajadeConfig()
        self._session = CajadeSession(
            db,
            schema_graph=SchemaGraph(tables=db.table_names),
            config=base.with_overrides(max_join_edges=0),
        )

    def explain(
        self,
        query: str | Query,
        question: ComparisonQuestion | OutlierQuestion,
        k: int | None = None,
    ) -> ExplanationResult:
        """Top-k provenance-only explanations for a user question.

        Repeated questions benefit from the session's warm state (the
        provenance table is the whole APT at λ#edges = 0).
        """
        return self._session.explain(query, question, top_k=k)
