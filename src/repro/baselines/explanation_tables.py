"""Explanation Tables (Gebaly et al., VLDB 2015 [19]) — the ET baseline.

ET summarizes a relation with a binary outcome attribute by a small set of
categorical patterns chosen greedily to maximize information gain against
a maximum-entropy estimate of the outcome.  The paper compares CaJaDE
against ET on one APT (Figure 11/12-table) and lists ET's first 20
patterns in Appendix A.1 (Table 10).

This implementation follows the sample-based "Flashlight" variant:

1. draw a sample of the input; candidate patterns are the LCAs of all
   sample row pairs (cross product — hence the quadratic runtime in the
   sample size that Figure 11 shows);
2. maintain a per-row estimate of the outcome (initially the global
   mean); at each round pick the candidate with the largest estimated
   information gain (support-weighted KL divergence between the pattern's
   observed outcome rate and the current estimate);
3. add the pattern to the table and update the estimates of the rows it
   covers toward the observed rate.

ET handles only categorical attributes; :func:`discretize_numeric_columns`
implements the bucketing preprocessing the paper applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.pattern import OP_EQ, Pattern, PatternPredicate


@dataclass(frozen=True)
class ETPattern:
    """One row of an explanation table."""

    pattern: Pattern
    support: int
    outcome_rate: float
    gain: float

    def describe(self) -> str:
        return (
            f"{self.pattern.describe()} "
            f"(support={self.support}, rate={self.outcome_rate:.3f}, "
            f"gain={self.gain:.4f})"
        )


def discretize_numeric_columns(
    columns: dict[str, np.ndarray], num_bins: int = 4
) -> dict[str, np.ndarray]:
    """Convert numeric columns to categorical interval labels.

    Quantile binning with ``num_bins`` buckets; labels look like
    ``[12.0,31.78]``.  TEXT columns pass through unchanged.
    """
    result: dict[str, np.ndarray] = {}
    for name, arr in columns.items():
        if arr.dtype == object:
            result[name] = arr
            continue
        numeric = arr.astype(np.float64)
        finite = numeric[~np.isnan(numeric)]
        if len(finite) == 0:
            result[name] = np.array([None] * len(arr), dtype=object)
            continue
        edges = np.unique(
            np.quantile(finite, np.linspace(0.0, 1.0, num_bins + 1))
        )
        labels = np.empty(len(arr), dtype=object)
        for i, value in enumerate(numeric):
            if math.isnan(value):
                labels[i] = None
                continue
            bucket = int(np.searchsorted(edges, value, side="right")) - 1
            bucket = max(0, min(bucket, len(edges) - 2))
            labels[i] = f"[{edges[bucket]:.4g},{edges[bucket + 1]:.4g}]"
        result[name] = labels
    return result


def _kl_bernoulli(p: float, q: float, eps: float = 1e-9) -> float:
    """KL(Bern(p) || Bern(q)), clamped away from 0/1."""
    p = min(1.0 - eps, max(eps, p))
    q = min(1.0 - eps, max(eps, q))
    return p * math.log(p / q) + (1.0 - p) * math.log(
        (1.0 - p) / (1.0 - q)
    )


class ExplanationTables:
    """Greedy sample-based explanation-table construction.

    Args:
        max_patterns: number of patterns in the final table.
        sample_size: rows drawn for candidate generation (the quadratic
            knob of Figure 11).
        seed: sampling seed.
    """

    def __init__(
        self,
        max_patterns: int = 20,
        sample_size: int = 64,
        seed: int = 0,
    ):
        if max_patterns < 1:
            raise ValueError("max_patterns must be >= 1")
        if sample_size < 2:
            raise ValueError("sample_size must be >= 2")
        self.max_patterns = max_patterns
        self.sample_size = sample_size
        self.seed = seed

    def fit(
        self,
        columns: dict[str, np.ndarray],
        outcome: np.ndarray,
    ) -> list[ETPattern]:
        """Build the explanation table for categorical ``columns``.

        ``outcome`` is a 0/1 vector row-aligned with the columns.
        """
        names = sorted(columns)
        if not names:
            return []
        for name in names:
            if columns[name].dtype != object:
                raise ValueError(
                    f"ET only accepts categorical columns; {name!r} is "
                    "numeric — discretize it first"
                )
        n_rows = len(outcome)
        rng = np.random.default_rng(self.seed)
        size = min(self.sample_size, n_rows)
        sample_idx = rng.choice(n_rows, size=size, replace=False)

        candidates = self._lca_candidates(columns, names, sample_idx)
        if not candidates:
            return []

        # Precompute the cover mask of every candidate once.
        masks = {
            pattern: pattern.match_mask(columns) for pattern in candidates
        }
        y = outcome.astype(np.float64)
        estimate = np.full(n_rows, y.mean() if n_rows else 0.0)

        table: list[ETPattern] = []
        remaining = list(candidates)
        while remaining and len(table) < self.max_patterns:
            best = None
            best_gain = -1.0
            for pattern in remaining:
                mask = masks[pattern]
                support = int(mask.sum())
                if support == 0:
                    continue
                observed = float(y[mask].mean())
                predicted = float(estimate[mask].mean())
                gain = support / n_rows * _kl_bernoulli(observed, predicted)
                if gain > best_gain:
                    best_gain = gain
                    best = (pattern, mask, support, observed)
            if best is None or best_gain <= 0.0:
                break
            pattern, mask, support, observed = best
            table.append(
                ETPattern(
                    pattern=pattern,
                    support=support,
                    outcome_rate=observed,
                    gain=best_gain,
                )
            )
            # Iterative-scaling style update: pull covered rows' estimates
            # toward the observed rate.
            estimate[mask] = observed
            remaining.remove(pattern)
        return table

    def _lca_candidates(
        self,
        columns: dict[str, np.ndarray],
        names: list[str],
        sample_idx: np.ndarray,
    ) -> list[Pattern]:
        arrays = [columns[n][sample_idx] for n in names]
        m = len(sample_idx)
        patterns: set[Pattern] = set()
        for i in range(m):
            row_preds = [
                PatternPredicate(name, OP_EQ, arr[i])
                for name, arr in zip(names, arrays)
                if arr[i] is not None
            ]
            if row_preds:
                patterns.add(Pattern(row_preds))
            for j in range(i + 1, m):
                predicates = []
                for name, arr in zip(names, arrays):
                    vi, vj = arr[i], arr[j]
                    if vi is not None and vi == vj:
                        predicates.append(PatternPredicate(name, OP_EQ, vi))
                if predicates:
                    patterns.add(Pattern(predicates))
        return sorted(patterns, key=lambda p: (p.size, p.describe()))
