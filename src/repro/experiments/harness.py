"""Experiment runners that regenerate the paper's tables and figures.

Each function returns plain dict/list structures with the same rows and
series labels the paper reports, so benchmarks can print comparable
output and tests can assert on shapes (who wins, rough factors,
crossovers) rather than absolute seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..api import CajadeSession
from ..baselines.explanation_tables import (
    ExplanationTables,
    discretize_numeric_columns,
)
from ..core.apt import materialize_apt
from ..core.config import CajadeConfig
from ..core.explainer import ExplanationResult
from ..core.join_graph import JoinGraph
from ..core.lca import lca_candidates
from ..core.pattern import Pattern
from ..core.quality import QualityEvaluator
from ..core.timing import StepTimer
from ..db.database import Database
from ..db.parser import parse_sql
from ..db.provenance import ProvenanceTable
from ..ml.metrics import ndcg, recall_at_k, top_k_match
from ..core.schema_graph import SchemaGraph
from .. import datasets
from ..datasets.workloads import WorkloadQuery


def explain_with_breakdown(
    db: Database,
    schema_graph: SchemaGraph,
    workload: WorkloadQuery,
    config: CajadeConfig,
    session: CajadeSession | None = None,
) -> tuple[ExplanationResult, dict[str, float]]:
    """Run one explanation and return (result, step→seconds breakdown).

    A fresh one-request session per call by default — experiment arms
    measure *cold* runtimes, so cross-call warmth would corrupt the
    figures.  Pass a ``session`` explicitly to measure warm behaviour
    instead (e.g. ``benchmarks/bench_session.py``).
    """
    overrides: dict[str, object] = {}
    if session is None:
        session = CajadeSession(db, schema_graph, config)
    else:
        # Engine-shaping knobs (apt_cache_mb, join_memo_entries) come
        # from the session's own config — a per-request override cannot
        # retrofit an already-built engine, so they are not diffed.
        from ..api.types import _SESSION_LEVEL_FIELDS

        overrides = {
            name: value
            for name, value in vars(config).items()
            if name not in _SESSION_LEVEL_FIELDS
            and value != getattr(session.config, name)
        }
    timer = StepTimer()
    result = session.explain(
        workload.sql, workload.question, timer=timer, overrides=overrides
    )
    return result, timer.breakdown()


# ----------------------------------------------------------------------
# Figure 7: feature selection on/off × λF1-samp
# ----------------------------------------------------------------------
def feature_selection_experiment(
    db: Database,
    schema_graph: SchemaGraph,
    workload: WorkloadQuery,
    f1_rates: list[float],
    base_config: CajadeConfig,
) -> dict[str, dict[str, float]]:
    """Per-step runtime columns: one per λF1-samp plus 'w/o feature sel.'."""
    table: dict[str, dict[str, float]] = {}
    for rate in f1_rates:
        config = base_config.with_overrides(
            f1_sample_rate=rate, use_feature_selection=True
        )
        _, breakdown = explain_with_breakdown(
            db, schema_graph, workload, config
        )
        table[f"fs λF1={rate:g}"] = breakdown
    naive = base_config.with_overrides(use_feature_selection=False)
    _, breakdown = explain_with_breakdown(db, schema_graph, workload, naive)
    table["w/o feature sel."] = breakdown
    return table


# ----------------------------------------------------------------------
# Figure 8: λ#edges × λF1-samp runtime grid
# ----------------------------------------------------------------------
def join_graph_size_experiment(
    db: Database,
    schema_graph: SchemaGraph,
    workload: WorkloadQuery,
    edge_counts: list[int],
    f1_rates: list[float],
    base_config: CajadeConfig,
) -> dict[tuple[int, float], float]:
    """Total runtime for every (λ#edges, λF1-samp) combination."""
    grid: dict[tuple[int, float], float] = {}
    for edges in edge_counts:
        for rate in f1_rates:
            config = base_config.with_overrides(
                max_join_edges=edges, f1_sample_rate=rate
            )
            start = time.perf_counter()
            explain_with_breakdown(db, schema_graph, workload, config)
            grid[(edges, rate)] = time.perf_counter() - start
    return grid


# ----------------------------------------------------------------------
# Figure 9: scalability in database size
# ----------------------------------------------------------------------
def scalability_experiment(
    loader: Callable[[float], tuple[Database, SchemaGraph]],
    workload: WorkloadQuery,
    scales: list[float],
    f1_rate: float,
    base_config: CajadeConfig,
) -> dict[float, dict[str, float]]:
    """Scale factor → per-step breakdown (the paper's Figures 9c/9d)."""
    series: dict[float, dict[str, float]] = {}
    for scale in scales:
        db, schema_graph = loader(scale)
        config = base_config.with_overrides(f1_sample_rate=f1_rate)
        _, breakdown = explain_with_breakdown(
            db, schema_graph, workload, config
        )
        breakdown["total"] = sum(breakdown.values())
        series[scale] = breakdown
    return series


# ----------------------------------------------------------------------
# Figure 10 b-e: LCA sampling vs ground truth on fixed join graphs
# ----------------------------------------------------------------------
@dataclass
class LcaSamplingPoint:
    """One sample-rate measurement for a fixed join graph's APT."""

    sample_rate: float
    runtime_seconds: float
    matches_in_top10: int


def lca_sampling_experiment(
    db: Database,
    workload: WorkloadQuery,
    join_graph: JoinGraph,
    sample_rates: list[float],
    config: CajadeConfig,
) -> tuple[list[LcaSamplingPoint], int, int]:
    """Top-10 pattern agreement between sampled and full LCA generation.

    Returns (points, apt_rows, apt_attributes) — the latter two reproduce
    the paper's Figure 10a table.
    """
    from ..core.mining import mine_apt

    query = parse_sql(workload.sql)
    pt = ProvenanceTable.compute(query, db)
    resolved = workload.question.resolve(pt)
    restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])
    apt = materialize_apt(join_graph, pt, db, restrict_row_ids=restrict)

    def top10(rate: float, cap: int) -> tuple[list, float]:
        run_config = config.with_overrides(
            lca_sample_rate=rate,
            lca_sample_cap=cap,
            top_k=10,
            use_diversity=False,
        )
        rng = np.random.default_rng(config.seed)
        start = time.perf_counter()
        mining = mine_apt(apt, resolved, run_config, rng)
        elapsed = time.perf_counter() - start
        # Keys are (pattern, primary): the same pattern can legitimately
        # rank for both question tuples and must count as two entries.
        return [(m.pattern, m.primary) for m in mining.patterns], elapsed

    truth, _ = top10(1.0, 10**9)
    points = []
    for rate in sample_rates:
        sampled, elapsed = top10(rate, config.lca_sample_cap)
        points.append(
            LcaSamplingPoint(
                sample_rate=rate,
                runtime_seconds=elapsed,
                matches_in_top10=top_k_match(truth, sampled, 10),
            )
        )
    return points, apt.num_rows, len(apt.attributes)


# ----------------------------------------------------------------------
# Figure 10 f/g: F-score sampling quality (NDCG + recall)
# ----------------------------------------------------------------------
def f1_sampling_quality_experiment(
    db: Database,
    schema_graph: SchemaGraph,
    workload: WorkloadQuery,
    f1_rates: list[float],
    base_config: CajadeConfig,
) -> dict[float, dict[str, float]]:
    """NDCG and recall of sampled top-k against the unsampled run."""
    exact = base_config.with_overrides(f1_sample_rate=1.0)
    truth_result, _ = explain_with_breakdown(
        db, schema_graph, workload, exact
    )
    truth_keys = [
        (e.pattern, e.primary) for e in truth_result.explanations
    ]
    relevance = {
        key: float(len(truth_keys) - i)
        for i, key in enumerate(truth_keys)
    }
    out: dict[float, dict[str, float]] = {}
    for rate in f1_rates:
        config = base_config.with_overrides(f1_sample_rate=rate)
        result, _ = explain_with_breakdown(db, schema_graph, workload, config)
        keys = [(e.pattern, e.primary) for e in result.explanations]
        out[rate] = {
            "ndcg": ndcg(keys, relevance),
            "recall": recall_at_k(truth_keys, keys, len(truth_keys) or 1),
        }
    return out


# ----------------------------------------------------------------------
# Figure 11: comparison with Explanation Tables
# ----------------------------------------------------------------------
def et_comparison_experiment(
    db: Database,
    workload: WorkloadQuery,
    join_graph: JoinGraph,
    sample_sizes: list[int],
    config: CajadeConfig,
) -> dict[int, dict[str, float]]:
    """Runtime of CaJaDE vs ET on one APT at several sample sizes."""
    from ..core.mining import mine_apt

    query = parse_sql(workload.sql)
    pt = ProvenanceTable.compute(query, db)
    resolved = workload.question.resolve(pt)
    restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])
    apt = materialize_apt(join_graph, pt, db, restrict_row_ids=restrict)

    evaluator = QualityEvaluator(
        apt, resolved.row_ids1, resolved.row_ids2, sample_rate=1.0
    )
    columns = evaluator.columns()
    outcome = (evaluator.side_labels() == 1).astype(np.float64)
    categorical = discretize_numeric_columns(columns)

    table: dict[int, dict[str, float]] = {}
    for size in sample_sizes:
        run_config = config.with_overrides(
            lca_sample_cap=size, lca_sample_rate=1.0, top_k=10
        )
        rng = np.random.default_rng(config.seed)
        start = time.perf_counter()
        mine_apt(apt, resolved, run_config, rng)
        cajade_time = time.perf_counter() - start

        et = ExplanationTables(
            max_patterns=20, sample_size=size, seed=config.seed
        )
        start = time.perf_counter()
        et.fit(categorical, outcome)
        et_time = time.perf_counter() - start
        table[size] = {"cajade": cajade_time, "et": et_time}
    return table


# ----------------------------------------------------------------------
# Figure 12: varying queries
# ----------------------------------------------------------------------
def varying_queries_experiment(
    nba: tuple[Database, SchemaGraph],
    mimic: tuple[Database, SchemaGraph],
    config: CajadeConfig,
    queries: list[WorkloadQuery] | None = None,
) -> dict[str, dict[str, float]]:
    """Runtime and join-graph count for every workload query."""
    queries = queries or datasets.all_queries()
    out: dict[str, dict[str, float]] = {}
    for workload in queries:
        db, schema_graph = nba if workload.dataset == "nba" else mimic
        start = time.perf_counter()
        result, _ = explain_with_breakdown(db, schema_graph, workload, config)
        out[workload.name] = {
            "runtime": time.perf_counter() - start,
            "join_graphs": float(result.enumeration.valid),
            "mined": float(result.join_graphs_mined),
        }
    return out
