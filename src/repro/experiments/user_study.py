"""Synthetic user study (paper §6.3, Tables 7/8/9).

The paper recruited 20 graduate students (5 NBA fans) to rate the top-5
provenance-only explanations and the top-5 CaJaDE explanations for UQ1 on
a 1-5 scale, then measured how well CaJaDE's quality metrics agree with
the participants' rankings (Kendall-tau rank distance and NDCG).

Humans cannot be recruited here, so a seeded *rater model* stands in
(DESIGN.md §2).  Its shape encodes the paper's reported findings:

- ratings increase with an explanation's precision and F-score (the
  paper's S2 finding: user preference correlates with the quality
  metrics, precision ranking best for provenance-only and F-score for
  CaJaDE);
- domain experts (NBA fans) rate context-rich CaJaDE explanations higher
  than non-experts do (the paper's finding 4);
- one designated "controversial" explanation receives a large rating
  variance (the paper's Expl8 / Jarrett Jack effect), so the "-1" drop
  analysis of Table 9 has something to drop.

All randomness is seeded; the analysis machinery (per-user Kendall
distance, NDCG against mean ratings, the drop-worst variant) is the real
deliverable and is exercised end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.explainer import Explanation
from ..ml.metrics import kendall_tau_distance_scores, ndcg


@dataclass(frozen=True)
class StudyExplanation:
    """One explanation presented to raters."""

    label: str
    arm: str  # "provenance" or "cajade"
    f_score: float
    precision: float
    recall: float
    controversial: bool = False

    @classmethod
    def from_explanation(
        cls,
        label: str,
        arm: str,
        explanation: Explanation,
        controversial: bool = False,
    ) -> "StudyExplanation":
        return cls(
            label=label,
            arm=arm,
            f_score=explanation.f_score,
            precision=explanation.precision,
            recall=explanation.recall,
            controversial=controversial,
        )


@dataclass
class RaterModel:
    """A synthetic participant.

    rating = 1 + 4 · clip(w_p·P + w_f·F + context bonus + noise) with
    expert raters using less noise and a larger context bonus.
    """

    expert: bool
    rng: np.random.Generator

    def rate(self, explanation: StudyExplanation) -> float:
        quality = (
            0.5 * explanation.precision
            + 0.35 * explanation.f_score
            + 0.15 * explanation.recall
        )
        if explanation.arm == "cajade":
            quality += 0.08 if self.expert else 0.04
        noise_scale = 0.09 if self.expert else 0.13
        if explanation.controversial:
            noise_scale = 0.45
            quality -= 0.25
        quality += self.rng.normal(0.0, noise_scale)
        return float(np.clip(1.0 + 4.0 * quality, 1.0, 5.0))


@dataclass
class UserStudyReport:
    """Tables 8 and 9 in structured form."""

    explanations: list[StudyExplanation]
    ratings: np.ndarray  # raters × explanations
    expert_mask: np.ndarray

    # -- Table 8 -------------------------------------------------------
    def mean_ratings(self, experts_only: bool | None = None) -> dict[str, float]:
        rows = self._select_raters(experts_only)
        return {
            e.label: float(self.ratings[rows, i].mean())
            for i, e in enumerate(self.explanations)
        }

    def rating_std(self) -> dict[str, float]:
        return {
            e.label: float(self.ratings[:, i].std(ddof=1))
            for i, e in enumerate(self.explanations)
        }

    def preference_fraction(self) -> float:
        """Fraction of raters whose mean CaJaDE rating beats provenance."""
        cajade = [
            i for i, e in enumerate(self.explanations) if e.arm == "cajade"
        ]
        prov = [
            i for i, e in enumerate(self.explanations) if e.arm == "provenance"
        ]
        wins = 0
        for r in range(self.ratings.shape[0]):
            if self.ratings[r, cajade].mean() > self.ratings[r, prov].mean():
                wins += 1
        return wins / self.ratings.shape[0]

    # -- Table 9 -------------------------------------------------------
    def ranking_quality(
        self,
        arm: str,
        metric: str,
        experts_only: bool | None = None,
        drop_most_controversial: bool = False,
    ) -> dict[str, float]:
        """Avg Kendall-tau distance and NDCG of a system scorer vs raters.

        ``metric`` ∈ {"f_score", "recall", "precision"} chooses the system
        ranking; raters' ratings are the ground truth.
        """
        indices = [
            i for i, e in enumerate(self.explanations) if e.arm == arm
        ]
        if drop_most_controversial:
            stds = {i: float(self.ratings[:, i].std(ddof=1)) for i in indices}
            indices = sorted(indices, key=lambda i: -stds[i])[1:]
        system_scores = {
            i: getattr(self.explanations[i], metric) for i in indices
        }
        rows = self._select_raters(experts_only)
        distances = []
        ndcgs = []
        ranked = sorted(indices, key=lambda i: -system_scores[i])
        for r in rows:
            user_scores = {i: float(self.ratings[r, i]) for i in indices}
            distances.append(
                kendall_tau_distance_scores(system_scores, user_scores)
            )
            relevance = {i: user_scores[i] for i in indices}
            ndcgs.append(ndcg(ranked, relevance))
        return {
            "kendall_tau": float(np.mean(distances)),
            "ndcg": float(np.mean(ndcgs)),
        }

    def _select_raters(self, experts_only: bool | None) -> np.ndarray:
        if experts_only is None:
            return np.arange(self.ratings.shape[0])
        return np.nonzero(self.expert_mask == experts_only)[0]


def run_user_study(
    explanations: Sequence[StudyExplanation],
    n_raters: int = 20,
    n_experts: int = 5,
    seed: int = 99,
) -> UserStudyReport:
    """Simulate the §6.3 study: every rater rates every explanation."""
    if n_experts > n_raters:
        raise ValueError("n_experts cannot exceed n_raters")
    rng = np.random.default_rng(seed)
    expert_mask = np.zeros(n_raters, dtype=bool)
    expert_mask[:n_experts] = True
    ratings = np.zeros((n_raters, len(explanations)))
    for r in range(n_raters):
        rater = RaterModel(
            expert=bool(expert_mask[r]),
            rng=np.random.default_rng(rng.integers(0, 2**63)),
        )
        for i, explanation in enumerate(explanations):
            ratings[r, i] = rater.rate(explanation)
    return UserStudyReport(
        explanations=list(explanations),
        ratings=ratings,
        expert_mask=expert_mask,
    )


def build_study_explanations(
    provenance: Sequence[Explanation],
    cajade: Sequence[Explanation],
    low_fscore_control: Explanation | None = None,
) -> list[StudyExplanation]:
    """Assemble the 10-explanation study set (5 + 5, Table 7).

    The paper replaced one CaJaDE slot with a deliberately low-F-score
    control (Expl10) to widen the score range; pass it as
    ``low_fscore_control``.  The last CaJaDE slot is flagged controversial
    (the Jarrett-Jack-style domain-knowledge explanation, Expl8).
    """
    out: list[StudyExplanation] = []
    for i, e in enumerate(provenance[:5], start=1):
        out.append(StudyExplanation.from_explanation(f"Expl{i}", "provenance", e))
    cajade_list = list(cajade[:5])
    if low_fscore_control is not None and len(cajade_list) == 5:
        cajade_list[-1] = low_fscore_control
    for j, e in enumerate(cajade_list, start=6):
        controversial = j == 8
        out.append(
            StudyExplanation.from_explanation(
                f"Expl{j}", "cajade", e, controversial=controversial
            )
        )
    return out
