"""Experiment harnesses regenerating the paper's tables and figures."""

from .harness import (
    LcaSamplingPoint,
    et_comparison_experiment,
    explain_with_breakdown,
    f1_sampling_quality_experiment,
    feature_selection_experiment,
    join_graph_size_experiment,
    lca_sampling_experiment,
    scalability_experiment,
    varying_queries_experiment,
)
from .user_study import (
    RaterModel,
    StudyExplanation,
    UserStudyReport,
    build_study_explanations,
    run_user_study,
)

__all__ = [
    "build_study_explanations",
    "et_comparison_experiment",
    "explain_with_breakdown",
    "f1_sampling_quality_experiment",
    "feature_selection_experiment",
    "join_graph_size_experiment",
    "lca_sampling_experiment",
    "LcaSamplingPoint",
    "RaterModel",
    "run_user_study",
    "scalability_experiment",
    "StudyExplanation",
    "UserStudyReport",
    "varying_queries_experiment",
]
