"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``  — write a synthetic NBA or MIMIC database to a CSV
  directory (loadable with ``repro.db.csvio.load_database``);
- ``ingest``    — convert a CSV database into the memory-mappable
  column-store cache (``Database.save``), so later sessions reopen it
  in O(manifest) instead of re-parsing CSVs;
- ``explain``   — run CaJaDE on a CSV database with an inline SQL query
  and user question;
- ``workload``  — run one of the paper's named workload queries
  (Qnba1..5, Qmimic1..5) on a freshly generated dataset;
- ``serve``     — expose a CSV database as a concurrent explanation
  service over HTTP (``POST /explain``, ``GET /stats``): a sharded
  worker pool behind a coalescing front-end with a cross-request
  response cache.

Examples:

    python -m repro generate nba --scale 0.25 --out /tmp/nba
    python -m repro ingest /tmp/nba --out /tmp/nba_colstore
    python -m repro explain /tmp/nba --db-cache-dir /tmp/nba_colstore \
        --sql "SELECT COUNT(*) AS win, s.season_name FROM team t, game g, \
               season s WHERE t.team_id = g.winner_id AND \
               g.season_id = s.season_id AND t.team = 'GSW' \
               GROUP BY s.season_name" \
        --t1 season_name=2015-16 --t2 season_name=2012-13
    python -m repro workload Qmimic4 --scale 0.2
    python -m repro serve /tmp/nba --port 8321 --shards 2
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from .api import CajadeSession
from .core.config import CajadeConfig
from .core.question import ComparisonQuestion, OutlierQuestion
from .core.schema_graph import SchemaGraph


def _parse_tuple_spec(spec: list[str]) -> dict[str, Any]:
    """Parse ``name=value`` pairs.

    Values coerce in order: quoted string (``name="2015"`` stays the
    string ``2015``), ``true``/``false`` (case-insensitive) to bool,
    int, float, bare string.
    """
    out: dict[str, Any] = {}
    for item in spec:
        if "=" not in item:
            raise SystemExit(f"bad tuple spec {item!r}; expected name=value")
        name, raw = item.split("=", 1)
        out[name] = _coerce_value(raw)
    return out


def _coerce_value(raw: str) -> Any:
    if (
        len(raw) >= 2
        and raw[0] == raw[-1]
        and raw[0] in ("'", '"')
    ):
        return raw[1:-1]
    if raw.lower() == "true":
        return True
    if raw.lower() == "false":
        return False
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--edges", type=int, default=2,
                        help="λ#edges (default 2)")
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--f1-sample", type=float, default=0.3,
                        help="λF1-samp (default 0.3)")
    parser.add_argument("--sel-attrs", type=float, default=4,
                        help="λ#sel-attr (default 4)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1,
                        help="mining worker threads (default 1 = serial; "
                             "results are identical at any value)")
    parser.add_argument("--apt-cache-mb", type=float, default=256.0,
                        help="APT prefix-cache memory budget in MB "
                             "(default 256; 0 disables caching)")
    parser.add_argument("--kernel-cache-mb", type=float, default=64.0,
                        help="mask-memo budget (MB) of the columnar "
                             "scoring kernel (default 64; 0 disables "
                             "memoization, scoring stays vectorized)")
    parser.add_argument("--no-kernel", action="store_true",
                        help="score patterns on the naive per-row "
                             "reference path instead of the columnar "
                             "kernel (identical results, slower)")
    parser.add_argument("--no-code-lca", action="store_true",
                        help="generate LCA candidates on the object-"
                             "based reference path instead of the "
                             "kernel's dictionary codes (identical "
                             "results, slower)")
    parser.add_argument("--no-hist-forest", action="store_true",
                        help="train the feature-selection forest with "
                             "the per-node CART reference learner "
                             "instead of the histogram-based "
                             "frontier-at-a-time learner (identical "
                             "results, slower)")
    parser.add_argument("--no-late-mat", action="store_true",
                        help="run joins and APT materialization on the "
                             "eager column-copying pipeline instead of "
                             "index vectors with gather-on-demand "
                             "columns (identical results, slower)")
    parser.add_argument("--join-strategy", default="sorted-window",
                        choices=["hash", "sorted-window"],
                        help="how the engine executes APT join steps: "
                             "'sorted-window' (default) probes shared "
                             "sort permutations with searchsorted and "
                             "caches compact windows in the prefix "
                             "trie; 'hash' runs the reference "
                             "hash-build core (identical results)")
    parser.add_argument("--sentences", action="store_true",
                        help="also print natural-language renderings")


def _config_from(args: argparse.Namespace) -> CajadeConfig:
    try:
        return CajadeConfig(
            max_join_edges=args.edges,
            top_k=args.top_k,
            f1_sample_rate=args.f1_sample,
            num_selected_attrs=args.sel_attrs,
            seed=args.seed,
            workers=args.workers,
            apt_cache_mb=args.apt_cache_mb,
            kernel_cache_mb=args.kernel_cache_mb,
            use_kernel=not args.no_kernel,
            use_code_lca=not args.no_code_lca,
            use_hist_forest=not args.no_hist_forest,
            late_materialization=not args.no_late_mat,
            join_strategy=args.join_strategy,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: invalid configuration: {exc}")


def _print_cache_stats(result) -> None:
    if result.engine is not None:
        print(result.engine.describe())


def _load_with_cache(database: str, cache_dir: str | None):
    """Load a CSV database, going through the column-store cache.

    With ``--db-cache-dir``: a populated cache directory is memory-mapped
    directly (``Database.open`` — no CSV parsing, no dictionary
    unpickling); an empty/missing one is populated from the CSVs first,
    so the *next* start is the fast path.  Without the flag this is
    plain ``load_database``.
    """
    from pathlib import Path

    from .db.colstore import MANIFEST_NAME
    from .db.csvio import load_database
    from .db.database import Database

    if cache_dir is None:
        return load_database(database)
    cache = Path(cache_dir)
    if (cache / MANIFEST_NAME).exists():
        db = Database.open(cache)
        print(f"opened column store {cache} ({len(db.table_names)} tables)")
        return db
    db = load_database(database)
    db.save(cache)
    print(f"ingested {database} into column store {cache}")
    return db


def cmd_generate(args: argparse.Namespace) -> int:
    from .db.csvio import save_database

    if args.dataset == "nba":
        from .datasets import generate_nba

        db = generate_nba(scale=args.scale, seed=args.seed)
    else:
        from .datasets import generate_mimic

        db = generate_mimic(scale=args.scale, seed=args.seed)
    save_database(db, args.out)
    print(f"wrote {db} to {args.out}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from .db.csvio import load_database

    db = load_database(args.database)
    db.save(args.out)
    print(f"wrote column store for {db} to {args.out}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    config = _config_from(args)
    db = _load_with_cache(args.database, args.db_cache_dir)
    schema_graph = SchemaGraph.from_database(db)
    session = CajadeSession(db, schema_graph, config)

    t1 = _parse_tuple_spec(args.t1)
    if args.t2:
        question: ComparisonQuestion | OutlierQuestion = ComparisonQuestion(
            t1, _parse_tuple_spec(args.t2)
        )
    else:
        question = OutlierQuestion(t1)
    result = session.explain(args.sql, question)
    print(result.describe())
    _print_cache_stats(result)
    if args.sentences:
        print()
        for explanation in result.explanations:
            print("-", explanation.to_sentence())
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from .datasets import load_mimic, load_nba, query_by_name

    config = _config_from(args)
    workload = query_by_name(args.name)
    if workload.dataset == "nba":
        db, schema_graph = load_nba(scale=args.scale, seed=args.seed)
    else:
        db, schema_graph = load_mimic(scale=args.scale, seed=args.seed)
    session = CajadeSession(db, schema_graph, config)
    print(f"{workload.name}: {workload.description}")
    print(f"question: {workload.question.describe()}")
    result = session.explain(workload.sql, workload.question)
    print(result.describe())
    _print_cache_stats(result)
    if args.sentences:
        print()
        for explanation in result.explanations:
            print("-", explanation.to_sentence())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serving import (
        ExplanationService,
        InlineBackend,
        ProcessPoolBackend,
        serve_http,
    )

    config = _config_from(args)
    db = _load_with_cache(args.database, args.db_cache_dir)
    schema_graph = SchemaGraph.from_database(db)
    if args.shards == 0:
        backend: Any = InlineBackend(
            db, schema_graph, config, max_restarts=args.max_restarts
        )
    else:
        backend = ProcessPoolBackend(
            db,
            schema_graph,
            config,
            num_shards=args.shards,
            max_restarts=args.max_restarts,
        )

    async def run() -> None:
        import signal

        # Explicit signal handling rather than relying on asyncio.Runner's
        # KeyboardInterrupt cancellation: SIGTERM (the default `kill`) must
        # also shut down cleanly, or the daemon worker processes are
        # orphaned and the shared-memory export leaks until the resource
        # tracker notices.
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        try:
            async with ExplanationService(
                backend,
                response_cache_mb=args.response_cache_mb,
                max_batch=args.max_batch,
                request_timeout=args.request_timeout or None,
                max_retries=args.max_retries,
                max_queue_depth=args.max_queue_depth or None,
                max_in_flight=args.max_in_flight or None,
                degraded_mode=args.degraded_mode,
            ) as service:
                server = await serve_http(
                    service, host=args.host, port=args.port
                )
                host, port = server.sockets[0].getsockname()[:2]
                print(
                    f"serving {db} on http://{host}:{port} "
                    "(POST /explain, GET /stats)"
                )
                if isinstance(backend, ProcessPoolBackend):
                    print(
                        f"{backend.num_shards} workers over "
                        f"{backend.shared_bytes / 1e6:.2f}MB shared memory"
                    )
                else:
                    print("inline backend (no worker processes)")
                async with server:
                    await stop.wait()
                    print("shutting down")
        finally:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CaJaDE: rich explanations for query answers using "
        "join graphs (SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("dataset", choices=["nba", "mimic"])
    gen.add_argument("--scale", type=float, default=0.25)
    gen.add_argument("--seed", type=int, default=11)
    gen.add_argument("--out", required=True, help="output directory")
    gen.set_defaults(func=cmd_generate)

    ing = sub.add_parser(
        "ingest", help="convert a CSV database to a column-store cache"
    )
    ing.add_argument("database", help="CSV database directory")
    ing.add_argument("--out", required=True,
                     help="column-store output directory (reopen with "
                          "--db-cache-dir, in O(manifest) time)")
    ing.set_defaults(func=cmd_ingest)

    exp = sub.add_parser("explain", help="explain a query answer")
    exp.add_argument("database", help="CSV database directory")
    exp.add_argument("--db-cache-dir", default=None,
                     help="column-store cache directory: memory-mapped "
                          "directly if populated, else populated from "
                          "the CSVs on first use")
    exp.add_argument("--sql", required=True)
    exp.add_argument(
        "--t1", nargs="+", required=True,
        metavar="NAME=VALUE", help="primary output tuple",
    )
    exp.add_argument(
        "--t2", nargs="+", default=None,
        metavar="NAME=VALUE",
        help="secondary output tuple (omit for an outlier question)",
    )
    _add_config_flags(exp)
    exp.set_defaults(func=cmd_explain)

    wl = sub.add_parser("workload", help="run a paper workload query")
    wl.add_argument("name", help="Qnba1..Qnba5 or Qmimic1..Qmimic5")
    wl.add_argument("--scale", type=float, default=0.2)
    _add_config_flags(wl)
    wl.set_defaults(func=cmd_workload)

    srv = sub.add_parser(
        "serve", help="serve explanations over HTTP (concurrent)"
    )
    srv.add_argument("database", help="CSV database directory")
    srv.add_argument("--db-cache-dir", default=None,
                     help="column-store cache directory: memory-mapped "
                          "directly if populated, else populated from "
                          "the CSVs on first use")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8321,
                     help="listen port (default 8321; 0 = any free port)")
    srv.add_argument("--shards", type=int, default=2,
                     help="worker pool processes, one per fingerprint "
                          "shard (default 2; 0 = inline, no processes)")
    srv.add_argument("--response-cache-mb", type=float, default=64.0,
                     help="cross-request response cache budget in MB "
                          "(default 64; 0 disables replay)")
    srv.add_argument("--max-batch", type=int, default=16,
                     help="max requests per locality-ordered batch "
                          "(default 16)")
    srv.add_argument("--max-restarts", type=int, default=3,
                     help="consecutive worker failures a shard may "
                          "accumulate before quarantine (default 3)")
    srv.add_argument("--request-timeout", type=float, default=0.0,
                     help="default per-request deadline budget in "
                          "seconds (default 0 = unbounded; requests "
                          "may override via timeout_seconds)")
    srv.add_argument("--max-retries", type=int, default=2,
                     help="retry budget for retryable failures such "
                          "as worker death (default 2)")
    srv.add_argument("--max-queue-depth", type=int, default=64,
                     help="per-shard queue bound before shedding with "
                          "429 (default 64; 0 = unbounded)")
    srv.add_argument("--max-in-flight", type=int, default=256,
                     help="total backlog bound before shedding with "
                          "429 (default 256; 0 = unbounded)")
    srv.add_argument("--degraded-mode", choices=["inline", "error"],
                     default="inline",
                     help="quarantined-shard policy: serve inline in "
                          "the parent (default) or fail fast with 503")
    _add_config_flags(srv)
    srv.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
