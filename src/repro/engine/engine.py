"""Shared-prefix APT materialization engine.

:class:`MaterializationEngine` replaces the explainer's per-graph
``materialize_apt`` loop.  It is bound to one provenance table and
question restriction; for each join graph it builds the canonical
:class:`~repro.core.apt.MaterializationPlan`, finds the longest plan
prefix already materialized in its trie, and executes only the missing
suffix steps.  Because BFS-enumerated join graphs overwhelmingly extend
already-enumerated graphs by one edge (the paper's Algorithm 2), most
graphs cost one hash join instead of rebuilding the whole
PT ⋈ S₁ ⋈ … ⋈ Sⱼ pipeline from scratch.

The ordering invariant this relies on: the canonical edge (step) order of
``build_plan`` must match the enumeration extension order — node ids are
assigned in extension order and the plan walks the lowest-id frontier
node first, so a graph extending Ω' yields Ω''s steps as an exact plan
prefix.  See :mod:`repro.core.apt` for the full statement.

By default the pipeline is *late-materialized*: intermediates are
:class:`~repro.db.frame.IndexFrame` row-index vectors over the
provenance relation and the prefixed context tables, each join gathers
only its key columns through the shared ``join_row_indices`` core, and
the trie caches those compact frames (entries shrink by roughly the
joined width, so more prefixes fit per byte).  ``materialize*`` then
returns gather-on-demand APTs whose mining kernel reads load-time
dictionary codes straight off the base tables.  Pass
``late_materialization=False`` for the classic eager pipeline — results
are byte-identical either way.

Underneath, context relations are prefixed once and memoized so repeated
joins see stable relation fingerprints.  The db-layer memoized hash-join
path (:class:`repro.db.executor.JoinCache`) can be layered in via
``join_memo_entries``, but is off by default: within the engine the trie
already dedups every join the memo could, and trie evictions cascade
through fingerprint keys (see the constructor docstring).

An engine can outlive a single question: the question restriction is a
per-call argument (``restrict_row_ids`` on the ``materialize*`` methods)
and every trie key is namespaced by a fingerprint of the restriction's
row-id *set*, so APTs of different questions coexist in one trie without
ever aliasing, and re-asking a question hits the prefixes its first run
left behind.  :class:`repro.api.CajadeSession` relies on this to keep
one warm engine per registered query across many user questions.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Iterator, Sequence

import numpy as np

from ..core.apt import (
    AugmentedProvenanceTable,
    JoinStep,
    _wrap_apt,
    apply_filter_step,
    build_plan,
    execute_join_step,
    restrict_base,
    restrict_base_frame,
)
from ..core.join_graph import JoinGraph
from ..db.database import Database
from ..db.executor import JoinCache
from ..db.frame import IndexFrame
from ..db.join_strategy import WindowEntry, make_join_strategy
from ..db.provenance import ProvenanceTable
from ..db.relation import Relation
from .trie import CacheStats, PrefixCache

_MB = 1024 * 1024

# Sentinel distinguishing "argument omitted" (use the engine default)
# from an explicit ``None`` (no restriction).
_USE_DEFAULT: Any = object()

# Restricted PT-side bases kept per engine (LRU).  Bases are small
# (question rows only) but an unbounded memo would leak across the
# lifetime of a serving session answering many distinct questions.
_MAX_MEMOIZED_BASES = 16


def restriction_fingerprint(
    restrict_row_ids: np.ndarray | None,
) -> tuple | None:
    """A hashable key identifying a question restriction's row-id *set*.

    :func:`repro.core.apt.restrict_base` applies restrictions with set
    semantics (``np.isin``), so order and duplicates are canonicalized
    away before hashing; equal sets always collide and unequal sets get
    distinct digests.  ``None`` (no restriction) maps to ``None``.
    """
    if restrict_row_ids is None:
        return None
    ids = np.unique(np.asarray(restrict_row_ids, dtype=np.int64))
    digest = hashlib.blake2b(ids.tobytes(), digest_size=16).hexdigest()
    return (int(ids.size), digest)


def _plan_order_key(plan) -> tuple:
    """A sortable key grouping plans by shared step prefixes (trie order)."""
    return tuple(
        (0, step.table, step.alias, step.conditions)
        if isinstance(step, JoinStep)
        else (1, step.pairs)
        for step in plan.steps
    )


@dataclass
class EngineStats:
    """Work-sharing counters for one engine lifetime.

    ``steps_reused``/``steps_computed`` count plan steps served from the
    trie versus executed; ``full_hits`` counts graphs whose entire plan
    (an isomorphic materialization) was already cached.  ``cache`` holds
    the underlying trie's probe/eviction/byte counters and
    ``join_memo_hits`` the db-layer memoized-join hits.
    ``windows_built``/``searchsorted_probes``/``permutation_reuses``
    mirror the engine's join-strategy counters (all zero under the
    default ``hash`` strategy).
    """

    graphs: int = 0
    steps_reused: int = 0
    steps_computed: int = 0
    full_hits: int = 0
    join_memo_hits: int = 0
    windows_built: int = 0
    searchsorted_probes: int = 0
    permutation_reuses: int = 0
    cache: CacheStats | None = None

    def copy(self) -> "EngineStats":
        """A frozen-in-time copy (the ``cache`` field is otherwise live)."""
        cache = replace(self.cache) if self.cache is not None else None
        return replace(self, cache=cache)

    def delta(self, since: "EngineStats | None") -> "EngineStats":
        """Counters accumulated after the ``since`` snapshot.

        Byte gauges (``current_bytes``/``peak_bytes``) are not
        differences — the later absolute values are kept.  Used by
        :class:`repro.api.CajadeSession` to report per-request engine
        work from one long-lived engine.
        """
        if since is None:
            return self.copy()
        cache = None
        if self.cache is not None:
            old = since.cache or CacheStats()
            cache = CacheStats(
                hits=self.cache.hits - old.hits,
                misses=self.cache.misses - old.misses,
                evictions=self.cache.evictions - old.evictions,
                insertions=self.cache.insertions - old.insertions,
                rejected=self.cache.rejected - old.rejected,
                current_bytes=self.cache.current_bytes,
                peak_bytes=self.cache.peak_bytes,
                entries=self.cache.entries,
                median_entry_bytes=self.cache.median_entry_bytes,
            )
        return EngineStats(
            graphs=self.graphs - since.graphs,
            steps_reused=self.steps_reused - since.steps_reused,
            steps_computed=self.steps_computed - since.steps_computed,
            full_hits=self.full_hits - since.full_hits,
            join_memo_hits=self.join_memo_hits - since.join_memo_hits,
            windows_built=self.windows_built - since.windows_built,
            searchsorted_probes=(
                self.searchsorted_probes - since.searchsorted_probes
            ),
            permutation_reuses=(
                self.permutation_reuses - since.permutation_reuses
            ),
            cache=cache,
        )

    def describe(self) -> str:
        cache = self.cache or CacheStats()
        return (
            f"apt cache: {self.steps_reused} steps reused / "
            f"{self.steps_computed} computed over {self.graphs} graphs "
            f"({self.full_hits} full hits, {cache.evictions} evictions, "
            f"{cache.current_bytes / _MB:.1f} MB cached)"
        )


class MaterializationEngine:
    """Materializes APTs for many join graphs, sharing join prefixes.

    Args:
        pt: the provenance table all APTs extend.
        db: the database supplying context relations.
        restrict_row_ids: default question restriction applied to the PT
            side when a ``materialize*`` call does not pass its own.
            Restrictions namespace every cache key (see
            :func:`restriction_fingerprint`), so one engine can serve
            many questions without rebuilding its trie.
        cache_mb: total memory budget in megabytes for the engine's
            caches; with the join memo enabled the prefix trie gets
            three quarters and the memo one quarter, otherwise the trie
            gets everything.  0 disables all caching, making
            ``materialize`` equivalent to ``materialize_apt``.
        join_memo_entries: entry bound of the db-layer memoized
            hash-join LRU.  Off by default: inside the engine the trie
            subsumes it — a memo hit requires both input fingerprints to
            survive, and recomputing any evicted prefix creates a fresh
            relation whose children's memo keys can never match again —
            measured hit rates are zero while the byte share is better
            spent on the trie.  Enable it for workloads that re-join
            long-lived relations outside the trie's key space.  The memo
            applies to the eager pipeline only (index frames carry no
            fingerprints).
        late_materialization: run the plan pipeline on
            :class:`~repro.db.frame.IndexFrame` index vectors (the
            default): joins gather only key columns, the trie caches
            compact per-base-table row-index frames instead of full
            relations, and APT columns gather on demand at the mining
            edge.  Off restores the eager pipeline; results are
            byte-identical either way.
        join_strategy: how frame join steps execute and what the trie
            caches for them — ``"hash"`` (the reference core, cached as
            index-vector frames) or ``"sorted-window"``
            (:mod:`repro.db.join_strategy`: searchsorted windows over
            shared per-column sort permutations, cached as compact
            :class:`~repro.db.join_strategy.WindowEntry` objects that
            expand byte-identically on hit).  Applies to the
            late-materialized pipeline; the eager pipeline always hash
            joins.  Results are byte-identical across strategies.
    """

    def __init__(
        self,
        pt: ProvenanceTable,
        db: Database,
        restrict_row_ids: np.ndarray | None = None,
        cache_mb: float = 256.0,
        join_memo_entries: int = 0,
        late_materialization: bool = True,
        join_strategy: str = "hash",
    ):
        if cache_mb < 0:
            raise ValueError("cache_mb must be >= 0")
        self._pt = pt
        self._db = db
        self._late = late_materialization
        self._strategy = make_join_strategy(join_strategy)
        self._windowed = late_materialization and join_strategy != "hash"
        self._default_restriction = restrict_row_ids
        # Restriction fingerprint -> restricted PT-side base relation.
        # Memoized so re-asked questions reuse the same base object and
        # the join memo sees stable fingerprints; LRU-bounded so a
        # long-lived engine answering many distinct questions cannot
        # accumulate filtered PT copies without limit (evicted bases
        # are recomputed deterministically — trie keys are unaffected).
        self._bases: "OrderedDict[tuple | None, Relation | IndexFrame]" = (
            OrderedDict()
        )
        total_bytes = int(cache_mb * _MB)
        if total_bytes <= 0 or join_memo_entries <= 0:
            self._join_cache = None
            trie_bytes = total_bytes
        else:
            memo_bytes = total_bytes // 4
            trie_bytes = total_bytes - memo_bytes
            self._join_cache = JoinCache(
                join_memo_entries, capacity_bytes=memo_bytes
            )
        self._cache = PrefixCache(trie_bytes)
        self._contexts: dict[tuple[str, str], Relation] = {}
        self._graphs = 0
        self._steps_reused = 0
        self._steps_computed = 0
        self._full_hits = 0

    # ------------------------------------------------------------------
    def _restriction(
        self, restrict_row_ids: np.ndarray | None | Any
    ) -> tuple[tuple | None, "Relation | IndexFrame"]:
        """Resolve a per-call restriction to (fingerprint, base).

        The base is a filtered PT relation on the eager path, or an
        index frame over the full PT relation (restriction as a row
        vector) under late materialization.
        """
        if restrict_row_ids is _USE_DEFAULT:
            restrict_row_ids = self._default_restriction
        key = restriction_fingerprint(restrict_row_ids)
        base = self._bases.get(key)
        if base is None:
            if self._late:
                base = restrict_base_frame(self._pt, restrict_row_ids)
            else:
                base = restrict_base(self._pt, restrict_row_ids)
            self._bases[key] = base
            while len(self._bases) > _MAX_MEMOIZED_BASES:
                self._bases.popitem(last=False)
        else:
            self._bases.move_to_end(key)
        return key, base

    def _context(self, table: str, alias: str) -> Relation:
        """The context relation prefixed for ``alias``, memoized.

        Memoization keeps fingerprints stable across graphs so the
        join memo can recognize repeated (prefix ⋈ context) work.
        """
        key = (table, alias)
        relation = self._contexts.get(key)
        if relation is None:
            relation = self._db.table(table).prefix_columns(f"{alias}.")
            self._contexts[key] = relation
        return relation

    def materialize(
        self,
        join_graph: JoinGraph,
        restrict_row_ids: np.ndarray | None | Any = _USE_DEFAULT,
    ) -> AugmentedProvenanceTable:
        """Materialize APT(Q, D, Ω), reusing the longest cached prefix.

        Produces relations identical (schema, rows, row order,
        ``__pt_row_id``) to :func:`repro.core.apt.materialize_apt` — both
        execute the same canonical plan; only the starting point differs.
        ``restrict_row_ids`` overrides the engine's default restriction
        for this call (pass ``None`` for an unrestricted APT).
        """
        return self._materialize_plan(
            join_graph,
            build_plan(join_graph, self._pt),
            *self._restriction(restrict_row_ids),
        )

    def materialize_many(
        self,
        join_graphs: Sequence[JoinGraph],
        restrict_row_ids: np.ndarray | None | Any = _USE_DEFAULT,
    ) -> list[AugmentedProvenanceTable]:
        """Materialize a batch of join graphs, returned in input order.

        Convenience wrapper over :meth:`materialize_iter`; holds every
        APT of the batch alive at once, so prefer the iterator when the
        batch is large and APTs can be consumed one at a time.
        """
        results: list[AugmentedProvenanceTable | None] = [None] * len(
            join_graphs
        )
        for index, apt in self.materialize_iter(
            join_graphs, restrict_row_ids
        ):
            results[index] = apt
        return results  # type: ignore[return-value]

    def materialize_iter(
        self,
        join_graphs: Sequence[JoinGraph],
        restrict_row_ids: np.ndarray | None | Any = _USE_DEFAULT,
    ) -> Iterator[tuple[int, AugmentedProvenanceTable]]:
        """Yield ``(input_index, APT)`` in trie (prefix DFS) order.

        BFS enumeration emits all size-k graphs before any size-(k+1)
        graph, so by the time a graph's extensions arrive its cached
        prefix may be hundreds of insertions cold and already evicted.
        Visiting the batch in lexicographic plan order instead keeps each
        shared prefix hot exactly while its whole subtree is processed —
        the LRU then only needs to hold one root-to-leaf path plus recent
        siblings.  Yielding one APT at a time lets callers bound how many
        finished APTs are alive simultaneously; each yield carries the
        graph's index in the input sequence so order-sensitive callers
        can reassemble input order.
        """
        restriction_key, base = self._restriction(restrict_row_ids)
        plans = [build_plan(g, self._pt) for g in join_graphs]
        order = sorted(
            range(len(plans)), key=lambda i: _plan_order_key(plans[i])
        )
        for i in order:
            yield i, self._materialize_plan(
                join_graphs[i], plans[i], restriction_key, base
            )

    def _materialize_plan(
        self,
        join_graph: JoinGraph,
        plan,
        restriction_key: tuple | None,
        base: "Relation | IndexFrame",
    ) -> AugmentedProvenanceTable:
        steps = plan.steps
        self._graphs += 1

        # Trie keys are namespaced by the restriction (so APTs of
        # different questions never alias) and by the join strategy
        # (entry shapes differ — frames vs window entries — so a
        # strategy never reads another strategy's intermediates).
        def prefix_key(depth: int) -> tuple:
            return (restriction_key, self._strategy.name) + steps[:depth]

        current = base
        depth = len(steps)
        while depth > 0:
            cached = self._cache.get(prefix_key(depth))
            if cached is not None:
                current = (
                    cached.expand()
                    if isinstance(cached, WindowEntry)
                    else cached
                )
                break
            depth -= 1
        self._steps_reused += depth
        if steps and depth == len(steps):
            self._full_hits += 1

        for i in range(depth, len(steps)):
            step = steps[i]
            if isinstance(step, JoinStep) and self._windowed and isinstance(
                current, IndexFrame
            ):
                current, cache_value = self._strategy.join_frame(
                    current,
                    self._context(step.table, step.alias),
                    step.conditions,
                )
            elif isinstance(step, JoinStep):
                current = execute_join_step(
                    current,
                    step,
                    self._db,
                    join_cache=self._join_cache,
                    context=self._context(step.table, step.alias),
                )
                cache_value = current
            else:
                current = apply_filter_step(current, step)
                if self._windowed and isinstance(current, IndexFrame):
                    current = self._strategy.compact(current)
                cache_value = current
            self._steps_computed += 1
            self._cache.put(prefix_key(i + 1), cache_value)

        return _wrap_apt(join_graph, self._pt, current, self._db)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        strategy = self._strategy.stats
        return EngineStats(
            graphs=self._graphs,
            steps_reused=self._steps_reused,
            steps_computed=self._steps_computed,
            full_hits=self._full_hits,
            join_memo_hits=self._join_cache.hits if self._join_cache else 0,
            windows_built=strategy.windows_built,
            searchsorted_probes=strategy.searchsorted_probes,
            permutation_reuses=strategy.permutation_reuses,
            cache=self._cache.refresh_gauges(),
        )

    @property
    def late_materialization(self) -> bool:
        """Whether this engine runs the index-vector pipeline."""
        return self._late

    @property
    def join_strategy(self) -> str:
        """The configured join strategy's registry name."""
        return self._strategy.name
