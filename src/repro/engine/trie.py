"""The materialization trie: an LRU-bounded cache over join prefixes.

Join graphs are canonicalized into ordered step sequences by
:func:`repro.core.apt.build_plan`; the tuple of the first j steps is the
*prefix key* identifying the intermediate relation PT ⋈ S₁ ⋈ … ⋈ Sⱼ.
Because the canonical step order extends the BFS enumeration order of
:mod:`repro.core.enumeration` (see the ordering invariant documented in
:mod:`repro.core.apt`), every graph extending the same size-(k−1) graph
shares that graph's whole prefix, so the cache is logically a trie over
plan steps — stored flat as a dict keyed by prefix tuples, with one LRU
spine across all prefixes.

Entries are whatever the engine materializes: full
:class:`~repro.db.relation.Relation` intermediates on the eager path, or
compact :class:`~repro.db.frame.IndexFrame` index-vector frames under
late materialization — anything exposing ``estimated_bytes``.  Frames
shrink entries by roughly the joined table's width, so far more prefixes
fit in the same byte budget.

Memory is bounded: each cached entry is charged its ``estimated_bytes``
and cold prefixes are evicted least-recently-used once the budget is
exceeded.  A capacity of zero disables caching entirely (every insert is
rejected).  :attr:`CacheStats.entries` and
:attr:`CacheStats.median_entry_bytes` are gauges describing the live
entry population (refreshed by :meth:`PrefixCache.refresh_gauges`).
"""

from __future__ import annotations

import statistics
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Protocol


class CacheableEntry(Protocol):
    """Anything the trie can hold: sized, immutable join intermediates.

    ``estimated_bytes`` is the entry's standalone size.  Entries that
    reference arrays shared with *other* entries (e.g. the sort
    permutation behind every :class:`~repro.db.join_strategy.WindowEntry`
    over one column) may additionally expose ``own_bytes`` (marginal
    size excluding shared arrays) and ``shared_components`` (a tuple of
    ``(token, nbytes)`` pairs identifying the shared arrays); the cache
    then charges each distinct token once, however many live entries
    reference it — never once per entry.
    """

    @property
    def estimated_bytes(self) -> int: ...


@dataclass
class CacheStats:
    """Counters describing one prefix cache's lifetime.

    ``entries`` and ``median_entry_bytes`` are point-in-time gauges over
    the live entry population (not monotone counters); the engine
    refreshes them when its stats are read.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    rejected: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0
    entries: int = 0
    median_entry_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "rejected": self.rejected,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "entries": self.entries,
            "median_entry_bytes": self.median_entry_bytes,
        }

    @property
    def hit_rate(self) -> float:
        """Probe hit fraction in [0, 1] (0.0 before any probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0


class PrefixCache:
    """LRU cache mapping plan-prefix keys to join intermediates.

    Keys are tuples of (hashable, frozen) plan steps; values are the
    immutable relations — or index-vector frames — produced by executing
    exactly those steps.  The byte budget counts each entry's
    ``estimated_bytes``; a single entry larger than the whole budget is
    rejected outright rather than thrashing the cache.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: (
            "OrderedDict[tuple, tuple[Any, int, tuple[tuple[Any, int], ...]]]"
        ) = OrderedDict()
        # Shared-component token -> [live reference count, nbytes].
        # Components (e.g. a window strategy's sort permutation shared
        # by every entry probing one column) are charged to
        # current_bytes once on first reference and released when the
        # last referencing entry leaves — never double-counted, so
        # window entries cannot inflate evictions.
        self._shared: dict[Any, list[int]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @staticmethod
    def _sizing(value: CacheableEntry) -> tuple[int, tuple]:
        """``(own_bytes, shared_components)`` of an entry.

        Entries without the shared-component protocol are their
        ``estimated_bytes`` with nothing shared — identical accounting
        to the historical cache.
        """
        shares = tuple(getattr(value, "shared_components", ()))
        if shares:
            own = int(value.own_bytes)
        else:
            own = int(value.estimated_bytes)
        return own, shares

    def get(self, key: tuple) -> Any | None:
        """The entry cached under ``key``, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def put(self, key: tuple, value: CacheableEntry) -> None:
        """Insert ``value`` under ``key``, evicting cold prefixes."""
        own, shares = self._sizing(value)
        charge = own + sum(
            nbytes for token, nbytes in shares if token not in self._shared
        )
        if self.capacity_bytes <= 0 or charge > self.capacity_bytes:
            self.stats.rejected += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._release(old)
        self._entries[key] = (value, own, shares)
        self.stats.current_bytes += own
        for token, nbytes in shares:
            ref = self._shared.get(token)
            if ref is None:
                self._shared[token] = [1, nbytes]
                self.stats.current_bytes += nbytes
            else:
                ref[0] += 1
        self.stats.insertions += 1
        while self.stats.current_bytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._release(evicted)
            self.stats.evictions += 1
        self.stats.peak_bytes = max(
            self.stats.peak_bytes, self.stats.current_bytes
        )

    def _release(self, entry: tuple) -> None:
        """Return an entry's bytes (and shared refs) to the budget."""
        _, own, shares = entry
        self.stats.current_bytes -= own
        for token, nbytes in shares:
            ref = self._shared[token]
            ref[0] -= 1
            if ref[0] == 0:
                del self._shared[token]
                self.stats.current_bytes -= nbytes

    def median_entry_bytes(self) -> int:
        """Median *marginal* entry size over the live entries (0 if
        empty): each entry's own bytes, shared components excluded —
        the true per-prefix cost of the cache's population."""
        if not self._entries:
            return 0
        return int(
            statistics.median(own for _, own, _ in self._entries.values())
        )

    def refresh_gauges(self) -> CacheStats:
        """Update (and return) the live-population gauges in ``stats``."""
        self.stats.entries = len(self._entries)
        self.stats.median_entry_bytes = self.median_entry_bytes()
        return self.stats

    def clear(self) -> None:
        self._entries.clear()
        self._shared.clear()
        self.stats.current_bytes = 0
        self.stats.entries = 0
        self.stats.median_entry_bytes = 0
