"""The materialization trie: an LRU-bounded cache over join prefixes.

Join graphs are canonicalized into ordered step sequences by
:func:`repro.core.apt.build_plan`; the tuple of the first j steps is the
*prefix key* identifying the intermediate relation PT ⋈ S₁ ⋈ … ⋈ Sⱼ.
Because the canonical step order extends the BFS enumeration order of
:mod:`repro.core.enumeration` (see the ordering invariant documented in
:mod:`repro.core.apt`), every graph extending the same size-(k−1) graph
shares that graph's whole prefix, so the cache is logically a trie over
plan steps — stored flat as a dict keyed by prefix tuples, with one LRU
spine across all prefixes.

Memory is bounded: each cached relation is charged its
:attr:`~repro.db.relation.Relation.estimated_bytes` and cold prefixes are
evicted least-recently-used once the budget is exceeded.  A capacity of
zero disables caching entirely (every insert is rejected).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..db.relation import Relation


@dataclass
class CacheStats:
    """Counters describing one prefix cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    rejected: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "rejected": self.rejected,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
        }


class PrefixCache:
    """LRU cache mapping plan-prefix keys to intermediate relations.

    Keys are tuples of (hashable, frozen) plan steps; values are the
    immutable relations produced by executing exactly those steps.  The
    byte budget counts estimated relation sizes; a single relation larger
    than the whole budget is rejected outright rather than thrashing the
    cache.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple, tuple[Relation, int]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> Relation | None:
        """The relation cached under ``key``, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def put(self, key: tuple, relation: Relation) -> None:
        """Insert ``relation`` under ``key``, evicting cold prefixes."""
        nbytes = relation.estimated_bytes
        if self.capacity_bytes <= 0 or nbytes > self.capacity_bytes:
            self.stats.rejected += 1
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.current_bytes -= old[1]
        self._entries[key] = (relation, nbytes)
        self.stats.current_bytes += nbytes
        self.stats.insertions += 1
        while self.stats.current_bytes > self.capacity_bytes and self._entries:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self.stats.current_bytes -= evicted_bytes
            self.stats.evictions += 1
        self.stats.peak_bytes = max(
            self.stats.peak_bytes, self.stats.current_bytes
        )

    def clear(self) -> None:
        self._entries.clear()
        self.stats.current_bytes = 0
