"""The explanation engine: shared-prefix APT materialization + parallel mining.

Layering: db → core → engine → api → cli.  The engine consumes the
canonical materialization plans of :mod:`repro.core.apt` and the
memoized hash-join path of :mod:`repro.db.executor`;
:class:`repro.api.CajadeSession` drives it (one long-lived engine per
registered query) and the CLI surfaces its knobs (``--workers``,
``--apt-cache-mb``) and cache statistics.
"""

from .engine import EngineStats, MaterializationEngine, restriction_fingerprint
from .parallel import graph_rng, run_streaming
from .trie import CacheStats, PrefixCache

__all__ = [
    "CacheStats",
    "EngineStats",
    "MaterializationEngine",
    "PrefixCache",
    "graph_rng",
    "restriction_fingerprint",
    "run_streaming",
]
