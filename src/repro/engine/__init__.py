"""The explanation engine: shared-prefix APT materialization + parallel mining.

Layering: db → core → engine → cli.  The engine consumes the canonical
materialization plans of :mod:`repro.core.apt` and the memoized hash-join
path of :mod:`repro.db.executor`; :class:`repro.core.explainer
.CajadeExplainer` drives it and the CLI surfaces its knobs
(``--workers``, ``--apt-cache-mb``) and cache statistics.
"""

from .engine import EngineStats, MaterializationEngine
from .parallel import graph_rng, run_streaming
from .trie import CacheStats, PrefixCache

__all__ = [
    "CacheStats",
    "EngineStats",
    "MaterializationEngine",
    "PrefixCache",
    "graph_rng",
    "run_streaming",
]
