"""Worker-pool execution of per-join-graph mining tasks.

``mine_apt`` calls across join graphs are independent once every APT has
a dedicated random generator, so they can run in a
:mod:`concurrent.futures` thread pool behind ``CajadeConfig.workers``.
Exact-result preservation rests on two rules enforced here:

- every graph gets its own deterministic generator derived from
  ``(seed, graph_index)`` via :func:`graph_rng`, so no task observes
  another task's draws regardless of scheduling;
- results are returned in submission order, so downstream ranking sees
  the same candidate sequence serial execution produces.

With ``workers <= 1`` tasks run inline on the calling thread through the
identical code path, making serial and parallel runs byte-identical.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Iterable, TypeVar

import numpy as np

K = TypeVar("K")
T = TypeVar("T")
V = TypeVar("V")


def graph_rng(seed: int, index: int) -> np.random.Generator:
    """An independent, deterministic generator for one join graph.

    Seeding with the ``(seed, index)`` entropy pair gives streams that
    are stable across runs and independent across graphs — the property
    that lets mining parallelize without changing any result.
    """
    return np.random.default_rng([seed, index])


def run_streaming(
    items: Iterable[tuple[K, V]],
    fn: Callable[[K, V], T],
    workers: int,
    max_inflight: int | None = None,
    pool: ThreadPoolExecutor | None = None,
) -> dict[K, T]:
    """Consume a stream of keyed work items with bounded buffering.

    ``items`` is pulled lazily; with ``workers <= 1`` each item is
    processed inline before the next is pulled (one item alive at a
    time).  With a pool, at most ``max_inflight`` (default ``2 *
    workers``) items are submitted-but-unfinished before the stream is
    paused — bounding how many produced values (e.g. materialized APTs)
    exist simultaneously.  Returns results keyed by item key; callers
    impose whatever ordering they need.

    ``pool`` lets callers share one executor across several runs (e.g. a
    session answering a batch of requests); it is left running for the
    owner to shut down.  Without it a private pool is created and torn
    down per call.
    """
    results: dict[K, T] = {}
    if workers <= 1:
        for key, value in items:
            results[key] = fn(key, value)
        return results

    def drain(executor: ThreadPoolExecutor) -> None:
        pending: dict = {}
        limit = max_inflight or 2 * workers
        for key, value in items:
            while len(pending) >= limit:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    results[pending.pop(future)] = future.result()
            pending[executor.submit(fn, key, value)] = key
        for future, key in pending.items():
            results[key] = future.result()

    if pool is not None:
        drain(pool)
    else:
        with ThreadPoolExecutor(max_workers=workers) as private:
            drain(private)
    return results
