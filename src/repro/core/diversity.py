"""Diversity-aware top-k selection (paper §3.5).

Ranking purely by F-score tends to return near-duplicate patterns.  The
paper reranks with

    wscore(Φ) = Fscore(Φ) + min_{Φ' ∈ R} D(Φ, Φ')
    D(Φ, Φ')  = Σ_{A : Φ.A ≠ *} matchscore(Φ, Φ', A) / |Φ|

where matchscore awards +1 when Φ' does not use A, penalizes −0.3 when
both use A with different constants, and −2 when both use A with the same
constant.  The highest-F-score pattern seeds R; selection repeats until k
patterns are chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .pattern import Pattern

MATCH_FREE = 1.0
MATCH_DIFFERENT_CONSTANT = -0.3
MATCH_SAME_CONSTANT = -2.0


def match_score(phi: Pattern, other: Pattern, attribute: str) -> float:
    """The paper's matchscore(Φ, Φ', A) for an attribute used by Φ."""
    if not other.uses(attribute):
        return MATCH_FREE
    if phi.value_of(attribute) == other.value_of(attribute):
        return MATCH_SAME_CONSTANT
    return MATCH_DIFFERENT_CONSTANT


def dissimilarity(phi: Pattern, other: Pattern) -> float:
    """D(Φ, Φ') ∈ [−2, 1]; larger means more dissimilar."""
    if phi.size == 0:
        return MATCH_FREE
    total = sum(
        match_score(phi, other, attribute) for attribute in phi.attributes
    )
    return total / phi.size


def wscore(
    phi: Pattern, f_score: float, selected: Sequence[Pattern]
) -> float:
    """F-score plus distance to the most similar already-selected pattern."""
    if not selected:
        return f_score
    return f_score + min(dissimilarity(phi, other) for other in selected)


def select_diverse_top_k(
    candidates: Sequence[tuple[Pattern, float, Any]],
    k: int,
) -> list[tuple[Pattern, float, Any]]:
    """Greedy wscore selection of k diverse candidates.

    ``candidates`` are (pattern, f_score, payload) triples; the payload is
    carried through untouched (the mining pipeline stores full explanation
    records there).  The first pick is always the highest F-score; every
    subsequent pick maximizes wscore against the already-selected set.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    remaining = sorted(
        candidates, key=lambda c: (-c[1], c[0].describe())
    )
    if not remaining:
        return []
    selected: list[tuple[Pattern, float, Any]] = [remaining.pop(0)]
    while remaining and len(selected) < k:
        chosen_patterns = [entry[0] for entry in selected]
        best_index = 0
        best_score = float("-inf")
        for index, (pattern, f_score, _payload) in enumerate(remaining):
            score = wscore(pattern, f_score, chosen_patterns)
            if score > best_score:
                best_score = score
                best_index = index
        selected.append(remaining.pop(best_index))
    return selected
