"""LCA pattern-candidate generation over categorical attributes (§3.2).

Following Gebaly et al. [19], candidates come from the cross product of an
APT sample with itself: for each row pair (t, t'), keep the categorical
attributes on which they agree as equality predicates and wildcard the
rest — the "lowest common ancestor" of the two rows in the pattern
lattice.  Constants that co-occur frequently therefore surface as
candidates.  Numeric attributes stay ``*`` at this stage.

The sample is governed by λpat-samp with an absolute cap (1000 rows in the
paper's experiments); the number of examined pairs is additionally capped
to keep the quadratic step bounded.
"""

from __future__ import annotations

import numpy as np

from .config import CajadeConfig
from .pattern import OP_EQ, Pattern, PatternPredicate


def lca_candidates(
    columns: dict[str, np.ndarray],
    categorical_attrs: list[str],
    config: CajadeConfig,
    rng: np.random.Generator,
) -> list[Pattern]:
    """Generate candidate categorical patterns from a row-pair sample.

    ``columns`` are row-aligned APT columns (typically already restricted
    to the question's provenance rows).  Returns deduplicated non-empty
    patterns; the empty pattern (all ``*``) is excluded because it carries
    no information.
    """
    attrs = [
        a
        for a in categorical_attrs
        if a in columns and columns[a].dtype == object
    ]
    if not attrs:
        return []
    n_rows = len(next(iter(columns.values())))
    if n_rows == 0:
        return []

    sample_size = max(1, int(round(n_rows * config.lca_sample_rate)))
    sample_size = min(sample_size, config.lca_sample_cap, n_rows)
    if sample_size < n_rows:
        indices = rng.choice(n_rows, size=sample_size, replace=False)
    else:
        indices = np.arange(n_rows)

    arrays = [columns[a][indices] for a in attrs]
    m = len(indices)

    patterns: set[Pattern] = set()

    # Singleton patterns from single rows (the LCA of a row with itself);
    # these capture individually frequent constants.
    for i in range(m):
        predicates = [
            PatternPredicate(attr, OP_EQ, arr[i])
            for attr, arr in zip(attrs, arrays)
            if arr[i] is not None
        ]
        if predicates:
            patterns.add(Pattern(predicates))

    # Pairwise LCAs, capped.
    total_pairs = m * (m - 1) // 2
    if total_pairs <= config.lca_pair_cap:
        pair_iter = (
            (i, j) for i in range(m) for j in range(i + 1, m)
        )
    else:
        firsts = rng.integers(0, m, size=config.lca_pair_cap)
        seconds = rng.integers(0, m, size=config.lca_pair_cap)
        pair_iter = (
            (int(a), int(b)) for a, b in zip(firsts, seconds) if a != b
        )

    for i, j in pair_iter:
        predicates = []
        for attr, arr in zip(attrs, arrays):
            vi, vj = arr[i], arr[j]
            if vi is not None and vi == vj:
                predicates.append(PatternPredicate(attr, OP_EQ, vi))
        if predicates:
            patterns.add(Pattern(predicates))

    return sorted(patterns, key=lambda p: (p.size, p.describe()))


def pick_top_candidates(
    patterns: list[Pattern],
    recall_of,
    k_cat: int,
    recall_threshold: float,
) -> list[Pattern]:
    """Filter by recall threshold, then keep the k_cat highest-recall
    candidates (Algorithm 1's pickTopK over P_cat).

    ``recall_of`` maps a pattern to its (possibly sampled) recall w.r.t.
    the question's primary tuple(s); callers pass the max over t1/t2 so a
    pattern strong for either side survives.
    """
    scored = []
    for pattern in patterns:
        recall = recall_of(pattern)
        if recall >= recall_threshold:
            scored.append((recall, pattern))
    scored.sort(key=lambda pair: (-pair[0], pair[1].describe()))
    return [pattern for _, pattern in scored[:k_cat]]
