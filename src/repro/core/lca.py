"""LCA pattern-candidate generation over categorical attributes (§3.2).

Following Gebaly et al. [19], candidates come from the cross product of an
APT sample with itself: for each row pair (t, t'), keep the categorical
attributes on which they agree as equality predicates and wildcard the
rest — the "lowest common ancestor" of the two rows in the pattern
lattice.  Constants that co-occur frequently therefore surface as
candidates.  Numeric attributes stay ``*`` at this stage.

Two execution strategies produce the same deduplicated pattern set:

- :func:`lca_candidates_codes` — the default *code-based* LCA.  It runs
  on the mining kernel's int32 dictionary codes end to end: the sample
  is a ``(m, n_attrs)`` code matrix, pairwise agreement is one broadcast
  integer comparison over the sampled pair index arrays (the NULL
  sentinel ``-1`` never agrees), surviving LCAs are deduplicated as int
  row keys with ``np.unique``, and :class:`Pattern` objects are
  constructed **only** for the deduplicated survivors.  The pre-kernel
  path built a Pattern per agreeing pair (~millions of
  ``Pattern.__init__`` calls per question on the Fig-9 workload); the
  code path builds a few hundred.
- :func:`lca_candidates` — the retained *object-based* reference: a
  Python loop over row pairs comparing raw cell objects.  It is the
  byte-identity baseline the code path is verified against (tests and
  the ``bench_mining_kernel`` CI smoke) and the fallback when no kernel
  is available (``use_kernel=False`` / ``use_code_lca=False``) or a
  column defeated dictionary encoding.

Both paths consume randomness identically (same ``rng.choice`` /
``rng.integers`` calls via the shared sampling helpers), so a run is
byte-identical whichever path generated its candidates.

The sample is governed by λpat-samp with an absolute cap (1000 rows in the
paper's experiments); the number of examined pairs is additionally capped
to keep the quadratic step bounded.
"""

from __future__ import annotations

import numpy as np

from .config import CajadeConfig
from .pattern import OP_EQ, Pattern, PatternPredicate
from .timing import (
    LCA_PAIRS_EXAMINED,
    LCA_PATTERNS_BUILT,
    LCA_PEAK_CHUNK_BYTES,
    StepTimer,
)

# Pairwise agreement matrices are materialized in bounded chunks so the
# λpat-samp cross product's peak allocation stays flat even on the
# no-feature-selection arm where n_attrs can be large.  The budget is
# expressed in bytes of live chunk temporaries rather than cells, so a
# wide attribute set shrinks the row count instead of inflating the
# footprint: each chunk cell costs 13 bytes — gathered left codes (4) +
# gathered right codes (4) + boolean agreement (1) + masked keys (4).
_PAIR_CHUNK_BYTES = 48 * 2**20
_BYTES_PER_PAIR_CELL = 13


def _pair_chunk_rows(n_attrs: int, budget_bytes: int = _PAIR_CHUNK_BYTES) -> int:
    """Rows per agreement chunk under the byte budget (always ≥ 1)."""
    return max(1, budget_bytes // (_BYTES_PER_PAIR_CELL * max(1, n_attrs)))


def _record_peak_chunk_bytes(timer: StepTimer | None, peak_bytes: int) -> None:
    """Fold this call's peak chunk footprint into the running-max gauge."""
    if timer is None or peak_bytes <= 0:
        return
    timer.set_gauge(
        LCA_PEAK_CHUNK_BYTES,
        max(timer.counter(LCA_PEAK_CHUNK_BYTES), peak_bytes),
    )


def _sample_row_indices(
    n_rows: int, config: CajadeConfig, rng: np.random.Generator
) -> np.ndarray:
    """The λpat-samp row sample (shared by both LCA paths: one
    ``rng.choice`` call with identical arguments, or none at all)."""
    sample_size = max(1, int(round(n_rows * config.lca_sample_rate)))
    sample_size = min(sample_size, config.lca_sample_cap, n_rows)
    if sample_size < n_rows:
        return rng.choice(n_rows, size=sample_size, replace=False)
    return np.arange(n_rows)


def _candidate_order(patterns: set[Pattern]) -> list[Pattern]:
    """Deterministic, path-independent ordering of a candidate set.

    ``(size, describe)`` is the historical (and user-visible) order; the
    type-name/str tiebreak totalizes it over distinct patterns whose
    describes collide (possible only in columns mixing equal-rendering
    values of different types, which the db layer's TEXT columns never
    produce), so iteration/insertion order of the set never leaks into
    the result.  Identity-distinct NaN constants remain mutually
    unordered — such patterns are behaviourally indistinguishable
    (identical rendering, match nothing), so their relative order
    cannot affect output.
    """
    return sorted(
        patterns,
        key=lambda p: (
            p.size,
            p.describe(),
            tuple(
                (q.attribute, q.op, type(q.value).__name__, str(q.value))
                for q in p.predicates
            ),
        ),
    )


def _pair_indices(
    m: int, config: CajadeConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays (i, j) of the examined row pairs.

    All i < j pairs when they fit under the cap; otherwise
    ``lca_pair_cap`` pairs drawn with two ``rng.integers`` calls (self
    pairs dropped) — exactly the draws the object-based path has always
    made, so both paths stay on one rng trajectory.
    """
    total_pairs = m * (m - 1) // 2
    if total_pairs <= config.lca_pair_cap:
        i, j = np.triu_indices(m, k=1)
        return i, j
    firsts = rng.integers(0, m, size=config.lca_pair_cap)
    seconds = rng.integers(0, m, size=config.lca_pair_cap)
    keep = firsts != seconds
    return firsts[keep], seconds[keep]


def lca_candidates(
    columns: dict[str, np.ndarray],
    categorical_attrs: list[str],
    config: CajadeConfig,
    rng: np.random.Generator,
    timer: StepTimer | None = None,
) -> list[Pattern]:
    """Object-based reference LCA generation (the byte-identity baseline).

    ``columns`` are row-aligned APT columns (typically already restricted
    to the question's provenance rows).  Returns deduplicated non-empty
    patterns; the empty pattern (all ``*``) is excluded because it carries
    no information.
    """
    attrs = [
        a
        for a in categorical_attrs
        if a in columns and columns[a].dtype == object
    ]
    if not attrs:
        return []
    n_rows = len(next(iter(columns.values())))
    if n_rows == 0:
        return []

    indices = _sample_row_indices(n_rows, config, rng)
    arrays = [columns[a][indices] for a in attrs]
    m = len(indices)

    patterns: set[Pattern] = set()
    built = 0

    # Singleton patterns from single rows (the LCA of a row with itself);
    # these capture individually frequent constants.
    for i in range(m):
        predicates = [
            PatternPredicate(attr, OP_EQ, arr[i])
            for attr, arr in zip(attrs, arrays)
            if arr[i] is not None
        ]
        if predicates:
            patterns.add(Pattern(predicates))
            built += 1

    # Pairwise LCAs, capped.
    pair_i, pair_j = _pair_indices(m, config, rng)
    for i, j in zip(pair_i.tolist(), pair_j.tolist()):
        predicates = []
        for attr, arr in zip(attrs, arrays):
            vi, vj = arr[i], arr[j]
            if vi is not None and vi == vj:
                predicates.append(PatternPredicate(attr, OP_EQ, vi))
        if predicates:
            patterns.add(Pattern(predicates))
            built += 1

    if timer is not None:
        timer.count(LCA_PAIRS_EXAMINED, len(pair_i))
        timer.count(LCA_PATTERNS_BUILT, built)
    return _candidate_order(patterns)


def lca_candidates_codes(
    kernel,
    categorical_attrs: list[str],
    config: CajadeConfig,
    rng: np.random.Generator,
    timer: StepTimer | None = None,
) -> list[Pattern]:
    """Code-based LCA generation on a :class:`~repro.core.kernel.MiningKernel`.

    Same deduplicated pattern set as :func:`lca_candidates` over the
    kernel's columns, computed on int32 dictionary codes:

    - the row sample becomes two ``(m, n_attrs)`` code matrices — the
      *match* view (NULLs ``-1``, drives pairwise agreement) and the
      *counting* view (only ``None`` is ``-1``, drives singleton rows,
      matching the object path's ``is not None`` test);
    - pairwise agreement is ``(left == right) & (left != -1)`` broadcast
      over the pair index arrays; an agreeing attribute keeps its code,
      a disagreeing one becomes the wildcard ``-1`` — NULL codes never
      agree, so ``-1`` is unambiguous as the wildcard marker;
    - survivors (pair keys + singleton rows) deduplicate as int row keys
      in one ``np.unique(axis=0)``;
    - :class:`Pattern` objects are constructed only for the survivors,
      decoding codes back to the original value objects through the
      kernel's inverse dictionaries.

    Callers must ensure every object-dtype attribute reaching this
    function has kernel codes (``kernel.match_codes(a) is not None``) —
    :func:`repro.core.mining.mine_apt` falls back to the reference path
    wholesale otherwise.
    """
    attrs = [
        a for a in categorical_attrs if kernel.match_codes(a) is not None
    ]
    if not attrs:
        return []
    n_rows = kernel.num_rows
    if n_rows == 0:
        return []

    indices = _sample_row_indices(n_rows, config, rng)
    m = len(indices)
    match = kernel.code_matrix(attrs, kind="match", indices=indices)
    counting = kernel.code_matrix(attrs, kind="counting", indices=indices)

    key_chunks = [np.unique(counting, axis=0)]

    pair_i, pair_j = _pair_indices(m, config, rng)
    n_attrs = len(attrs)
    chunk = _pair_chunk_rows(n_attrs)
    peak_bytes = 0
    for start in range(0, len(pair_i), chunk):
        rows = min(chunk, len(pair_i) - start)
        peak_bytes = max(peak_bytes, rows * n_attrs * _BYTES_PER_PAIR_CELL)
        left = match[pair_i[start : start + chunk]]
        right = match[pair_j[start : start + chunk]]
        agree = left == right
        agree &= left != -1
        keys = np.where(agree, left, np.int32(-1))
        key_chunks.append(np.unique(keys, axis=0))
    _record_peak_chunk_bytes(timer, peak_bytes)

    all_keys = np.unique(np.concatenate(key_chunks, axis=0), axis=0)
    nonempty = (all_keys != -1).any(axis=1)
    all_keys = all_keys[nonempty]

    values = [kernel.code_values(a) for a in attrs]
    # A set, not a list: two distinct code rows can decode to patterns
    # that compare equal (values equal under ``==`` with different
    # representations), exactly as the object path deduplicates them.
    patterns: set[Pattern] = set()
    for row in all_keys.tolist():
        patterns.add(
            Pattern(
                PatternPredicate(attr, OP_EQ, inverse[code])
                for attr, inverse, code in zip(attrs, values, row)
                if code != -1
            )
        )

    if timer is not None:
        timer.count(LCA_PAIRS_EXAMINED, len(pair_i))
        timer.count(LCA_PATTERNS_BUILT, len(all_keys))
    return _candidate_order(patterns)


def pick_top_candidates(
    patterns: list[Pattern],
    recall_of,
    k_cat: int,
    recall_threshold: float,
) -> list[Pattern]:
    """Filter by recall threshold, then keep the k_cat highest-recall
    candidates (Algorithm 1's pickTopK over P_cat).

    ``recall_of`` maps a pattern to its (possibly sampled) recall w.r.t.
    the question's primary tuple(s); callers pass the max over t1/t2 so a
    pattern strong for either side survives.  When scoring runs on the
    kernel, each candidate's recall reuses the memoized single-predicate
    masks in the evaluator's :class:`~repro.core.kernel.MaskCache`
    instead of re-matching the APT per candidate.
    """
    scored = []
    for pattern in patterns:
        recall = recall_of(pattern)
        if recall >= recall_threshold:
            scored.append((recall, pattern))
    scored.sort(key=lambda pair: (-pair[0], pair[1].describe()))
    return [pattern for _, pattern in scored[:k_cat]]
