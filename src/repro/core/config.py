"""CaJaDE configuration: the paper's λ parameters (Table 1) and defaults.

| Paper name        | Field here            | Paper default |
|-------------------|-----------------------|---------------|
| λ#edges           | max_join_edges        | 3             |
| λ#sel-attr        | num_selected_attrs    | 3             |
| λattrNum          | max_numeric_predicates| 3             |
| λpat-samp         | lca_sample_rate       | 0.1           |
| λF1-samp          | f1_sample_rate        | 0.3           |
| λrecall           | recall_threshold      | (not stated; 0.1) |
| λ#frag            | num_fragments         | (quartile example; 3) |
| λqcost            | qcost_threshold       | (not stated; 5e6 tuples) |

The paper additionally caps the LCA sample at 1000 rows (§5.3) and keeps
k_cat categorical patterns for refinement (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class CajadeConfig:
    """All tunables of the CaJaDE pipeline.

    Attributes mirror Table 1 of the paper plus the implementation knobs
    its text mentions (LCA row cap, k_cat, random-forest shape, the
    attribute-correlation threshold for VARCLUS clustering).
    """

    # -- explanation output -------------------------------------------
    top_k: int = 10
    """Number of explanations returned per join graph (and globally)."""

    # -- join-graph enumeration (λ#edges, λqcost) ----------------------
    max_join_edges: int = 3
    """λ#edges: maximum number of edges in an enumerated join graph."""

    qcost_threshold: float = 5_000_000.0
    """λqcost: skip join graphs whose estimated materialization cost
    (total tuples flowing through the join pipeline) exceeds this."""

    check_pk_connectivity: bool = True
    """isValid's primary-key connectivity test (paper §4)."""

    # -- feature selection (§3.1) ---------------------------------------
    use_feature_selection: bool = True
    """Disable to reproduce the paper's 'w/o feature selection' arm."""

    num_selected_attrs: float = 3
    """λ#sel-attr: attributes kept by random-forest relevance ranking.
    Values >= 1 are a count; values in (0, 1) are a fraction."""

    correlation_threshold: float = 0.9
    """|corr| above which attributes are clustered together (VARCLUS)."""

    rf_num_trees: int = 12
    """Random-forest size for the relevance ranking."""

    rf_max_depth: int = 6
    """Random-forest per-tree depth cap."""

    rf_max_samples: int = 3000
    """Row cap for each bootstrap sample when APTs are large."""

    use_hist_forest: bool = True
    """Train the §3.1 relevance forest with the histogram-based
    frontier-at-a-time learner
    (:class:`repro.ml.hist_forest.HistRandomForestClassifier`): the
    kernel's dictionary codes pass straight through as bins, other
    columns are dictionary-encoded once per forest, and each tree depth
    is a handful of ``np.bincount``/cumsum array ops scoring every
    candidate split of every frontier node at once.  Off trains the
    retained per-node CART reference forest
    (:class:`repro.ml.random_forest.RandomForestClassifier`) in the
    same all-features-per-split configuration.  The two learners
    produce **bit-identical** forests — same bootstrap samples, trees,
    thresholds, and feature importances — so the knob never changes
    selected attributes or ranked output, only speed."""

    # -- LCA pattern candidates (§3.2, λpat-samp) -----------------------
    lca_sample_rate: float = 0.1
    """λpat-samp: fraction of the APT sampled for LCA generation."""

    lca_sample_cap: int = 1000
    """Absolute row cap on the LCA sample (paper §5.3)."""

    lca_pair_cap: int = 200_000
    """Cap on the number of row pairs the LCA cross product examines."""

    k_cat: int = 15
    """Number of categorical patterns kept for numeric refinement."""

    # -- quality computation (λF1-samp, λrecall) ------------------------
    f1_sample_rate: float = 0.3
    """λF1-samp: fraction of the APT sampled for F-score computation.
    1.0 means exact."""

    recall_threshold: float = 0.1
    """λrecall: patterns (and their refinements, by Proposition 3.1)
    below this recall are pruned."""

    use_recall_pruning: bool = True
    """Disable to ablate the Proposition 3.1 monotonicity pruning."""

    # -- numeric refinement (§3.4, λ#frag, λattrNum) --------------------
    num_fragments: int = 3
    """λ#frag: numeric domains are split into this many fragments; only
    fragment boundaries are used as thresholds."""

    max_numeric_predicates: int = 3
    """λattrNum: maximum numeric predicates in one pattern."""

    # -- diversity reranking (§3.5) --------------------------------------
    use_diversity: bool = True
    """Disable to ablate the wscore diversity reranking."""

    # -- functional-dependency guard (paper §8 future work) ---------------
    exclude_group_determined: bool = False
    """Drop attributes that are constant within each question side with
    differing constants across sides — i.e. attributes functionally
    determined by the group key, such as Qmimic5's ethnicity column
    re-entering through patients_admit_info.  The paper flags these
    degenerate explanations as unavoidable without FD reasoning ("we plan
    to address this in future work"); this implements that guard.  Off by
    default because some legitimate paper explanations (e.g. team=MIA for
    the LeBron question) are side-constant too."""

    # -- storage engine: late materialization -----------------------------
    late_materialization: bool = True
    """Run joins (working table and APT materialization) on index
    vectors: a join produces per-base-table row-index arrays instead of
    eagerly zipping copied columns, the shared-prefix trie caches those
    compact frames (entries shrink by roughly the table width, so more
    prefixes fit at the same ``apt_cache_mb``), and APT columns gather
    on demand — the mining kernel gathers load-time dictionary codes
    instead of re-encoding objects per APT.  Off restores the eager
    pipeline end to end; ranked output is byte-identical either way."""

    join_strategy: str = "sorted-window"
    """How the engine executes APT join steps and what the prefix trie
    caches for them.  ``"sorted-window"`` (the default) serves FK joins
    as ``np.searchsorted`` window lookups into lazily built, per-table
    sort permutations over the join-key codes (built once per column
    per process and shared by every alias), and caches compact
    ``(lo, hi)`` windows plus the shared permutation handle instead of
    full index vectors; steps the window path cannot mirror fall back
    to the hash core automatically.  ``"hash"`` runs the reference
    hash-build core for every step.  Requires ``late_materialization``
    to take effect (the eager pipeline always hash joins); ranked
    output is byte-identical across strategies."""

    # -- engine: caching and parallelism ---------------------------------
    workers: int = 1
    """Worker threads mining APTs across join graphs.  1 (the default)
    runs serially; any value preserves results exactly because every
    join graph mines with its own deterministic generator."""

    apt_cache_mb: float = 256.0
    """Memory budget (MB) for the materialization engine's caches —
    the shared-prefix APT trie plus the memoized hash-join results.
    0 disables all engine caching (every APT is rebuilt from the
    provenance table, the pre-engine behaviour)."""

    join_memo_entries: int = 0
    """Entry bound of the db-layer memoized hash-join LRU inside the
    engine (it takes a quarter of ``apt_cache_mb`` when enabled).  Off
    by default: the engine's trie subsumes it for APT materialization —
    see :class:`repro.engine.MaterializationEngine`."""

    # -- columnar scoring kernel ------------------------------------------
    use_kernel: bool = True
    """Score patterns on the dictionary-encoded columnar kernel
    (:class:`repro.core.kernel.MiningKernel`): categorical columns are
    encoded once into int32 codes, coverage is a dense-slot scatter, and
    predicate/pattern masks are memoized with incremental
    ``parent & predicate`` reuse.  Off runs the retained per-row naive
    reference path; ranked output is byte-identical either way."""

    kernel_cache_mb: float = 64.0
    """Memory budget (MB) for the kernel's memoized mask LRU, shared by
    all candidates of one APT.  0 keeps scoring vectorized but disables
    memoization (every mask is recomputed, no incremental reuse)."""

    kernel_verify: bool = False
    """Cross-check every kernel coverage computation against the naive
    reference and raise on any mismatch (tests / CI; slow)."""

    use_code_lca: bool = True
    """Generate §3.2 LCA candidates on the kernel's int32 dictionary
    codes (:func:`repro.core.lca.lca_candidates_codes`): vectorized
    pairwise agreement, int-tuple dedup, Pattern construction only for
    deduplicated survivors.  Off runs the retained object-based
    reference path; the candidate set — and therefore ranked output —
    is byte-identical either way.  Requires ``use_kernel`` (falls back
    to the reference path when the kernel is off or a column defeated
    dictionary encoding)."""

    # -- determinism ------------------------------------------------------
    seed: int = 7
    """Seed for every sampling step (LCA sample, F1 sample, forest)."""

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.max_join_edges < 0:
            raise ValueError("max_join_edges must be >= 0")
        if not 0.0 < self.lca_sample_rate <= 1.0:
            raise ValueError("lca_sample_rate must be in (0, 1]")
        if not 0.0 < self.f1_sample_rate <= 1.0:
            raise ValueError("f1_sample_rate must be in (0, 1]")
        if not 0.0 <= self.recall_threshold <= 1.0:
            raise ValueError("recall_threshold must be in [0, 1]")
        if self.num_fragments < 1:
            raise ValueError("num_fragments must be >= 1")
        if self.num_selected_attrs <= 0:
            raise ValueError("num_selected_attrs must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1 (1 = serial)")
        if self.apt_cache_mb < 0:
            raise ValueError("apt_cache_mb must be >= 0 (0 disables)")
        if self.join_memo_entries < 0:
            raise ValueError("join_memo_entries must be >= 0 (0 disables)")
        if self.kernel_cache_mb < 0:
            raise ValueError("kernel_cache_mb must be >= 0 (0 disables)")
        # Kept as a literal so config stays import-light; the registry
        # itself lives in repro.db.join_strategy.JOIN_STRATEGIES and the
        # two are asserted in sync by tests/test_join_strategies.py.
        if self.join_strategy not in ("hash", "sorted-window"):
            raise ValueError(
                "join_strategy must be 'hash' or 'sorted-window', got "
                f"{self.join_strategy!r}"
            )

    def with_overrides(self, **kwargs) -> "CajadeConfig":
        """A copy with some fields replaced (keeps configs immutable-ish)."""
        return replace(self, **kwargs)

    def selected_attr_count(self, total: int) -> int:
        """Resolve λ#sel-attr against the number of available attributes."""
        if self.num_selected_attrs < 1:
            count = int(round(total * self.num_selected_attrs))
        else:
            count = int(self.num_selected_attrs)
        return max(1, min(total, count))
