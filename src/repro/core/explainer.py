"""The end-to-end CaJaDE pipeline and its public API.

:class:`CajadeExplainer` wires everything together:

1. parse / accept the user's aggregate query and compute its provenance
   table (the role GProM plays in the paper's implementation);
2. resolve the user question to the provenance rows of its output tuples;
3. enumerate join graphs over the schema graph (Algorithm 2), validating
   with PK-connectivity and cost checks;
4. materialize the APT of each valid join graph through the
   :class:`repro.engine.MaterializationEngine` and mine patterns
   (Algorithm 1), optionally across a worker pool
   (``CajadeConfig.workers``);
5. rank the union of all mined patterns by F-score with diversity
   reranking, recompute exact statistics for the finalists, and return
   ranked :class:`Explanation` objects.

APT materialization — the dominant cost of the paper's Figures 8/9 —
runs through the engine's materialization trie: join graphs are
canonicalized into ordered edge prefixes and the intermediate join of a
shared prefix is computed once.  The trie *ordering invariant* makes
this sound and effective: the canonical edge order produced by
:func:`repro.core.apt.build_plan` extends the BFS enumeration order of
:mod:`repro.core.enumeration` (node ids grow in extension order, lowest
frontier id joins first), so a size-k graph extending a size-(k−1) graph
reuses that graph's entire materialization.  Mining then runs per join
graph with an independent per-graph generator, which keeps serial and
parallel executions byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..db.database import Database
from ..db.parser import parse_sql
from ..db.provenance import ProvenanceTable
from ..db.query import Query
from ..engine import (
    EngineStats,
    MaterializationEngine,
    graph_rng,
    run_streaming,
)
from .apt import AugmentedProvenanceTable
from .config import CajadeConfig
from .diversity import select_diverse_top_k
from .enumeration import EnumerationStats, enumerate_join_graphs
from .join_graph import JoinGraph
from .mining import MinedPattern, mine_apt
from .pattern import Pattern
from .quality import PatternSupport, QualityEvaluator, QualityStats
from .question import ComparisonQuestion, OutlierQuestion, ResolvedQuestion
from .schema_graph import SchemaGraph
from .timing import (
    APT_CACHE_EVICTIONS,
    APT_CACHE_HITS,
    APT_CACHE_MISSES,
    JG_ENUMERATION,
    JOIN_MEMO_HITS,
    MATERIALIZE_APTS,
    StepTimer,
)


@dataclass
class Explanation:
    """One ranked explanation E = (Ω, Φ, (c1, a1), (c2, a2)) — Definition 6."""

    join_graph: JoinGraph
    pattern: Pattern
    primary: int
    primary_label: str
    stats: QualityStats
    support: PatternSupport

    @property
    def f_score(self) -> float:
        return self.stats.f_score

    @property
    def precision(self) -> float:
        return self.stats.precision

    @property
    def recall(self) -> float:
        return self.stats.recall

    def describe(self) -> str:
        """One-line human-readable rendering of the explanation.

        Supports are printed primary-tuple first, matching the paper's
        (c1, a1), (c2, a2) convention.
        """
        s = self.support
        if self.primary == 1:
            coverage = (
                f"{s.covered1}/{s.total1} vs {s.covered2}/{s.total2}"
            )
        else:
            coverage = (
                f"{s.covered2}/{s.total2} vs {s.covered1}/{s.total1}"
            )
        return (
            f"{self.pattern.describe()} [{self.primary_label}] "
            f"(covers {coverage}; "
            f"F={self.f_score:.2f}, P={self.precision:.2f}, "
            f"R={self.recall:.2f}) via {self.join_graph.structure()}"
        )

    def describe_full(self) -> str:
        """Multi-line rendering including the join-graph conditions."""
        return "\n".join([self.describe(), self.join_graph.describe()])

    def to_sentence(self) -> str:
        """A paper-style natural-language sentence for this explanation."""
        from .narrative import explanation_sentence

        return explanation_sentence(self)

    def to_dict(self) -> dict:
        """A JSON-serializable record of this explanation."""
        return {
            "pattern": [
                {
                    "attribute": p.attribute,
                    "op": p.op,
                    "value": p.value
                    if not hasattr(p.value, "item")
                    else p.value.item(),
                }
                for p in self.pattern.predicates
            ],
            "primary": self.primary,
            "primary_label": self.primary_label,
            "f_score": self.f_score,
            "precision": self.precision,
            "recall": self.recall,
            "support": {
                "covered1": self.support.covered1,
                "total1": self.support.total1,
                "covered2": self.support.covered2,
                "total2": self.support.total2,
            },
            "join_graph": self.join_graph.structure(),
            "join_conditions": [
                str(edge.condition) for edge in self.join_graph.edges
            ],
            "sentence": self.to_sentence(),
        }


@dataclass
class ExplanationResult:
    """Everything one ``explain`` call produced."""

    explanations: list[Explanation]
    question: ResolvedQuestion
    timer: StepTimer
    enumeration: EnumerationStats
    join_graphs_mined: int
    engine: EngineStats | None = None

    def top(self, k: int | None = None) -> list[Explanation]:
        if k is None:
            return list(self.explanations)
        return self.explanations[:k]

    def describe(self, k: int | None = None) -> str:
        lines = [f"question: {self.question.question.describe()}"]
        for rank, explanation in enumerate(self.top(k), start=1):
            lines.append(f"{rank:2d}. {explanation.describe()}")
        return "\n".join(lines)

    def to_json(self, k: int | None = None, indent: int = 2) -> str:
        """Serialize the top-k explanations as JSON (for tooling/UIs)."""
        import json

        payload = {
            "question": self.question.question.describe(),
            "explanations": [e.to_dict() for e in self.top(k)],
            "join_graphs_mined": self.join_graphs_mined,
            "enumeration": {
                "generated": self.enumeration.generated,
                "valid": self.enumeration.valid,
                "skipped_pk": self.enumeration.invalid_pk,
                "skipped_cost": self.enumeration.invalid_cost,
                "duplicates": self.enumeration.duplicates,
            },
        }
        if self.engine is not None:
            payload["apt_cache"] = {
                "steps_reused": self.engine.steps_reused,
                "steps_computed": self.engine.steps_computed,
                "full_hits": self.engine.full_hits,
                "join_memo_hits": self.engine.join_memo_hits,
                "evictions": (
                    self.engine.cache.evictions if self.engine.cache else 0
                ),
            }
        return json.dumps(payload, indent=indent, default=str)


class CajadeExplainer:
    """Context-Aware Join-Augmented Deep Explanations.

    Args:
        db: the database the query runs against.
        schema_graph: permissible joins; defaults to the FK-derived graph.
        config: λ parameters; defaults to the paper's Table 1 values.
    """

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
    ):
        self.db = db
        self.schema_graph = schema_graph or SchemaGraph.from_database(db)
        self.config = config or CajadeConfig()

    # ------------------------------------------------------------------
    def explain(
        self,
        query: str | Query,
        question: ComparisonQuestion | OutlierQuestion,
        k: int | None = None,
        timer: StepTimer | None = None,
    ) -> ExplanationResult:
        """Produce the globally ranked top-k explanations for a question."""
        config = self.config
        if k is not None:
            config = config.with_overrides(top_k=k)
        timer = timer or StepTimer()

        if isinstance(query, str):
            query = parse_sql(query)
        with timer.step(MATERIALIZE_APTS):
            pt = ProvenanceTable.compute(query, self.db)
        resolved = question.resolve(pt)
        restrict = np.concatenate([resolved.row_ids1, resolved.row_ids2])

        enumeration_stats = EnumerationStats()
        collected: list[tuple[Pattern, float, tuple]] = []

        with timer.step(JG_ENUMERATION):
            join_graphs = list(
                enumerate_join_graphs(
                    self.schema_graph,
                    query,
                    pt,
                    self.db,
                    config,
                    stats=enumeration_stats,
                )
            )

        # Stream APTs out of the shared-prefix engine (trie order, so
        # graphs extending the same prefix reuse its cached
        # intermediate) straight into mining — serial runs hold one APT
        # at a time; a worker pool holds at most 2x workers.  Results
        # are keyed by enumeration index and merged in index order, so
        # the outcome is byte-identical for any schedule.
        engine = MaterializationEngine(
            pt,
            self.db,
            restrict_row_ids=restrict,
            cache_mb=config.apt_cache_mb,
            join_memo_entries=config.join_memo_entries,
        )

        def _nonempty_apts():
            iterator = engine.materialize_iter(join_graphs)
            while True:
                with timer.step(MATERIALIZE_APTS):
                    item = next(iterator, None)
                if item is None:
                    return
                if item[1].num_rows > 0:
                    yield item

        def _mine_one(
            index: int, apt: AugmentedProvenanceTable
        ) -> tuple[StepTimer, list]:
            local_timer = StepTimer()
            rng = graph_rng(config.seed, index)
            mining = mine_apt(apt, resolved, config, rng, timer=local_timer)
            finalists = self._exact_stats(
                apt, resolved, mining.patterns, config, rng
            )
            return local_timer, finalists

        results_by_index = run_streaming(
            _nonempty_apts(), _mine_one, config.workers
        )
        mined_graphs = len(results_by_index)
        for index in sorted(results_by_index):
            local_timer, finalists = results_by_index[index]
            timer.merge(local_timer)
            for mined, stats, support in finalists:
                collected.append(
                    (
                        mined.pattern,
                        stats.f_score,
                        (join_graphs[index], mined, stats, support),
                    )
                )

        engine_stats = engine.stats
        timer.count(APT_CACHE_HITS, engine_stats.steps_reused)
        timer.count(APT_CACHE_MISSES, engine_stats.steps_computed)
        if engine_stats.cache is not None:
            timer.count(APT_CACHE_EVICTIONS, engine_stats.cache.evictions)
        if config.join_memo_entries > 0:
            timer.count(JOIN_MEMO_HITS, engine_stats.join_memo_hits)

        if config.use_diversity:
            chosen = select_diverse_top_k(collected, config.top_k)
        else:
            chosen = sorted(
                collected, key=lambda c: (-c[1], c[0].describe())
            )[: config.top_k]

        explanations = []
        for _pattern, _score, payload in chosen:
            join_graph, mined, stats, support = payload
            explanations.append(
                Explanation(
                    join_graph=join_graph,
                    pattern=mined.pattern,
                    primary=mined.primary,
                    primary_label=resolved.label_for_key(mined.primary == 1),
                    stats=stats,
                    support=support,
                )
            )
        return ExplanationResult(
            explanations=explanations,
            question=resolved,
            timer=timer,
            enumeration=enumeration_stats,
            join_graphs_mined=mined_graphs,
            engine=engine_stats,
        )

    # ------------------------------------------------------------------
    def _exact_stats(
        self,
        apt: AugmentedProvenanceTable,
        resolved: ResolvedQuestion,
        mined: list[MinedPattern],
        config: CajadeConfig,
        rng: np.random.Generator,
    ) -> list[tuple[MinedPattern, QualityStats, PatternSupport]]:
        """Re-evaluate a join graph's finalists exactly (no sampling).

        Mining may run on a λF1-samp sample; the reported supports
        (c1, a1), (c2, a2) and scores of returned explanations are exact.
        """
        if not mined:
            return []
        if config.f1_sample_rate >= 1.0:
            evaluator = None
        else:
            evaluator = QualityEvaluator(
                apt,
                resolved.row_ids1,
                resolved.row_ids2,
                sample_rate=1.0,
                rng=rng,
            )
        results = []
        for entry in mined:
            if evaluator is None:
                stats = entry.stats
                support = PatternSupport(
                    covered1=entry.stats.tp
                    if entry.primary == 1
                    else entry.stats.fp,
                    total1=len(resolved.row_ids1),
                    covered2=entry.stats.fp
                    if entry.primary == 1
                    else entry.stats.tp,
                    total2=len(resolved.row_ids2),
                )
            else:
                cov1, cov2 = evaluator.coverage_counts(entry.pattern)
                stats = evaluator.stats_from_counts(
                    cov1, cov2, primary=entry.primary
                )
                support = PatternSupport(
                    covered1=cov1,
                    total1=len(resolved.row_ids1),
                    covered2=cov2,
                    total2=len(resolved.row_ids2),
                )
            results.append((entry, stats, support))
        return results
