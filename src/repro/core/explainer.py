"""Explanation result types, plus the deprecated one-shot explainer.

The pipeline itself (parse → provenance → enumerate → materialize →
mine → rank, paper Algorithms 1+2) lives in
:class:`repro.api.CajadeSession`, the canonical session-oriented entry
point that keeps parsed queries, provenance tables and the
materialization trie warm across user questions.  This module keeps:

- :class:`Explanation` / :class:`ExplanationResult` — the ranked output
  types every layer shares;
- :class:`CajadeExplainer` — the original one-shot API, now a thin
  deprecated shim that answers each ``explain`` call through a fresh
  one-request session (byte-identical results, none of the reuse).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..db.database import Database
from ..db.query import Query
from ..engine import EngineStats
from .config import CajadeConfig
from .enumeration import EnumerationStats
from .join_graph import JoinGraph
from .pattern import Pattern
from .quality import PatternSupport, QualityStats
from .question import ComparisonQuestion, OutlierQuestion, ResolvedQuestion
from .schema_graph import SchemaGraph
from .timing import StepTimer


@dataclass
class Explanation:
    """One ranked explanation E = (Ω, Φ, (c1, a1), (c2, a2)) — Definition 6."""

    join_graph: JoinGraph
    pattern: Pattern
    primary: int
    primary_label: str
    stats: QualityStats
    support: PatternSupport

    @property
    def f_score(self) -> float:
        return self.stats.f_score

    @property
    def precision(self) -> float:
        return self.stats.precision

    @property
    def recall(self) -> float:
        return self.stats.recall

    def describe(self) -> str:
        """One-line human-readable rendering of the explanation.

        Supports are printed primary-tuple first, matching the paper's
        (c1, a1), (c2, a2) convention.
        """
        s = self.support
        if self.primary == 1:
            coverage = (
                f"{s.covered1}/{s.total1} vs {s.covered2}/{s.total2}"
            )
        else:
            coverage = (
                f"{s.covered2}/{s.total2} vs {s.covered1}/{s.total1}"
            )
        return (
            f"{self.pattern.describe()} [{self.primary_label}] "
            f"(covers {coverage}; "
            f"F={self.f_score:.2f}, P={self.precision:.2f}, "
            f"R={self.recall:.2f}) via {self.join_graph.structure()}"
        )

    def describe_full(self) -> str:
        """Multi-line rendering including the join-graph conditions."""
        return "\n".join([self.describe(), self.join_graph.describe()])

    def to_sentence(self) -> str:
        """A paper-style natural-language sentence for this explanation."""
        from .narrative import explanation_sentence

        return explanation_sentence(self)

    def to_dict(self) -> dict:
        """A JSON-serializable record of this explanation."""
        return {
            "pattern": [
                {
                    "attribute": p.attribute,
                    "op": p.op,
                    "value": p.value
                    if not hasattr(p.value, "item")
                    else p.value.item(),
                }
                for p in self.pattern.predicates
            ],
            "primary": self.primary,
            "primary_label": self.primary_label,
            "f_score": self.f_score,
            "precision": self.precision,
            "recall": self.recall,
            "support": {
                "covered1": self.support.covered1,
                "total1": self.support.total1,
                "covered2": self.support.covered2,
                "total2": self.support.total2,
            },
            "join_graph": self.join_graph.structure(),
            "join_conditions": [
                str(edge.condition) for edge in self.join_graph.edges
            ],
            "sentence": self.to_sentence(),
        }


@dataclass
class ExplanationResult:
    """Everything one ``explain`` call produced."""

    explanations: list[Explanation]
    question: ResolvedQuestion
    timer: StepTimer
    enumeration: EnumerationStats
    join_graphs_mined: int
    engine: EngineStats | None = None

    def top(self, k: int | None = None) -> list[Explanation]:
        if k is None:
            return list(self.explanations)
        return self.explanations[:k]

    def describe(self, k: int | None = None) -> str:
        lines = [f"question: {self.question.question.describe()}"]
        for rank, explanation in enumerate(self.top(k), start=1):
            lines.append(f"{rank:2d}. {explanation.describe()}")
        return "\n".join(lines)

    def to_json(self, k: int | None = None, indent: int = 2) -> str:
        """Serialize the top-k explanations as JSON (for tooling/UIs)."""
        import json

        payload = {
            "question": self.question.question.describe(),
            "explanations": [e.to_dict() for e in self.top(k)],
            "join_graphs_mined": self.join_graphs_mined,
            "enumeration": {
                "generated": self.enumeration.generated,
                "valid": self.enumeration.valid,
                "skipped_pk": self.enumeration.invalid_pk,
                "skipped_cost": self.enumeration.invalid_cost,
                "duplicates": self.enumeration.duplicates,
            },
        }
        if self.engine is not None:
            payload["apt_cache"] = {
                "steps_reused": self.engine.steps_reused,
                "steps_computed": self.engine.steps_computed,
                "full_hits": self.engine.full_hits,
                "join_memo_hits": self.engine.join_memo_hits,
                "evictions": (
                    self.engine.cache.evictions if self.engine.cache else 0
                ),
            }
        return json.dumps(payload, indent=indent, default=str)


class CajadeExplainer:
    """Context-Aware Join-Augmented Deep Explanations (one-shot API).

    .. deprecated:: 1.1
        Use :class:`repro.api.CajadeSession`, which keeps parsed
        queries, provenance tables and the materialization trie warm
        across questions.  This shim answers each ``explain`` call
        through a fresh one-request session: results are byte-identical,
        but every call pays the full cold-start cost the session API
        exists to amortize.

    Args:
        db: the database the query runs against.
        schema_graph: permissible joins; defaults to the FK-derived graph.
        config: λ parameters; defaults to the paper's Table 1 values.
    """

    def __init__(
        self,
        db: Database,
        schema_graph: SchemaGraph | None = None,
        config: CajadeConfig | None = None,
    ):
        warnings.warn(
            "CajadeExplainer is deprecated; use repro.api.CajadeSession "
            "(see the README migration note)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.db = db
        self.schema_graph = schema_graph or SchemaGraph.from_database(db)
        self.config = config or CajadeConfig()

    # ------------------------------------------------------------------
    def explain(
        self,
        query: str | Query,
        question: ComparisonQuestion | OutlierQuestion,
        k: int | None = None,
        timer: StepTimer | None = None,
    ) -> ExplanationResult:
        """Produce the globally ranked top-k explanations for a question.

        Delegates to a fresh one-request :class:`repro.api.CajadeSession`
        (imported lazily — api sits above core in the layering).
        """
        from ..api.session import CajadeSession

        session = CajadeSession(self.db, self.schema_graph, self.config)
        return session.explain(
            query, question, top_k=k, timer=timer
        )
