"""Augmented provenance tables (paper Definition 4).

For a join graph Ω, APT(Q, D, Ω) = σ_θΩ(PT(Q, D) × S_1 × ... × S_p) — the
provenance table joined with every context node's relation on the edge
conditions.  Materialization walks Ω breadth-first from the PT node doing
hash joins; edges closing cycles among visited nodes become post-filters.

Materialization is split into a *canonical plan* (:func:`build_plan`) and
its execution so :mod:`repro.engine` can cache and share intermediate
join results across join graphs.  The canonical step order deliberately
matches the BFS enumeration order of :mod:`repro.core.enumeration`
(lowest node id first — node ids are assigned in extension order): a join
graph of size k that extends a size-(k−1) graph Ω' by a fresh node
produces a plan whose first k−1 join steps are exactly Ω''s plan, which
is the invariant that makes prefix sharing in the engine's
materialization trie fire.  Changing either order breaks that sharing
(results stay correct; only reuse is lost).

Each APT row keeps its originating provenance row's ``__pt_row_id`` so
Definition 7's per-PT-row coverage is computable: a PT row is covered by a
pattern iff at least one of its APT rows matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..db.database import Database
from ..db.errors import ExecutionError
from ..db.executor import JoinCache, hash_join
from ..db.frame import IndexFrame
from ..db.provenance import PT_ROW_ID, ProvenanceTable
from ..db.relation import ColumnEncoding, Relation
from ..db.types import ColumnType
from .join_graph import JoinGraph

PT_COLUMN_PREFIX = "prov."


@dataclass
class APTAttribute:
    """Metadata about one minable APT attribute."""

    name: str
    is_numeric: bool
    from_provenance: bool

    @property
    def display_name(self) -> str:
        if self.from_provenance:
            return f"{PT_COLUMN_PREFIX}{self.name}"
        return self.name


class AugmentedProvenanceTable:
    """A materialized APT plus attribute metadata for pattern mining.

    An APT is backed either by an eager :class:`Relation` (the classic
    path) or by a late-materialized :class:`~repro.db.frame.IndexFrame`
    of per-base-table row-index vectors.  Frame-backed APTs gather
    column values only when a consumer asks for them: the mining kernel
    gathers int32 dictionary codes instead of object values, numeric
    columns gather as cheap float slices, and the full :attr:`relation`
    is materialized lazily (byte-identical to the eager result) only if
    something still needs the whole table.
    """

    def __init__(
        self,
        join_graph: JoinGraph,
        relation: Relation | None = None,
        attributes: list[APTAttribute] | None = None,
        excluded_attributes: list[str] | None = None,
        frame: IndexFrame | None = None,
    ):
        if relation is None and frame is None:
            raise ValueError("an APT needs a relation or an index frame")
        self.join_graph = join_graph
        self._relation = relation
        self._frame = frame
        self.attributes = list(attributes or [])
        self.excluded_attributes = list(excluded_attributes or [])
        self._pt_ids: np.ndarray | None = None

    @property
    def frame(self) -> IndexFrame | None:
        """The backing index frame, or ``None`` for eager APTs."""
        return self._frame

    @property
    def is_late(self) -> bool:
        return self._frame is not None and self._relation is None

    @property
    def relation(self) -> Relation:
        """The fully-gathered APT relation (materialized on demand)."""
        if self._relation is None:
            assert self._frame is not None
            self._relation = self._frame.to_relation()
        return self._relation

    @property
    def num_rows(self) -> int:
        if self._relation is not None:
            return self._relation.num_rows
        assert self._frame is not None
        return self._frame.num_rows

    @property
    def pt_row_ids(self) -> np.ndarray:
        if self._pt_ids is None:
            if self._relation is not None:
                self._pt_ids = self._relation.column(PT_ROW_ID)
            else:
                assert self._frame is not None
                self._pt_ids = self._frame.column(PT_ROW_ID)
        return self._pt_ids

    def column_values(
        self, name: str, subset: np.ndarray | None = None
    ) -> np.ndarray:
        """Gather one column (optionally only ``subset`` row indices).

        Frame-backed APTs compose ``subset`` with the frame's index
        vectors before touching the source array, so a sampled evaluator
        never gathers rows it will not score.
        """
        if self._relation is not None:
            arr = self._relation.column(name)
            return arr if subset is None else arr[subset]
        assert self._frame is not None
        return self._frame.gather_column(name, subset)

    def column_dtype(self, name: str) -> np.dtype:
        """The storage dtype of a column, without gathering any values."""
        if self._relation is not None:
            return self._relation.column_dtype(name)
        assert self._frame is not None
        return self._frame.column_dtype(name)

    def column_encoding(
        self, name: str, subset: np.ndarray | None = None
    ) -> tuple[ColumnEncoding, np.ndarray | None] | None:
        """Base-table dictionary codes behind a frame column, if any.

        ``(encoding, rows)`` lets the mining kernel build its code
        matrices by gathering ``encoding.codes[rows]`` instead of
        re-encoding object values per APT.  ``None`` for eager APTs and
        for columns without a usable table-level encoding.
        """
        if self._frame is None:
            return None
        return self._frame.column_encoding(name, subset)

    def minable_columns(self) -> dict[str, np.ndarray]:
        """Attribute name → column array for every minable attribute."""
        return {a.name: self.column_values(a.name) for a in self.attributes}

    def attribute(self, name: str) -> APTAttribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(name)

    def numeric_attribute_names(self) -> set[str]:
        return {a.name for a in self.attributes if a.is_numeric}

    def categorical_attribute_names(self) -> set[str]:
        return {a.name for a in self.attributes if not a.is_numeric}

    def __repr__(self) -> str:
        return (
            f"APT({self.join_graph.structure()!r}, {self.num_rows} rows, "
            f"{len(self.attributes)} minable attributes)"
        )


# ----------------------------------------------------------------------
# Canonical materialization plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinStep:
    """One hash-join step: bring ``table`` in under ``alias``.

    ``conditions`` pairs columns of the running intermediate (left) with
    columns of the incoming context relation (right).  They are sorted so
    two graphs whose steps constrain the same columns — regardless of the
    order their edges were added — produce identical, directly hashable
    steps (condition order does not affect a hash join's output rows or
    their order).
    """

    table: str
    alias: str
    conditions: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class FilterStep:
    """A cycle-closing edge applied as an equality post-filter.

    ``pairs`` holds ``(left_col, right_col)`` column names of the running
    intermediate; rows where any pair differs (or is NULL) are dropped.
    """

    pairs: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class MaterializationPlan:
    """The canonical step sequence materializing one join graph's APT."""

    joins: tuple[JoinStep, ...]
    filters: tuple[FilterStep, ...]

    @property
    def steps(self) -> tuple[JoinStep | FilterStep, ...]:
        """All steps in execution order: joins first, then filters."""
        return self.joins + self.filters


def build_plan(join_graph: JoinGraph, pt: ProvenanceTable) -> MaterializationPlan:
    """Derive the canonical materialization plan of ``join_graph``.

    The walk visits the lowest-id frontier node first, conjoining every
    edge that links it to the visited set; node ids are assigned in
    enumeration-extension order, so a graph extending Ω' by a fresh node
    yields Ω''s join steps plus one (the trie-sharing invariant — see the
    module docstring).  Cycle-closing edges become sorted filter steps.
    """
    aliases = join_graph.materialization_aliases()
    pt_columns = pt.relation.column_names

    def pt_side_column(attr: str, pt_alias: str | None) -> str:
        if pt_alias is not None:
            candidate = f"{pt_alias}.{attr}"
            if candidate in pt_columns:
                return candidate
        # Fall back to unique suffix resolution over PT columns.
        hits = [c for c in pt_columns if c.split(".")[-1] == attr]
        if len(hits) == 1:
            return hits[0]
        raise ExecutionError(
            f"cannot resolve PT-side join attribute {attr!r} "
            f"(alias {pt_alias!r}); candidates: {hits}"
        )

    def left_column(edge, node_id: int, attr: str) -> str:
        """Resolve an already-joined endpoint's attribute to a column."""
        if node_id == join_graph.pt_node.nid:
            return pt_side_column(attr, edge.pt_alias)
        return f"{aliases[node_id]}.{attr}"

    joins: list[JoinStep] = []
    visited: set[int] = {join_graph.pt_node.nid}
    remaining_edges = list(join_graph.edges)
    while True:
        # Pick a not-yet-visited node reachable from the visited set and
        # collect every edge linking it to visited nodes (parallel edges
        # conjoin).
        frontier: dict[int, list] = {}
        for edge in remaining_edges:
            for new, old in ((edge.v, edge.u), (edge.u, edge.v)):
                if old in visited and new not in visited:
                    frontier.setdefault(new, []).append(edge)
                    break
        if not frontier:
            break
        node_id = min(frontier)
        edges = frontier[node_id]
        node = join_graph.node(node_id)
        alias = aliases[node_id]
        conditions: list[tuple[str, str]] = []
        for edge in edges:
            if edge.v == node_id:
                anchor = edge.u
                for a_attr, b_attr in edge.condition.pairs:
                    conditions.append(
                        (left_column(edge, anchor, a_attr), f"{alias}.{b_attr}")
                    )
            else:
                anchor = edge.v
                for a_attr, b_attr in edge.condition.pairs:
                    conditions.append(
                        (left_column(edge, anchor, b_attr), f"{alias}.{a_attr}")
                    )
        joins.append(
            JoinStep(
                table=node.label,
                alias=alias,
                conditions=tuple(sorted(conditions)),
            )
        )
        visited.add(node_id)
        remaining_edges = [e for e in remaining_edges if e not in edges]

    # Any remaining edges close cycles among visited nodes: filter.
    filters: list[FilterStep] = []
    for edge in remaining_edges:
        if edge.u not in visited or edge.v not in visited:
            raise ExecutionError(
                "join graph is disconnected; cannot materialize APT"
            )
        pairs = tuple(
            sorted(
                (
                    left_column(edge, edge.u, a_attr),
                    left_column(edge, edge.v, b_attr),
                )
                for a_attr, b_attr in edge.condition.pairs
            )
        )
        filters.append(FilterStep(pairs=pairs))
    return MaterializationPlan(joins=tuple(joins), filters=tuple(sorted(filters, key=lambda f: f.pairs)))


def execute_join_step(
    current: Relation | IndexFrame,
    step: JoinStep,
    db: Database,
    join_cache: JoinCache | None = None,
    context: Relation | None = None,
) -> Relation | IndexFrame:
    """Run one plan join step against the running intermediate.

    ``context`` may supply a pre-prefixed context relation (the engine
    memoizes these so the memoized hash-join path sees stable
    fingerprints); otherwise it is derived from the database.  When
    ``current`` is an :class:`~repro.db.frame.IndexFrame` the join runs
    on index vectors (same join core, identical row order) and returns a
    frame.
    """
    if context is None:
        context = db.table(step.table).prefix_columns(f"{step.alias}.")
    if isinstance(current, IndexFrame):
        return current.join(context, list(step.conditions))
    return hash_join(current, context, list(step.conditions), cache=join_cache)


def _filter_pair_mask(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Equality mask of one cycle-closing column pair (NULLs drop)."""
    if left.dtype == object or right.dtype == object:
        return np.array(
            [
                l is not None and r is not None and l == r
                for l, r in zip(left, right)
            ],
            dtype=bool,
        )
    with np.errstate(invalid="ignore"):
        return np.asarray(left == right)


def apply_filter_step(
    current: Relation | IndexFrame, step: FilterStep
) -> Relation | IndexFrame:
    """Apply one cycle-closing equality filter to the intermediate.

    On index frames only the two compared columns are gathered; the
    surviving rows compose as index selections.
    """
    mask = np.ones(current.num_rows, dtype=bool)
    for left_name, right_name in step.pairs:
        mask &= _filter_pair_mask(
            current.column(left_name), current.column(right_name)
        )
    return current.filter_mask(mask)


def restrict_base(
    pt: ProvenanceTable, restrict_row_ids: np.ndarray | None
) -> Relation:
    """The PT-side base relation, optionally restricted to question rows."""
    base = pt.relation
    if restrict_row_ids is not None:
        wanted = np.isin(base.column(PT_ROW_ID), restrict_row_ids)
        base = base.filter_mask(wanted)
    return base


def restrict_base_frame(
    pt: ProvenanceTable, restrict_row_ids: np.ndarray | None
) -> IndexFrame:
    """The PT-side base as an index frame over the *full* PT relation.

    The restriction becomes a row-index vector instead of a filtered
    copy, so every question shares the one provenance relation (and its
    lazily-built column encodings) and the frame costs only the index
    array.  Row order matches :func:`restrict_base` exactly.
    """
    frame = IndexFrame.from_relation(pt.relation)
    if restrict_row_ids is None:
        return frame
    wanted = np.isin(pt.relation.column(PT_ROW_ID), restrict_row_ids)
    return frame.filter_mask(wanted)


def materialize_apt(
    join_graph: JoinGraph,
    pt: ProvenanceTable,
    db: Database,
    restrict_row_ids: np.ndarray | None = None,
    late_materialization: bool = False,
) -> AugmentedProvenanceTable:
    """Materialize APT(Q, D, Ω) directly (no cross-graph caching).

    ``restrict_row_ids`` limits the provenance side to the rows that
    matter for a question (the union of t1's and t2's provenance) — the
    result is then APT(Q, D, Ω, t1) ⊎ APT(Q, D, Ω, t2), which is all the
    mining pipeline consumes.  :class:`repro.engine.MaterializationEngine`
    produces identical results while sharing intermediate joins across
    graphs; both execute the same :func:`build_plan` output.

    ``late_materialization`` runs the plan on index vectors and returns
    a gather-on-demand APT; the default stays eager because this
    function doubles as the byte-identity reference in tests.
    """
    current: Relation | IndexFrame
    if late_materialization:
        current = restrict_base_frame(pt, restrict_row_ids)
    else:
        current = restrict_base(pt, restrict_row_ids)
    plan = build_plan(join_graph, pt)
    for step in plan.joins:
        current = execute_join_step(current, step, db)
    for step in plan.filters:
        current = apply_filter_step(current, step)
    return _wrap_apt(join_graph, pt, current, db)


def _key_columns_of(db: Database, table: str) -> set[str]:
    """PK columns, FK columns and FK-referenced columns of a relation.

    Key/id columns are surrogate labels: a pattern like ``season_id = 7``
    carries no human-readable information, and none of the paper's
    reported explanations contain id constants.  They are therefore
    excluded from mining (join conditions still use them, of course).
    """
    keys: set[str] = set(db.table(table).schema.primary_key)
    for fk in db.foreign_keys:
        if fk.table == table:
            keys.update(fk.columns)
        if fk.ref_table == table:
            keys.update(fk.ref_columns)
    return keys


def _wrap_apt(
    join_graph: JoinGraph,
    pt: ProvenanceTable,
    relation: Relation | IndexFrame,
    db: Database,
) -> AugmentedProvenanceTable:
    """Attach attribute metadata; exclude non-minable columns.

    ``relation`` may be an eager :class:`Relation` or a late
    :class:`~repro.db.frame.IndexFrame`; attribute metadata needs only
    schema information, so wrapping a frame gathers nothing.

    Excluded from mining (but kept in the relation):
    - the synthetic ``__pt_row_id`` lineage column;
    - the query's group-by attributes (they exactly capture the answer
      tuples, paper §2.4) — including renamed copies with the same bare
      attribute name joined in from context nodes, which would otherwise
      yield degenerate perfect-F-score patterns;
    - key/id columns (PK or FK participants) of the source relation.
    """
    group_cols = set(pt.group_columns)
    group_bare = {c.split(".")[-1] for c in group_cols}
    pt_cols = set(pt.data_columns)

    alias_to_table = {
        alias: join_graph.node(nid).label
        for nid, alias in join_graph.materialization_aliases().items()
    }
    alias_to_table.update(join_graph.query_aliases)
    key_cache: dict[str, set[str]] = {}

    def is_key_column(name: str) -> bool:
        if "." not in name:
            return False
        prefix, bare = name.split(".", 1)
        table = alias_to_table.get(prefix)
        if table is None or not db.has_table(table):
            return False
        if table not in key_cache:
            key_cache[table] = _key_columns_of(db, table)
        return bare in key_cache[table]

    attributes: list[APTAttribute] = []
    excluded: list[str] = []
    for name in relation.column_names:
        if name == PT_ROW_ID:
            continue
        bare = name.split(".")[-1]
        if name in group_cols or bare in group_bare or is_key_column(name):
            excluded.append(name)
            continue
        ctype = relation.column_type(name)
        attributes.append(
            APTAttribute(
                name=name,
                is_numeric=ctype.is_numeric,
                from_provenance=name in pt_cols,
            )
        )
    if isinstance(relation, IndexFrame):
        return AugmentedProvenanceTable(
            join_graph=join_graph,
            frame=relation,
            attributes=attributes,
            excluded_attributes=excluded,
        )
    return AugmentedProvenanceTable(
        join_graph=join_graph,
        relation=relation,
        attributes=attributes,
        excluded_attributes=excluded,
    )
