"""Join-graph enumeration — Algorithm 2.

Iteration i extends every join graph of size i−1 by one edge conforming to
the schema graph, either (i) to a fresh node or (ii) as a parallel edge
between existing nodes.  λ#edges bounds the size.  Structural duplicates
(label-preserving isomorphic graphs reached via different extension
orders) are eliminated with a canonical signature.

``is_valid`` applies the paper's two filters before pattern mining:

- *primary-key connectivity*: every context node's relation must have all
  of its primary-key attributes constrained by some incident edge
  (prevents the redundancy-blowup join graphs of §4);
- *cost*: the estimated materialization cost of the APT query must stay
  below λqcost, estimated from catalog statistics with the textbook
  equi-join cardinality formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..db.database import Database
from ..db.provenance import PT_ROW_ID, ProvenanceTable
from ..db.query import Query
from ..db.statistics import TableStatistics, estimate_join_cardinality
from .config import CajadeConfig
from .join_graph import PT_LABEL, JGEdge, JoinGraph
from .schema_graph import SchemaGraph


@dataclass
class EnumerationStats:
    """Counters describing one enumeration run (Figure 12's 'number of
    join graphs')."""

    generated: int = 0
    duplicates: int = 0
    invalid_pk: int = 0
    invalid_cost: int = 0
    valid: int = 0


def extend_join_graph(
    graph: JoinGraph,
    schema_graph: SchemaGraph,
    query: Query,
) -> list[JoinGraph]:
    """ExtendJG: all one-edge extensions of ``graph`` (Algorithm 2)."""
    extensions: list[JoinGraph] = []
    for node in graph.nodes:
        if node.is_pt:
            attachment_points = [
                (alias, relation)
                for alias, relation in zip(query.aliases, query.table_names)
            ]
        else:
            attachment_points = [(None, node.label)]
        for pt_alias, relation in attachment_points:
            for edge in schema_graph.edges_of(relation):
                other = edge.other_side(relation)
                for condition in edge.conditions_from(relation):
                    extensions.extend(
                        _add_edge(graph, node.nid, other, condition, pt_alias)
                    )
    return extensions


def _add_edge(
    graph: JoinGraph,
    from_node: int,
    end_label: str,
    condition,
    pt_alias: str | None,
) -> list[JoinGraph]:
    """AddEdge: a fresh node plus parallel edges to matching nodes."""
    results = [graph.with_new_node(from_node, end_label, condition, pt_alias)]
    for node in graph.nodes:
        if node.nid == from_node or node.is_pt:
            continue
        if node.label != end_label:
            continue
        extended = graph.with_new_edge(
            from_node, node.nid, condition, pt_alias
        )
        if extended is not None:
            results.append(extended)
    return results


# ----------------------------------------------------------------------
# Validity checks
# ----------------------------------------------------------------------
def has_pk_connectivity(graph: JoinGraph, db: Database) -> bool:
    """The paper's anti-redundancy connectivity check (§4).

    For every context node, each primary-key attribute that *participates
    in a foreign key* must appear in some incident join condition.  This
    reproduces the paper's motivating example (player_game_stats joined
    only on the game key is rejected until the player table is joined on
    player_id) while admitting nodes like ``procedures`` whose ``seq_num``
    key part has no joinable counterpart anywhere in the schema — join
    graphs with such nodes appear throughout the paper's appendix.
    """
    for node in graph.context_nodes:
        schema = db.table(node.label).schema
        if not schema.primary_key:
            continue
        fk_attrs: set[str] = set()
        for fk in db.foreign_keys_of(node.label):
            fk_attrs.update(fk.columns)
        required = [a for a in schema.primary_key if a in fk_attrs]
        if not required:
            continue
        constrained: set[str] = set()
        for edge in graph.edges_of(node.nid):
            constrained.update(edge.endpoint_attrs(node.nid))
        for key_attr in required:
            if key_attr not in constrained:
                return False
    return True


def estimate_apt_cost(
    graph: JoinGraph,
    pt: ProvenanceTable,
    db: Database,
    pt_stats: TableStatistics | None = None,
) -> float:
    """Estimated total tuples flowing through the APT join pipeline."""
    if pt_stats is None:
        pt_stats = TableStatistics.collect(pt.relation)
    aliases = graph.materialization_aliases()

    rows = float(pt.relation.num_rows)
    cost = rows
    visited = {graph.pt_node.nid}
    # attr distinct estimates per node id (PT uses its own stats).
    remaining = list(graph.edges)

    def distinct_on(node_id: int, attr: str, current_rows: float) -> int:
        if node_id == graph.pt_node.nid:
            hits = [
                c
                for c in pt.relation.column_names
                if c != PT_ROW_ID and c.split(".")[-1] == attr
            ]
            if hits:
                return min(
                    pt_stats.distinct(hits[0]), max(1, int(current_rows))
                )
            return max(1, int(current_rows))
        label = graph.node(node_id).label
        return db.statistics(label).distinct(attr)

    while True:
        frontier: dict[int, list[JGEdge]] = {}
        for edge in remaining:
            for new, old in ((edge.v, edge.u), (edge.u, edge.v)):
                if old in visited and new not in visited:
                    frontier.setdefault(new, []).append(edge)
                    break
        if not frontier:
            break
        node_id = min(frontier)
        edges = frontier[node_id]
        label = graph.node(node_id).label
        table_rows = float(db.table(label).num_rows)
        key_distincts: list[tuple[int, int]] = []
        for edge in edges:
            pairs = edge.condition.pairs
            if edge.v == node_id:
                anchor = edge.u
                for a_attr, b_attr in pairs:
                    key_distincts.append(
                        (
                            distinct_on(anchor, a_attr, rows),
                            db.statistics(label).distinct(b_attr),
                        )
                    )
            else:
                anchor = edge.v
                for a_attr, b_attr in pairs:
                    key_distincts.append(
                        (
                            distinct_on(anchor, b_attr, rows),
                            db.statistics(label).distinct(a_attr),
                        )
                    )
        rows = estimate_join_cardinality(rows, table_rows, key_distincts)
        cost += rows + table_rows
        visited.add(node_id)
        remaining = [e for e in remaining if e not in edges]
    # Cycle-closing edges only filter; charge one pass over the rows.
    cost += rows * len(remaining)
    return cost


def is_valid(
    graph: JoinGraph,
    pt: ProvenanceTable,
    db: Database,
    config: CajadeConfig,
    pt_stats: TableStatistics | None = None,
) -> tuple[bool, str]:
    """The paper's isValid: PK connectivity then cost (reason on failure)."""
    if config.check_pk_connectivity and not has_pk_connectivity(graph, db):
        return False, "pk"
    cost = estimate_apt_cost(graph, pt, db, pt_stats=pt_stats)
    if cost > config.qcost_threshold:
        return False, "cost"
    return True, "ok"


# ----------------------------------------------------------------------
# Enumeration driver
# ----------------------------------------------------------------------
def enumerate_join_graphs(
    schema_graph: SchemaGraph,
    query: Query,
    pt: ProvenanceTable,
    db: Database,
    config: CajadeConfig,
    stats: EnumerationStats | None = None,
) -> Iterator[JoinGraph]:
    """Yield the valid join graphs of size 1..λ#edges (plus Ω0).

    Ω0 (the bare PT node) is yielded first: mining it produces the
    provenance-only explanations the user study compares against.
    """
    stats = stats if stats is not None else EnumerationStats()
    query_aliases = {t.alias: t.table for t in query.tables}
    pt_stats = TableStatistics.collect(pt.relation)

    initial = JoinGraph.initial(query_aliases)
    stats.generated += 1
    stats.valid += 1
    yield initial

    seen_signatures = {initial.signature()}
    previous = [initial]
    for _size in range(1, config.max_join_edges + 1):
        current: list[JoinGraph] = []
        for graph in previous:
            for extended in extend_join_graph(graph, schema_graph, query):
                stats.generated += 1
                signature = extended.signature()
                if signature in seen_signatures:
                    stats.duplicates += 1
                    continue
                seen_signatures.add(signature)
                current.append(extended)
                ok, reason = is_valid(
                    extended, pt, db, config, pt_stats=pt_stats
                )
                if ok:
                    stats.valid += 1
                    yield extended
                elif reason == "pk":
                    stats.invalid_pk += 1
                else:
                    stats.invalid_cost += 1
        previous = current
        if not previous:
            break
