"""Attribute clustering and relevance filtering (paper §3.1).

``filterAttrs`` from Algorithm 1:

1. Train a random forest predicting which of the two question outputs an
   APT row's provenance belongs to, and rank attributes by impurity-based
   relevance.  Keep the top λ#sel-attr.
2. Cluster mutually correlated attributes (VARCLUS-style) and keep one
   representative per cluster, removing redundant near-duplicates such as
   an id column and its name column.
3. Split survivors into numeric and categorical sets for the mining phases.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..ml.hist_forest import HistRandomForestClassifier
from ..ml.random_forest import RandomForestClassifier
from ..ml.varclus import AttributeCluster, cluster_attributes, encode_columns
from .apt import AugmentedProvenanceTable
from .config import CajadeConfig
from .quality import QualityEvaluator
from .timing import (
    HIST_HISTOGRAMS_BUILT,
    HIST_NODES_GROWN,
    HIST_SPLITS_EVALUATED,
    StepTimer,
)


class _NamedView(Mapping):
    """A name-restricted view over the evaluator's lazy column mapping.

    Forwards item access and the non-gathering ``dtype_of`` probe of
    :class:`repro.core.quality.LazyColumns`, so varclus/encode_columns
    only gather the columns they actually read (numeric values, plus
    categorical columns lacking kernel ml codes).
    """

    def __init__(self, columns, names: list[str]):
        self._columns = columns
        self._names = names

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        return self._columns[name]

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def dtype_of(self, name: str) -> np.dtype:
        return self._columns.dtype_of(name)


@dataclass
class FilteredAttributes:
    """Result of the §3.1 preprocessing step."""

    numeric: list[str]
    categorical: list[str]
    clusters: list[AttributeCluster]
    relevance: dict[str, float]

    @property
    def all_selected(self) -> list[str]:
        return sorted(self.numeric) + sorted(self.categorical)


def filter_attributes(
    apt: AugmentedProvenanceTable,
    evaluator: QualityEvaluator,
    config: CajadeConfig,
    rng: np.random.Generator,
    timer: StepTimer | None = None,
) -> FilteredAttributes:
    """Run clustering + random-forest relevance selection on an APT.

    With ``config.use_feature_selection`` disabled, all minable attributes
    pass through untouched (the paper's "Naive" arm of Figure 7).

    ``timer`` (optional) accumulates the histogram forest's work
    counters (nodes grown / histograms built / splits evaluated).
    """
    columns = evaluator.columns()
    names = sorted(columns)
    if not config.use_feature_selection or not names:
        return _passthrough(apt, names)

    labels = evaluator.side_labels()
    informative = labels > 0
    if informative.sum() < 4 or len(set(labels[informative].tolist())) < 2:
        return _passthrough(apt, names)

    # The evaluator's columnar kernel (when enabled) supplies
    # dictionary-encoded code arrays; the per-column passes below then
    # run as bincount/unique over int32 codes instead of per-row Python
    # loops over object values.  Results are identical either way (codes
    # are a bijection of the non-NULL values).
    kernel = evaluator.kernel

    # -- drop categorical attributes that cannot reach λrecall ----------
    # An equality pattern on attribute A can cover at most
    # max-frequency(A) provenance rows of either side; if that bound is
    # already below the recall threshold the attribute is a dead end
    # (near-unique columns such as timestamps).  Dropping them here also
    # protects the random forest from its high-cardinality bias.
    # Columns are passed as deferred accessors so the kernel-code paths
    # below never gather object values on late-materialized APTs.
    n1, n2 = evaluator.universe_sizes
    names = [
        n
        for n in names
        if apt.attribute(n).is_numeric
        or _best_possible_recall(
            lambda n=n: columns[n], labels, n1, n2, kernel, n
        )
        >= config.recall_threshold
    ]
    if not names:
        return _passthrough(apt, [])

    # -- optional FD guard (paper §8 future work) ------------------------
    if config.exclude_group_determined:
        names = [
            n
            for n in names
            if not _is_group_determined(
                lambda n=n: columns[n], labels, kernel, n
            )
        ]
        if not names:
            return _passthrough(apt, [])

    # One first-occurrence code map (the kernel's varclus-compatible
    # encoding) feeds both the Cramér's V association matrix and the
    # random-forest feature matrix — no column is re-encoded.
    ml_codes = None
    if kernel is not None:
        ml_codes = {
            n: code_arr
            for n in names
            if (code_arr := kernel.ml_codes(n)) is not None
        }

    # -- cluster correlated attributes, keep representatives -----------
    # Name-restricted views keep the lazy column mapping lazy: varclus
    # probes dtypes through them and only gathers columns without codes.
    clusters = cluster_attributes(
        _NamedView(columns, names),
        threshold=config.correlation_threshold,
        same_type_only=True,
        codes=ml_codes,
    )
    representatives = sorted(c.representative for c in clusters)

    # -- random-forest relevance over cluster representatives ----------
    rep_columns = _NamedView(columns, representatives)
    rep_codes = None
    if ml_codes is not None:
        rep_codes = {
            n: ml_codes[n] for n in representatives if n in ml_codes
        }
    matrix = encode_columns(rep_columns, codes=rep_codes)
    y = (labels[informative] == 1).astype(np.float64)
    X = matrix[informative]
    # Both learners examine every feature at every split: relevance
    # ranking wants the full importance signal, per-node feature
    # subsampling only adds rng noise to it, and the histogram learner
    # covers all features per depth anyway.  With that pinned, the two
    # branches produce bit-identical forests (same bootstrap draws,
    # trees, importances) — the knob is pure speed.
    if config.use_hist_forest:
        # Histogram learner on the dictionary codes: every object
        # column of the matrix holds first-occurrence label codes
        # (straight from the kernel's ml_codes when available, from
        # encode_columns's per-row pass otherwise) — codes are bins.
        hist_forest = HistRandomForestClassifier(
            n_estimators=config.rf_num_trees,
            max_depth=config.rf_max_depth,
            max_samples=config.rf_max_samples,
            random_state=config.seed,
        )
        hist_forest.fit(
            X,
            y,
            categorical_features={
                i
                for i, name in enumerate(representatives)
                if rep_columns.dtype_of(name) == object
            },
        )
        if timer is not None:
            timer.count(HIST_NODES_GROWN, hist_forest.nodes_grown)
            timer.count(HIST_HISTOGRAMS_BUILT, hist_forest.histograms_built)
            timer.count(HIST_SPLITS_EVALUATED, hist_forest.splits_evaluated)
        forest: "HistRandomForestClassifier | RandomForestClassifier" = (
            hist_forest
        )
    else:
        forest = RandomForestClassifier(
            n_estimators=config.rf_num_trees,
            max_depth=config.rf_max_depth,
            max_samples=config.rf_max_samples,
            max_features=X.shape[1],
            random_state=config.seed,
        )
        forest.fit(X, y)
    assert forest.feature_importances_ is not None
    relevance = dict(zip(representatives, forest.feature_importances_))

    keep_count = config.selected_attr_count(len(representatives))
    ranked = sorted(representatives, key=lambda n: (-relevance[n], n))
    kept = set(ranked[:keep_count])

    numeric: list[str] = []
    categorical: list[str] = []
    for name in sorted(kept):
        if apt.attribute(name).is_numeric:
            numeric.append(name)
        else:
            categorical.append(name)
    # Guarantee at least one categorical attribute survives when the APT
    # has any: the LCA phase (§3.2) mines categorical attributes first and
    # yields nothing otherwise.
    if not categorical:
        fallback = [
            n for n in ranked if not apt.attribute(n).is_numeric
        ]
        if fallback:
            categorical.append(fallback[0])
    return FilteredAttributes(
        numeric=numeric,
        categorical=categorical,
        clusters=clusters,
        relevance=relevance,
    )


def _is_group_determined(
    values: "np.ndarray | Callable[[], np.ndarray]",
    labels: np.ndarray,
    kernel=None,
    name: str | None = None,
) -> bool:
    """Whether an attribute is an alias of the question's group key.

    True when each side's rows carry exactly one non-NULL value and the
    two values differ — any equality pattern on such an attribute merely
    restates which output tuple a row belongs to.  With kernel codes the
    per-side value sets reduce to ``np.unique`` over non-NULL int codes
    (codes biject to values, so set cardinality and equality carry over).

    ``values`` may be a zero-argument callable producing the column
    array; it is only invoked on the codeless fallback path.
    """
    import math

    codes = kernel.match_codes(name) if kernel is not None else None
    if codes is not None:
        side_codes = []
        for side in (1, 2):
            selected = codes[labels == side]
            unique = np.unique(selected[selected >= 0])
            if len(unique) != 1:
                return False
            side_codes.append(int(unique[0]))
        return side_codes[0] != side_codes[1]

    if callable(values):
        values = values()
    side_values: list[set] = []
    for side in (1, 2):
        mask = labels == side
        seen = set()
        for value in values[mask]:
            if value is None:
                continue
            if isinstance(value, (float, np.floating)) and math.isnan(value):
                continue
            seen.add(value)
        if len(seen) != 1:
            return False
        side_values.append(seen)
    return side_values[0] != side_values[1]


def _best_possible_recall(
    values: "np.ndarray | Callable[[], np.ndarray]",
    labels: np.ndarray,
    n1: int,
    n2: int,
    kernel=None,
    name: str | None = None,
) -> float:
    """Upper bound on the recall of any equality pattern on a column.

    Counts the most frequent non-NULL value per question side and divides
    by that side's provenance size; the max over sides bounds what LCA
    candidates on this attribute can achieve.  With kernel codes the
    per-side mode is one ``np.bincount`` over non-None int codes (NaN
    cells keep a code, exactly like the dict-counting path below).

    ``values`` may be a zero-argument callable producing the column
    array; it is only invoked on the codeless fallback path.
    """
    codes = kernel.counting_codes(name) if kernel is not None else None
    if codes is None and callable(values):
        values = values()
    best = 0.0
    for side, size in ((1, n1), (2, n2)):
        if size == 0:
            continue
        if codes is not None:
            selected = codes[labels == side]
            selected = selected[selected >= 0]
            if len(selected):
                best = max(
                    best, int(np.bincount(selected).max()) / size
                )
            continue
        counts: dict[object, int] = {}
        mask = labels == side
        for value in values[mask]:
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        if counts:
            best = max(best, max(counts.values()) / size)
    return best


def _passthrough(
    apt: AugmentedProvenanceTable, names: list[str]
) -> FilteredAttributes:
    numeric = [n for n in names if apt.attribute(n).is_numeric]
    categorical = [n for n in names if not apt.attribute(n).is_numeric]
    clusters = [
        AttributeCluster(members=[n], representative=n) for n in names
    ]
    return FilteredAttributes(
        numeric=numeric,
        categorical=categorical,
        clusters=clusters,
        relevance={n: 1.0 for n in names},
    )
