"""Natural-language rendering of explanations.

The paper's introduction presents explanations as sentences:

    "GSW won more games in season 2015-16 because Player S. Curry scored
     ≥ 23 points in 58 out of 73 games in 2015-16 compared to 21 out of
     47 games in 2012-13."

:func:`explanation_sentence` produces that style from an
:class:`~repro.core.explainer.Explanation` — attribute names are
de-qualified, operators become words, and the supports are phrased
primary-tuple-first.
"""

from __future__ import annotations

from .explainer import Explanation
from .pattern import OP_EQ, OP_GE, PatternPredicate


def predicate_phrase(predicate: PatternPredicate) -> str:
    """One predicate as an English phrase."""
    attribute = predicate.attribute.split(".")[-1].replace("_", " ")
    value = predicate.value
    if isinstance(value, float):
        value = f"{value:.6g}"
    if predicate.op == OP_EQ:
        return f"{attribute} is {value}"
    if predicate.op == OP_GE:
        return f"{attribute} is at least {value}"
    return f"{attribute} is at most {value}"


def pattern_phrase(explanation: Explanation) -> str:
    """The pattern as a conjunction of English phrases."""
    phrases = [predicate_phrase(p) for p in explanation.pattern.predicates]
    if not phrases:
        return "any context row exists"
    if len(phrases) == 1:
        return phrases[0]
    return ", ".join(phrases[:-1]) + " and " + phrases[-1]


def explanation_sentence(explanation: Explanation) -> str:
    """A paper-style sentence for one explanation.

    The sentence orders the supports primary-tuple-first, mirrors the
    Figure 2 text boxes, and names the join path that supplied the
    context when the pattern used any.
    """
    support = explanation.support
    if explanation.primary == 1:
        primary_cov, primary_total = support.covered1, support.total1
        secondary_cov, secondary_total = support.covered2, support.total2
    else:
        primary_cov, primary_total = support.covered2, support.total2
        secondary_cov, secondary_total = support.covered1, support.total1

    sentence = (
        f"[{explanation.primary_label}] stands out because "
        f"{pattern_phrase(explanation)} in {primary_cov} out of "
        f"{primary_total} of its provenance rows, compared to "
        f"{secondary_cov} out of {secondary_total} for the other side"
    )
    if explanation.join_graph.num_edges > 0:
        context_tables = sorted(
            {node.label for node in explanation.join_graph.context_nodes}
        )
        sentence += (
            " (context from " + ", ".join(context_tables) + ")"
        )
    return sentence + "."
