"""Per-step wall-clock instrumentation.

The paper's performance figures break total runtime into named steps
(Feature Selection, Gen. Pat. Cand., Materialize APTs, Sampling for F1,
F-score Calc., Refine Patterns, JG Enum.).  :class:`StepTimer` accumulates
seconds under exactly those labels so the benchmark harness can print the
same breakdown rows (Figures 7, 9c, 9d).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

# Canonical step labels, matching the paper's breakdown tables.
FEATURE_SELECTION = "Feature Selection"
GEN_PATTERN_CANDIDATES = "Gen. Pat. Cand."
F_SCORE_CALC = "F-score Calc."
MATERIALIZE_APTS = "Materialize APTs"
REFINE_PATTERNS = "Refine Patterns"
SAMPLING_FOR_F1 = "Sampling for F1"
JG_ENUMERATION = "JG Enum."

ALL_STEPS = (
    FEATURE_SELECTION,
    GEN_PATTERN_CANDIDATES,
    F_SCORE_CALC,
    MATERIALIZE_APTS,
    REFINE_PATTERNS,
    SAMPLING_FOR_F1,
    JG_ENUMERATION,
)


class StepTimer:
    """Accumulates wall-clock seconds per named pipeline step."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def breakdown(self) -> dict[str, float]:
        """Step → seconds, in the paper's canonical step order."""
        ordered = {
            step: self._seconds[step]
            for step in ALL_STEPS
            if step in self._seconds
        }
        for name, value in self._seconds.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    def merge(self, other: "StepTimer") -> None:
        for name, value in other._seconds.items():
            self.add(name, value)

    def format_table(self) -> str:
        """A printable two-column breakdown ending with a total row."""
        rows = [f"{name:<22s} {secs:10.3f}s"
                for name, secs in self.breakdown().items()]
        rows.append(f"{'total':<22s} {self.total:10.3f}s")
        return "\n".join(rows)
