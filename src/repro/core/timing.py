"""Per-step wall-clock instrumentation.

The paper's performance figures break total runtime into named steps
(Feature Selection, Gen. Pat. Cand., Materialize APTs, Sampling for F1,
F-score Calc., Refine Patterns, JG Enum.).  :class:`StepTimer` accumulates
seconds under exactly those labels so the benchmark harness can print the
same breakdown rows (Figures 7, 9c, 9d).

Alongside seconds, the timer also accumulates named integer *counters*
(APT cache hits/misses/evictions from the materialization engine, join
memo hits), which the breakdown table reports so cache behaviour shows up
next to the step costs it explains.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

# Canonical step labels, matching the paper's breakdown tables.
FEATURE_SELECTION = "Feature Selection"
GEN_PATTERN_CANDIDATES = "Gen. Pat. Cand."
F_SCORE_CALC = "F-score Calc."
MATERIALIZE_APTS = "Materialize APTs"
REFINE_PATTERNS = "Refine Patterns"
SAMPLING_FOR_F1 = "Sampling for F1"
JG_ENUMERATION = "JG Enum."

ALL_STEPS = (
    FEATURE_SELECTION,
    GEN_PATTERN_CANDIDATES,
    F_SCORE_CALC,
    MATERIALIZE_APTS,
    REFINE_PATTERNS,
    SAMPLING_FOR_F1,
    JG_ENUMERATION,
)

# Canonical counter labels (engine cache behaviour).
APT_CACHE_HITS = "APT cache hits"
APT_CACHE_MISSES = "APT cache misses"
APT_CACHE_EVICTIONS = "APT cache evictions"
JOIN_MEMO_HITS = "Join memo hits"

# Canonical counter labels (mining-kernel mask cache behaviour).
KERNEL_MASK_HITS = "Kernel mask hits"
KERNEL_MASK_MISSES = "Kernel mask misses"
KERNEL_MASK_EVICTIONS = "Kernel mask evictions"
KERNEL_INCREMENTAL_EVALS = "Kernel incremental evals"
KERNEL_FULL_EVALS = "Kernel full evals"

# Canonical counter labels (§3.2 LCA candidate generation).  "Pairs
# examined" counts sampled row pairs entering the agreement computation;
# "patterns built" counts Pattern object constructions — with the
# code-based LCA that is only the deduplicated survivors, with the
# object-based reference it is every agreeing pair and singleton row.
LCA_PAIRS_EXAMINED = "LCA pairs examined"
LCA_PATTERNS_BUILT = "LCA patterns built"

ALL_COUNTERS = (
    APT_CACHE_HITS,
    APT_CACHE_MISSES,
    APT_CACHE_EVICTIONS,
    JOIN_MEMO_HITS,
    KERNEL_MASK_HITS,
    KERNEL_MASK_MISSES,
    KERNEL_MASK_EVICTIONS,
    KERNEL_INCREMENTAL_EVALS,
    KERNEL_FULL_EVALS,
    LCA_PAIRS_EXAMINED,
    LCA_PATTERNS_BUILT,
)


class StepTimer:
    """Accumulates wall-clock seconds (and counters) per named step."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counters: dict[str, int] = {}

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter (negative n is rejected)."""
        if n < 0:
            raise ValueError("counter increments must be >= 0")
        self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Counter → value, canonical cache counters first."""
        ordered = {
            name: self._counters[name]
            for name in ALL_COUNTERS
            if name in self._counters
        }
        for name, value in self._counters.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def breakdown(self) -> dict[str, float]:
        """Step → seconds, in the paper's canonical step order."""
        ordered = {
            step: self._seconds[step]
            for step in ALL_STEPS
            if step in self._seconds
        }
        for name, value in self._seconds.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    def merge(self, other: "StepTimer") -> None:
        for name, value in other._seconds.items():
            self.add(name, value)
        for name, value in other._counters.items():
            self.count(name, value)

    def format_table(self) -> str:
        """A printable two-column breakdown ending with a total row.

        Counter rows (cache hits/misses/evictions) follow the timing
        rows when any counter has been recorded.
        """
        rows = [f"{name:<22s} {secs:10.3f}s"
                for name, secs in self.breakdown().items()]
        rows.append(f"{'total':<22s} {self.total:10.3f}s")
        rows.extend(
            f"{name:<22s} {value:10d}"
            for name, value in self.counters().items()
        )
        return "\n".join(rows)
