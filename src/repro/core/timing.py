"""Per-step wall-clock instrumentation.

The paper's performance figures break total runtime into named steps
(Feature Selection, Gen. Pat. Cand., Materialize APTs, Sampling for F1,
F-score Calc., Refine Patterns, JG Enum.).  :class:`StepTimer` accumulates
seconds under exactly those labels so the benchmark harness can print the
same breakdown rows (Figures 7, 9c, 9d).

Alongside seconds, the timer also accumulates named integer *counters*
(APT cache hits/misses/evictions from the materialization engine, join
memo hits), which the breakdown table reports so cache behaviour shows up
next to the step costs it explains.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

# Canonical step labels, matching the paper's breakdown tables.
FEATURE_SELECTION = "Feature Selection"
GEN_PATTERN_CANDIDATES = "Gen. Pat. Cand."
F_SCORE_CALC = "F-score Calc."
MATERIALIZE_APTS = "Materialize APTs"
REFINE_PATTERNS = "Refine Patterns"
SAMPLING_FOR_F1 = "Sampling for F1"
JG_ENUMERATION = "JG Enum."

ALL_STEPS = (
    FEATURE_SELECTION,
    GEN_PATTERN_CANDIDATES,
    F_SCORE_CALC,
    MATERIALIZE_APTS,
    REFINE_PATTERNS,
    SAMPLING_FOR_F1,
    JG_ENUMERATION,
)

# Canonical counter labels (engine cache behaviour).  The entry-count /
# median-entry-size labels are *gauges* over the trie's live entry
# population (recorded via StepTimer.set_gauge — latest request wins,
# never summed), so cache-footprint changes (e.g. index-vector frames
# versus full relations) show up next to the hit/miss counters they
# explain.
APT_CACHE_HITS = "APT cache hits"
APT_CACHE_MISSES = "APT cache misses"
APT_CACHE_EVICTIONS = "APT cache evictions"
APT_CACHE_ENTRIES = "APT cache entries"
APT_CACHE_MEDIAN_ENTRY_BYTES = "APT cache median entry bytes"
JOIN_MEMO_HITS = "Join memo hits"

# Canonical counter labels (sorted-window join strategy).  "Windows
# built" counts join steps served by the searchsorted window fast path,
# "searchsorted probes" the probe rows ranged into (lo, hi) windows,
# and "permutation reuses" the window joins that hit an already-built
# sort permutation (permutations are built once per table column per
# process and shared across aliases and engines).
JOIN_WINDOWS_BUILT = "Join windows built"
JOIN_SEARCHSORTED_PROBES = "Join searchsorted probes"
JOIN_PERMUTATION_REUSES = "Join permutation reuses"

# Canonical counter labels (mining-kernel mask cache behaviour).
KERNEL_MASK_HITS = "Kernel mask hits"
KERNEL_MASK_MISSES = "Kernel mask misses"
KERNEL_MASK_EVICTIONS = "Kernel mask evictions"
KERNEL_INCREMENTAL_EVALS = "Kernel incremental evals"
KERNEL_FULL_EVALS = "Kernel full evals"

# Canonical counter labels (§3.1 histogram-forest feature selection).
# "Nodes grown" counts tree nodes created (leaves included),
# "histograms built" counts per-(node, feature) bin histograms, and
# "splits evaluated" counts the candidate (node, feature, bin) splits
# scored by the vectorized Gini pass — all summed across the trees and
# APTs of a request.
HIST_NODES_GROWN = "Hist forest nodes grown"
HIST_HISTOGRAMS_BUILT = "Hist forest histograms built"
HIST_SPLITS_EVALUATED = "Hist forest splits evaluated"

# Canonical counter labels (§3.2 LCA candidate generation).  "Pairs
# examined" counts sampled row pairs entering the agreement computation;
# "patterns built" counts Pattern object constructions — with the
# code-based LCA that is only the deduplicated survivors, with the
# object-based reference it is every agreeing pair and singleton row.
LCA_PAIRS_EXAMINED = "LCA pairs examined"
LCA_PATTERNS_BUILT = "LCA patterns built"
# Peak bytes any single pair-agreement chunk materialized (gauge,
# recorded as a running max across chunk loops) — the observable for
# the byte-budgeted chunk sizing in :mod:`repro.core.lca`.
LCA_PEAK_CHUNK_BYTES = "LCA peak chunk bytes"

# Canonical counter labels (serving layer).  Requests are counted once
# at admission; "coalesced" counts requests that joined an identical
# in-flight computation, "cache hits" counts responses served from the
# cross-request response cache, and "queue depth" is a gauge over the
# scheduler's backlog at its deepest observed point.
SERVICE_REQUESTS = "Service requests"
SERVICE_COALESCED = "Service coalesced"
SERVICE_CACHE_HITS = "Service cache hits"
SERVICE_CACHE_MISSES = "Service cache misses"
SERVICE_BATCHES = "Service batches"
SERVICE_QUEUE_DEPTH = "Service queue depth"

# Canonical counter labels (serving robustness).  "Retries" counts
# tickets re-enqueued after a retryable batch failure, "shed" counts
# requests refused by admission control, "deadline exceeded" counts
# requests that ran out of budget (queued, mid-batch, or awaiting),
# "degraded" counts requests served by a quarantined shard's inline
# fallback, and "failures" counts requests resolved with an error.
SERVICE_RETRIES = "Service retries"
SERVICE_SHED = "Service shed"
SERVICE_DEADLINE_EXCEEDED = "Service deadline exceeded"
SERVICE_DEGRADED = "Service degraded"
SERVICE_FAILURES = "Service failures"

ALL_COUNTERS = (
    APT_CACHE_HITS,
    APT_CACHE_MISSES,
    APT_CACHE_EVICTIONS,
    APT_CACHE_ENTRIES,
    APT_CACHE_MEDIAN_ENTRY_BYTES,
    JOIN_MEMO_HITS,
    JOIN_WINDOWS_BUILT,
    JOIN_SEARCHSORTED_PROBES,
    JOIN_PERMUTATION_REUSES,
    KERNEL_MASK_HITS,
    KERNEL_MASK_MISSES,
    KERNEL_MASK_EVICTIONS,
    KERNEL_INCREMENTAL_EVALS,
    KERNEL_FULL_EVALS,
    HIST_NODES_GROWN,
    HIST_HISTOGRAMS_BUILT,
    HIST_SPLITS_EVALUATED,
    LCA_PAIRS_EXAMINED,
    LCA_PATTERNS_BUILT,
    LCA_PEAK_CHUNK_BYTES,
    SERVICE_REQUESTS,
    SERVICE_COALESCED,
    SERVICE_CACHE_HITS,
    SERVICE_CACHE_MISSES,
    SERVICE_BATCHES,
    SERVICE_QUEUE_DEPTH,
    SERVICE_RETRIES,
    SERVICE_SHED,
    SERVICE_DEADLINE_EXCEEDED,
    SERVICE_DEGRADED,
    SERVICE_FAILURES,
)


class StepTimer:
    """Accumulates wall-clock seconds (and counters) per named step.

    Two kinds of integer metrics coexist: *counters* accumulate across
    :meth:`count` calls and merges (cache hits, evictions), while
    *gauges* (:meth:`set_gauge`) are point-in-time snapshots where the
    latest recording wins — e.g. the trie's live entry count, which
    must not sum across the requests of a batch sharing one timer.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, int] = {}

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter (negative n is rejected)."""
        if n < 0:
            raise ValueError("counter increments must be >= 0")
        self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: int) -> None:
        """Record a point-in-time gauge; the latest recording wins.

        Unlike :meth:`count`, repeated recordings (e.g. one per request
        of a batch sharing this timer) replace rather than accumulate.
        """
        self._gauges[name] = int(value)

    def counter(self, name: str) -> int:
        if name in self._gauges:
            return self._gauges[name]
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Counter/gauge → value, canonical cache counters first."""
        merged = dict(self._counters)
        merged.update(self._gauges)
        ordered = {
            name: merged[name] for name in ALL_COUNTERS if name in merged
        }
        for name, value in merged.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def breakdown(self) -> dict[str, float]:
        """Step → seconds, in the paper's canonical step order."""
        ordered = {
            step: self._seconds[step]
            for step in ALL_STEPS
            if step in self._seconds
        }
        for name, value in self._seconds.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    def merge(self, other: "StepTimer") -> None:
        for name, value in other._seconds.items():
            self.add(name, value)
        for name, value in other._counters.items():
            self.count(name, value)
        # Gauges are snapshots: the merged-in (later) recording wins.
        self._gauges.update(other._gauges)

    def format_table(self) -> str:
        """A printable two-column breakdown ending with a total row.

        Counter rows (cache hits/misses/evictions) follow the timing
        rows when any counter has been recorded.
        """
        rows = [f"{name:<22s} {secs:10.3f}s"
                for name, secs in self.breakdown().items()]
        rows.append(f"{'total':<22s} {self.total:10.3f}s")
        rows.extend(
            f"{name:<22s} {value:10d}"
            for name, value in self.counters().items()
        )
        return "\n".join(rows)
