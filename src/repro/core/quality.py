"""Pattern quality metrics (paper Definition 7) with optional sampling.

Coverage is counted per *provenance* row: a PT row t' of output tuple t1 is
covered by (Ω, Φ) iff at least one APT row descending from t' matches Φ.
Then

    TP  = covered provenance rows of t1
    FP  = covered provenance rows of t2
    FN  = |PT(t1)| - TP

and precision/recall/F-score follow.  The denominators count *all*
provenance rows of the output tuple — including rows the join dropped
(they are never covered, exactly as Definition 7 prescribes).

λF1-samp sampling (paper §3.3/§5.4) is realized by sampling provenance
rows per side and evaluating coverage exactly on the sampled universe;
this yields unbiased recall/precision estimates while scanning only the
matching fraction of the APT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .apt import AugmentedProvenanceTable
from .pattern import Pattern


@dataclass(frozen=True)
class QualityStats:
    """TP/FP/FN counts and the derived quality measures."""

    tp: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        if denominator == 0:
            return 0.0
        return self.tp / denominator

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        if denominator == 0:
            return 0.0
        return self.tp / denominator

    @property
    def f_score(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def __repr__(self) -> str:
        return (
            f"QualityStats(tp={self.tp}, fp={self.fp}, fn={self.fn}, "
            f"P={self.precision:.3f}, R={self.recall:.3f}, "
            f"F={self.f_score:.3f})"
        )


@dataclass(frozen=True)
class PatternSupport:
    """Relative support (c1, a1), (c2, a2) of an explanation (Def 6)."""

    covered1: int
    total1: int
    covered2: int
    total2: int

    def describe(self) -> str:
        return (
            f"{self.covered1} of {self.total1} vs "
            f"{self.covered2} of {self.total2}"
        )


class QualityEvaluator:
    """Evaluates patterns against one APT for a resolved user question.

    Parameters:
        apt: the materialized augmented provenance table.
        row_ids1: provenance row ids of output tuple t1.
        row_ids2: provenance row ids of output tuple t2 (or "the rest").
        sample_rate: λF1-samp; 1.0 evaluates exactly.
        rng: generator driving the provenance-row sample.
    """

    def __init__(
        self,
        apt: AugmentedProvenanceTable,
        row_ids1: np.ndarray,
        row_ids2: np.ndarray,
        sample_rate: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        rng = rng or np.random.default_rng(0)
        self.apt = apt
        self._full_n1 = len(row_ids1)
        self._full_n2 = len(row_ids2)

        ids1 = np.asarray(row_ids1, dtype=np.int64)
        ids2 = np.asarray(row_ids2, dtype=np.int64)
        if sample_rate < 1.0:
            ids1 = self._sample_ids(ids1, sample_rate, rng)
            ids2 = self._sample_ids(ids2, sample_rate, rng)
        self._n1 = len(ids1)
        self._n2 = len(ids2)

        side: dict[int, int] = {}
        for pid in ids1.tolist():
            side[pid] = 1
        for pid in ids2.tolist():
            side[pid] = 2
        self._side = side

        pt_ids = apt.pt_row_ids
        keep = np.isin(pt_ids, ids1) | np.isin(pt_ids, ids2)
        kept = apt.relation.filter_mask(keep)
        self._pt_ids = kept.column("__pt_row_id")
        self._columns = {
            a.name: kept.column(a.name) for a in apt.attributes
        }
        self.sampled_rows = kept.num_rows

    @staticmethod
    def _sample_ids(
        ids: np.ndarray, rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        if len(ids) == 0:
            return ids
        size = max(1, int(round(len(ids) * rate)))
        if size >= len(ids):
            return ids
        return rng.choice(ids, size=size, replace=False)

    # ------------------------------------------------------------------
    def coverage_counts(self, pattern: Pattern) -> tuple[int, int]:
        """Distinct covered provenance rows of (t1, t2) in the sample."""
        mask = pattern.match_mask(self._columns)
        if not mask.any():
            return 0, 0
        covered = np.unique(self._pt_ids[mask])
        cov1 = cov2 = 0
        side = self._side
        for pid in covered.tolist():
            s = side.get(int(pid))
            if s == 1:
                cov1 += 1
            elif s == 2:
                cov2 += 1
        return cov1, cov2

    def evaluate(self, pattern: Pattern, primary: int = 1) -> QualityStats:
        """Definition 7 statistics with the chosen primary tuple."""
        cov1, cov2 = self.coverage_counts(pattern)
        return self.stats_from_counts(cov1, cov2, primary)

    def stats_from_counts(
        self, cov1: int, cov2: int, primary: int = 1
    ) -> QualityStats:
        if primary == 1:
            return QualityStats(tp=cov1, fp=cov2, fn=self._n1 - cov1)
        if primary == 2:
            return QualityStats(tp=cov2, fp=cov1, fn=self._n2 - cov2)
        raise ValueError("primary must be 1 or 2")

    def support(self, pattern: Pattern) -> PatternSupport:
        """Supports scaled to the full provenance sizes.

        With sampling the covered counts are extrapolated through the
        estimated recall; without sampling they are exact.
        """
        cov1, cov2 = self.coverage_counts(pattern)
        scale1 = self._full_n1 / self._n1 if self._n1 else 0.0
        scale2 = self._full_n2 / self._n2 if self._n2 else 0.0
        return PatternSupport(
            covered1=min(self._full_n1, int(round(cov1 * scale1))),
            total1=self._full_n1,
            covered2=min(self._full_n2, int(round(cov2 * scale2))),
            total2=self._full_n2,
        )

    # ------------------------------------------------------------------
    @property
    def universe_sizes(self) -> tuple[int, int]:
        """(sampled |PT(t1)|, sampled |PT(t2)|)."""
        return self._n1, self._n2

    @property
    def full_sizes(self) -> tuple[int, int]:
        return self._full_n1, self._full_n2

    def side_labels(self) -> np.ndarray:
        """Per-APT-row side (1 or 2) for the feature-selection labels."""
        side = self._side
        return np.fromiter(
            (side.get(int(pid), 0) for pid in self._pt_ids),
            dtype=np.int64,
            count=len(self._pt_ids),
        )

    def columns(self) -> dict[str, np.ndarray]:
        """The (sampled) minable columns, row-aligned with side_labels."""
        return dict(self._columns)
