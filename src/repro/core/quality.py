"""Pattern quality metrics (paper Definition 7) with optional sampling.

Coverage is counted per *provenance* row: a PT row t' of output tuple t1 is
covered by (Ω, Φ) iff at least one APT row descending from t' matches Φ.
Then

    TP  = covered provenance rows of t1
    FP  = covered provenance rows of t2
    FN  = |PT(t1)| - TP

and precision/recall/F-score follow.  The denominators count *all*
provenance rows of the output tuple — including rows the join dropped
(they are never covered, exactly as Definition 7 prescribes).

λF1-samp sampling (paper §3.3/§5.4) is realized by sampling provenance
rows per side and evaluating coverage exactly on the sampled universe;
this yields unbiased recall/precision estimates while scanning only the
matching fraction of the APT.

Scoring runs on a :class:`repro.core.kernel.MiningKernel` built once per
evaluator: categorical columns are dictionary-encoded into int32 codes,
provenance ids map to dense slots (side 1 first, then side 2) so coverage
is a boolean scatter plus two contiguous counts, and predicate/pattern
masks are memoized in a byte-bounded LRU with incremental
``parent & predicate`` reuse.  The pre-kernel per-row implementation is
retained as :meth:`QualityEvaluator.coverage_counts_reference`; kernel
and reference are byte-identical (asserted by tests and, optionally, on
every call via ``verify_kernel``).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from .apt import AugmentedProvenanceTable
from .kernel import MiningKernel
from .pattern import Pattern


class LazyColumns(Mapping):
    """Lazily-gathered minable columns of one evaluator universe.

    Behaves like the historical ``{attr: array}`` dict (same keys, same
    row-aligned arrays) but defers each column's gather to first access
    and memoizes it.  On late-materialized APTs a gather composes the
    evaluator's row subset with the frame's index vectors before
    touching any base array, so columns the mining pipeline never reads
    — and object columns the kernel serves from dictionary codes — are
    never materialized at all.
    """

    def __init__(
        self, apt: AugmentedProvenanceTable, subset: np.ndarray | None
    ):
        self._apt = apt
        self._subset = subset
        self._names = [a.name for a in apt.attributes]
        self._known = frozenset(self._names)
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            if name not in self._known:
                raise KeyError(name)
            arr = self._apt.column_values(name, self._subset)
            self._cache[name] = arr
        return arr

    def __contains__(self, name: object) -> bool:
        return name in self._known

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def dtype_of(self, name: str) -> np.dtype:
        """A column's storage dtype, without gathering its values."""
        if name not in self._known:
            raise KeyError(name)
        return self._apt.column_dtype(name)


@dataclass(frozen=True)
class QualityStats:
    """TP/FP/FN counts and the derived quality measures."""

    tp: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        if denominator == 0:
            return 0.0
        return self.tp / denominator

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        if denominator == 0:
            return 0.0
        return self.tp / denominator

    @property
    def f_score(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def __repr__(self) -> str:
        return (
            f"QualityStats(tp={self.tp}, fp={self.fp}, fn={self.fn}, "
            f"P={self.precision:.3f}, R={self.recall:.3f}, "
            f"F={self.f_score:.3f})"
        )


@dataclass(frozen=True)
class PatternSupport:
    """Relative support (c1, a1), (c2, a2) of an explanation (Def 6)."""

    covered1: int
    total1: int
    covered2: int
    total2: int

    def describe(self) -> str:
        return (
            f"{self.covered1} of {self.total1} vs "
            f"{self.covered2} of {self.total2}"
        )


class QualityEvaluator:
    """Evaluates patterns against one APT for a resolved user question.

    Parameters:
        apt: the materialized augmented provenance table.
        row_ids1: provenance row ids of output tuple t1.
        row_ids2: provenance row ids of output tuple t2 (or "the rest").
        sample_rate: λF1-samp; 1.0 evaluates exactly.
        rng: generator driving the provenance-row sample.
        use_kernel: score on the dictionary-encoded columnar kernel
            (byte-identical results); off runs the retained naive
            reference path — the pre-kernel per-row behaviour.
        kernel_cache_mb: byte budget of the kernel's memoized mask LRU.
        verify_kernel: cross-check every kernel coverage computation
            against the reference and raise on any mismatch.
    """

    def __init__(
        self,
        apt: AugmentedProvenanceTable,
        row_ids1: np.ndarray,
        row_ids2: np.ndarray,
        sample_rate: float = 1.0,
        rng: np.random.Generator | None = None,
        *,
        use_kernel: bool = True,
        kernel_cache_mb: float = 64.0,
        verify_kernel: bool = False,
        encoding_source: "QualityEvaluator | None" = None,
    ):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        rng = rng or np.random.default_rng(0)
        self.apt = apt
        self._full_n1 = len(row_ids1)
        self._full_n2 = len(row_ids2)

        ids1 = np.asarray(row_ids1, dtype=np.int64)
        ids2 = np.asarray(row_ids2, dtype=np.int64)
        if sample_rate < 1.0:
            ids1 = self._sample_ids(ids1, sample_rate, rng)
            ids2 = self._sample_ids(ids2, sample_rate, rng)
        self._n1 = len(ids1)
        self._n2 = len(ids2)

        # The sampling universe is one vectorized union of the two
        # sides' provenance id arrays; rows are kept iff their id
        # appears in it (a sorted-array membership pass — no Python set
        # accumulation anywhere on this path).
        pt_ids = apt.pt_row_ids
        universe = np.union1d(ids1, ids2)
        if len(universe):
            pos = np.searchsorted(universe, pt_ids)
            pos = np.minimum(pos, len(universe) - 1)
            keep = universe[pos] == pt_ids
        else:
            keep = np.zeros(len(pt_ids), dtype=bool)
        self._keep = keep
        if keep.all():
            subset = None
            self._pt_ids = pt_ids
            self.sampled_rows = len(pt_ids)
        else:
            subset = np.nonzero(keep)[0]
            self._pt_ids = pt_ids[subset]
            self.sampled_rows = len(subset)
        self._subset = subset
        # Minable columns gather lazily (and, on late-materialized
        # APTs, straight from base tables through composed indices).
        self._columns = LazyColumns(apt, subset)

        # Dense coverage slots: side-1 slots occupy [0, m1), side-2
        # slots [m1, m1+m2).  Ids present on both sides count as side 2
        # (matching the historical dict semantics where the second
        # assignment won).
        ids2_unique = np.unique(ids2)
        ids1_only = np.setdiff1d(ids1, ids2_unique)
        self._m1 = len(ids1_only)
        self._m2 = len(ids2_unique)
        slot_ids = np.concatenate([ids1_only, ids2_unique])
        order = np.argsort(slot_ids, kind="stable")
        sorted_slot_ids = slot_ids[order]
        if self.sampled_rows:
            slot_pos = np.searchsorted(sorted_slot_ids, self._pt_ids)
            self._row_slot = order[slot_pos].astype(np.int64)
        else:
            self._row_slot = np.empty(0, dtype=np.int64)
        self._side_labels = np.where(
            self._row_slot < self._m1, 1, 2
        ).astype(np.int64)

        self._use_kernel = use_kernel
        self._kernel_cache_mb = kernel_cache_mb
        self._verify_kernel = verify_kernel
        self._encoding_source = encoding_source
        self._kernel: MiningKernel | None = None
        self._side_dict: dict[int, int] | None = None

    @staticmethod
    def _sample_ids(
        ids: np.ndarray, rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        if len(ids) == 0:
            return ids
        size = max(1, int(round(len(ids) * rate)))
        if size >= len(ids):
            return ids
        return rng.choice(ids, size=size, replace=False)

    # ------------------------------------------------------------------
    @property
    def kernel(self) -> MiningKernel | None:
        """The (lazily built) columnar kernel, or None when disabled.

        With an ``encoding_source`` evaluator over the same APT (e.g.
        the exact evaluator while this one is the λF1-samp sample), the
        encoding dictionaries are shared and its code arrays sliced
        instead of re-running the per-row encoding pass.  The source's
        kernel is built on demand if needed — previously the sampled
        evaluator silently re-encoded whenever nothing had touched the
        source kernel yet (the ``use_feature_selection=False`` arm), so
        the two arms now reuse codes identically.
        """
        if not self._use_kernel:
            return None
        if self._kernel is None:
            source = self._encoding_source
            if (
                source is not None
                and source is not self
                and source.apt is self.apt
                and source._use_kernel
                and len(source._keep) == len(self._keep)
            ):
                selector = self._keep[source._keep]
                if int(selector.sum()) == self.sampled_rows:
                    source_kernel = source.kernel  # built on demand
                    assert source_kernel is not None
                    self._kernel = MiningKernel.derived(
                        source_kernel,
                        selector,
                        self._row_slot,
                        self._m1,
                        self._m2,
                        cache_mb=self._kernel_cache_mb,
                    )
                    return self._kernel
            self._kernel = MiningKernel(
                self._columns,
                self._row_slot,
                self._m1,
                self._m2,
                cache_mb=self._kernel_cache_mb,
                encodings=self._gathered_encodings(),
            )
        return self._kernel

    def _gathered_encodings(self) -> dict[str, tuple[Any, np.ndarray | None]]:
        """Table-level codes for categorical attrs of a frame-backed APT.

        Maps each object-dtype minable attribute to its base-table
        :class:`~repro.db.relation.ColumnEncoding` plus the composed
        (frame ∘ evaluator-subset) row indices, so the kernel gathers
        int32 codes built once at load time instead of re-encoding the
        column's objects per APT.  Empty on eager APTs and for columns
        without a usable encoding (those take the classic path).
        """
        encodings: dict[str, tuple[Any, np.ndarray | None]] = {}
        if self.apt.frame is None:
            return encodings
        for attribute in self.apt.attributes:
            name = attribute.name
            if attribute.is_numeric:
                continue
            if self._columns.dtype_of(name) != object:
                continue
            source = self.apt.column_encoding(name, self._subset)
            if source is not None:
                encodings[name] = source
        return encodings

    def kernel_counters(self) -> dict[str, int]:
        """The kernel's StepTimer counter labels -> values ({} if off
        or never exercised)."""
        if self._kernel is None:
            return {}
        return self._kernel.counters()

    # ------------------------------------------------------------------
    def coverage_counts(
        self, pattern: Pattern, parent: Pattern | None = None
    ) -> tuple[int, int]:
        """Distinct covered provenance rows of (t1, t2) in the sample.

        ``parent`` is an optional one-predicate-smaller ancestor whose
        cached mask enables incremental evaluation; it never changes the
        result, only how it is computed.
        """
        kernel = self.kernel
        if kernel is None:
            return self.coverage_counts_reference(pattern)
        counts = kernel.coverage(pattern, parent)
        if self._verify_kernel:
            reference = self.coverage_counts_reference(pattern)
            if counts != reference:
                raise AssertionError(
                    f"kernel coverage {counts} != reference {reference} "
                    f"for pattern {pattern.describe()}"
                )
        return counts

    def coverage_counts_reference(
        self, pattern: Pattern
    ) -> tuple[int, int]:
        """The retained naive implementation (pre-kernel behaviour):
        per-row Python matching, ``np.unique`` and a dict loop."""
        mask = pattern.match_mask(self._columns)
        if not mask.any():
            return 0, 0
        covered = np.unique(self._pt_ids[mask])
        cov1 = cov2 = 0
        side = self._side_mapping()
        for pid in covered.tolist():
            s = side.get(int(pid))
            if s == 1:
                cov1 += 1
            elif s == 2:
                cov2 += 1
        return cov1, cov2

    def _side_mapping(self) -> dict[int, int]:
        """pid -> side dict for the reference path, built on demand."""
        if self._side_dict is None:
            self._side_dict = dict(
                zip(
                    (int(pid) for pid in self._pt_ids.tolist()),
                    self._side_labels.tolist(),
                )
            )
        return self._side_dict

    def evaluate(self, pattern: Pattern, primary: int = 1) -> QualityStats:
        """Definition 7 statistics with the chosen primary tuple."""
        cov1, cov2 = self.coverage_counts(pattern)
        return self.stats_from_counts(cov1, cov2, primary)

    def stats_from_counts(
        self, cov1: int, cov2: int, primary: int = 1
    ) -> QualityStats:
        if primary == 1:
            return QualityStats(tp=cov1, fp=cov2, fn=self._n1 - cov1)
        if primary == 2:
            return QualityStats(tp=cov2, fp=cov1, fn=self._n2 - cov2)
        raise ValueError("primary must be 1 or 2")

    def support(self, pattern: Pattern) -> PatternSupport:
        """Supports scaled to the full provenance sizes.

        With sampling the covered counts are extrapolated through the
        estimated recall; without sampling they are exact.
        """
        cov1, cov2 = self.coverage_counts(pattern)
        scale1 = self._full_n1 / self._n1 if self._n1 else 0.0
        scale2 = self._full_n2 / self._n2 if self._n2 else 0.0
        return PatternSupport(
            covered1=min(self._full_n1, int(round(cov1 * scale1))),
            total1=self._full_n1,
            covered2=min(self._full_n2, int(round(cov2 * scale2))),
            total2=self._full_n2,
        )

    # ------------------------------------------------------------------
    @property
    def universe_sizes(self) -> tuple[int, int]:
        """(sampled |PT(t1)|, sampled |PT(t2)|)."""
        return self._n1, self._n2

    @property
    def full_sizes(self) -> tuple[int, int]:
        return self._full_n1, self._full_n2

    def side_labels(self) -> np.ndarray:
        """Per-APT-row side (1 or 2) for the feature-selection labels.

        Precomputed during construction (dense slot membership); treat
        the returned array as read-only.
        """
        return self._side_labels

    def columns(self) -> LazyColumns:
        """The (sampled) minable columns, row-aligned with side_labels.

        A lazily-gathering mapping (see :class:`LazyColumns`); reading a
        column materializes and memoizes it, so callers can keep
        treating the result as the historical ``{attr: array}`` dict.
        """
        return self._columns
