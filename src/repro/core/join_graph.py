"""Join graphs (paper Definition 3).

A join graph Ω is a node- and edge-labeled undirected multigraph with one
distinguished PT node (the provenance table) and context nodes labeled with
relations.  Edges carry a single join condition permitted by the schema
graph.  The same relation may appear on several nodes; materialization
assigns fresh aliases (``player_salary``, ``player_salary2``, ...).

Edges incident to the PT node additionally record *which query alias* the
PT-side attributes belong to, because PT columns are qualified as
``alias.attr`` (paper: parallel edges for multiple aliases of the same
relation in Q).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from .schema_graph import JoinConditionSpec

PT_LABEL = "PT"


@dataclass(frozen=True)
class JGNode:
    """A join-graph node: the PT node or a context relation."""

    nid: int
    label: str

    @property
    def is_pt(self) -> bool:
        return self.label == PT_LABEL


@dataclass(frozen=True)
class JGEdge:
    """A join-graph edge with its condition oriented u → v.

    ``condition.pairs`` holds ``(u_attr, v_attr)``.  When the u endpoint is
    the PT node, ``pt_alias`` names the query alias whose columns realize
    the u side.
    """

    u: int
    v: int
    condition: JoinConditionSpec
    pt_alias: str | None = None

    def endpoint_attrs(self, node_id: int) -> list[str]:
        """The attributes this edge constrains on one endpoint."""
        attrs = []
        if node_id == self.u:
            attrs.extend(a for a, _ in self.condition.pairs)
        if node_id == self.v:
            attrs.extend(b for _, b in self.condition.pairs)
        return attrs


class JoinGraph:
    """An immutable-by-convention join graph; extensions return copies."""

    def __init__(self, query_aliases: dict[str, str]):
        """``query_aliases`` maps query alias → relation name (relsQ)."""
        self.query_aliases = dict(query_aliases)
        self.nodes: list[JGNode] = [JGNode(0, PT_LABEL)]
        self.edges: list[JGEdge] = []

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, query_aliases: dict[str, str]) -> "JoinGraph":
        """Ω0: the join graph consisting of the single PT node."""
        return cls(query_aliases)

    def copy(self) -> "JoinGraph":
        clone = JoinGraph(self.query_aliases)
        clone.nodes = list(self.nodes)
        clone.edges = list(self.edges)
        return clone

    @property
    def pt_node(self) -> JGNode:
        return self.nodes[0]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def context_nodes(self) -> list[JGNode]:
        return [n for n in self.nodes if not n.is_pt]

    def node(self, nid: int) -> JGNode:
        for node in self.nodes:
            if node.nid == nid:
                return node
        raise KeyError(f"no node {nid}")

    def edges_of(self, nid: int) -> list[JGEdge]:
        return [e for e in self.edges if nid in (e.u, e.v)]

    def edges_between(self, a: int, b: int) -> list[JGEdge]:
        return [e for e in self.edges if {e.u, e.v} == {a, b}]

    # ------------------------------------------------------------------
    # Extension (paper Algorithm 2, AddEdge)
    # ------------------------------------------------------------------
    def with_new_node(
        self,
        from_node: int,
        relation: str,
        condition: JoinConditionSpec,
        pt_alias: str | None,
    ) -> "JoinGraph":
        """Extension (i): add a fresh node for ``relation`` linked to
        ``from_node``."""
        clone = self.copy()
        new_id = max(n.nid for n in clone.nodes) + 1
        clone.nodes.append(JGNode(new_id, relation))
        clone.edges.append(
            JGEdge(u=from_node, v=new_id, condition=condition, pt_alias=pt_alias)
        )
        return clone

    def with_new_edge(
        self,
        from_node: int,
        to_node: int,
        condition: JoinConditionSpec,
        pt_alias: str | None,
    ) -> "JoinGraph | None":
        """Extension (ii): connect two existing nodes with a parallel edge.

        Returns None when an identical edge already exists (AddEdge's
        duplicate check).
        """
        for edge in self.edges_between(from_node, to_node):
            same_forward = (
                edge.u == from_node
                and edge.condition == condition
                and edge.pt_alias == pt_alias
            )
            same_backward = (
                edge.v == from_node and edge.condition == condition.flipped()
            )
            if same_forward or same_backward:
                return None
        clone = self.copy()
        clone.edges.append(
            JGEdge(u=from_node, v=to_node, condition=condition, pt_alias=pt_alias)
        )
        return clone

    # ------------------------------------------------------------------
    # Aliasing for materialization
    # ------------------------------------------------------------------
    def materialization_aliases(self) -> dict[int, str]:
        """Node id → unique alias (``rel``, ``rel2``, ...) for context nodes.

        Aliases never collide with the query's own FROM aliases (whose
        columns already populate the PT side of the APT).
        """
        taken = set(self.query_aliases)
        counts: dict[str, int] = {}
        aliases: dict[int, str] = {}
        for node in self.nodes:
            if node.is_pt:
                continue
            counts[node.label] = counts.get(node.label, 0) + 1
            suffix = counts[node.label]
            candidate = node.label if suffix == 1 else f"{node.label}{suffix}"
            while candidate in taken:
                suffix += 1
                counts[node.label] = suffix
                candidate = f"{node.label}{suffix}"
            taken.add(candidate)
            aliases[node.nid] = candidate
        return aliases

    # ------------------------------------------------------------------
    # Canonical signature (duplicate elimination during enumeration)
    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """A canonical, label-preserving-isomorphism-invariant signature.

        Nodes with the same label are interchangeable; the signature is the
        lexicographically smallest edge multiset over all label-preserving
        relabelings.  Join graphs are tiny (≤ λ#edges + 1 nodes) so the
        permutation search is cheap.
        """
        by_label: dict[str, list[int]] = {}
        for node in self.nodes:
            by_label.setdefault(node.label, []).append(node.nid)
        label_groups = sorted(by_label.items())
        permutation_sets = []
        for _, ids in label_groups:
            permutation_sets.append(list(itertools.permutations(ids)))
        best: tuple | None = None
        for combo in itertools.product(*permutation_sets):
            mapping: dict[int, int] = {}
            for (_, ids), perm in zip(label_groups, combo):
                for original, renamed in zip(ids, perm):
                    mapping[original] = renamed
            label_of = {n.nid: n.label for n in self.nodes}
            descriptors = []
            for edge in self.edges:
                u_key = (label_of[edge.u], mapping[edge.u])
                v_key = (label_of[edge.v], mapping[edge.v])
                cond = str(edge.condition)
                flipped = str(edge.condition.flipped())
                if (v_key, u_key) < (u_key, v_key):
                    descriptors.append((v_key, u_key, flipped, edge.pt_alias))
                else:
                    descriptors.append((u_key, v_key, cond, edge.pt_alias))
            candidate = tuple(sorted(descriptors))
            if best is None or candidate < best:
                best = candidate
        return best if best is not None else ()

    # ------------------------------------------------------------------
    # Description
    # ------------------------------------------------------------------
    def structure(self) -> str:
        """A compact ``PT - rel - rel2`` style description."""
        if not self.edges:
            return PT_LABEL
        aliases = self.materialization_aliases()
        aliases[0] = PT_LABEL

        parts = []
        for edge in self.edges:
            parts.append(f"{aliases[edge.u]} - {aliases[edge.v]}")
        return " ; ".join(parts)

    def describe(self) -> str:
        """Multi-line description with per-edge join conditions."""
        aliases = self.materialization_aliases()
        aliases[0] = PT_LABEL
        lines = [f"join graph: {self.structure()}"]
        for index, edge in enumerate(self.edges, start=1):
            left = aliases[edge.u]
            if edge.u == 0 and edge.pt_alias:
                left = f"PT[{edge.pt_alias}]"
            lines.append(
                f"  e{index}: "
                + edge.condition.describe(left, aliases[edge.v])
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"JoinGraph({self.structure()!r}, {len(self.edges)} edges)"
