"""Summarization patterns and match semantics (paper Definition 5).

A pattern Φ assigns each APT attribute either ``*`` (unused) or a predicate
``(op, threshold)``; categorical attributes allow only ``=``, numeric ones
allow ``<=``/``>=``/``=``.  A tuple matches when it satisfies every
predicate.  Attributes used in the query's GROUP BY are excluded from
patterns upstream (they exactly capture the answer tuples and carry no
information).

Patterns are immutable; :meth:`Pattern.refined` returns extended copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

OP_EQ = "="
OP_LE = "<="
OP_GE = ">="
VALID_OPS = (OP_EQ, OP_LE, OP_GE)


@dataclass(frozen=True)
class PatternPredicate:
    """One conjunct of a pattern: ``attribute op value``."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in VALID_OPS:
            raise ValueError(f"invalid pattern operator {self.op!r}")

    def matches_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a column array (NULLs never match)."""
        if values.dtype == object:
            if self.op != OP_EQ:
                raise ValueError(
                    f"operator {self.op} not allowed on categorical "
                    f"attribute {self.attribute}"
                )
            return np.array(
                [v is not None and v == self.value for v in values], dtype=bool
            )
        numeric = values.astype(np.float64, copy=False)
        with np.errstate(invalid="ignore"):
            if self.op == OP_EQ:
                mask = numeric == float(self.value)
            elif self.op == OP_LE:
                mask = numeric <= float(self.value)
            else:
                mask = numeric >= float(self.value)
        if numeric.dtype.kind == "f":
            mask = mask & ~np.isnan(numeric)
        return mask

    def describe(self) -> str:
        value = self.value
        if isinstance(value, float):
            # is_integer (not int(value) equality): NaN and ±inf render
            # via the general format instead of raising.
            if value.is_integer():
                value = int(value)
            else:
                value = f"{value:.6g}"
        return f"{self.attribute}{self.op}{value}"

    def __str__(self) -> str:
        return self.describe()


class Pattern:
    """An immutable conjunction of :class:`PatternPredicate`.

    Predicates are stored sorted by (attribute, op) so structurally equal
    patterns hash equal — the ``done`` set of Algorithm 1 relies on this.
    """

    __slots__ = ("predicates", "_key")

    def __init__(self, predicates: Iterable[PatternPredicate] = ()):
        ordered = tuple(
            sorted(predicates, key=lambda p: (p.attribute, p.op, str(p.value)))
        )
        attrs_ops = [(p.attribute, p.op) for p in ordered]
        if len(set(attrs_ops)) != len(attrs_ops):
            raise ValueError(
                "pattern has two predicates with the same attribute and "
                "operator"
            )
        object.__setattr__(self, "predicates", ordered)
        object.__setattr__(
            self,
            "_key",
            tuple((p.attribute, p.op, p.value) for p in ordered),
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Pattern is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: Mapping[str, tuple[str, Any]]) -> "Pattern":
        """Build from ``{attribute: (op, value)}``."""
        return cls(
            PatternPredicate(attr, op, value)
            for attr, (op, value) in mapping.items()
        )

    @property
    def attributes(self) -> set[str]:
        return {p.attribute for p in self.predicates}

    @property
    def size(self) -> int:
        """|Φ|: the number of non-``*`` attributes."""
        return len(self.attributes)

    def uses(self, attribute: str) -> bool:
        return attribute in self.attributes

    def value_of(self, attribute: str) -> Any:
        """The threshold/constant of the first predicate on ``attribute``."""
        for predicate in self.predicates:
            if predicate.attribute == attribute:
                return predicate.value
        raise KeyError(attribute)

    def num_numeric_predicates(self, numeric_attrs: set[str]) -> int:
        return sum(1 for p in self.predicates if p.attribute in numeric_attrs)

    # ------------------------------------------------------------------
    def refined(self, attribute: str, op: str, value: Any) -> "Pattern":
        """A refinement Φ' of Φ: one more predicate (paper §3)."""
        return Pattern(
            list(self.predicates) + [PatternPredicate(attribute, op, value)]
        )

    def is_refinement_of(self, other: "Pattern") -> bool:
        """Whether every predicate of ``other`` appears in ``self``."""
        return set(other._key).issubset(set(self._key))

    def delta_from(self, parent: "Pattern") -> PatternPredicate | None:
        """The one predicate ``self`` adds over ``parent``, if exactly one.

        The mining BFS produces children via :meth:`refined`, so each
        frontier pattern is its parent plus one predicate; the kernel
        exploits that to evaluate ``mask(self) = mask(parent) & mask(p)``
        incrementally.  Returns ``None`` when ``self`` is not a one-step
        refinement of ``parent`` (callers then fall back to a full
        evaluation).
        """
        if len(self._key) != len(parent._key) + 1:
            return None
        parent_keys = set(parent._key)
        extra = [
            p
            for p in self.predicates
            if (p.attribute, p.op, p.value) not in parent_keys
        ]
        if len(extra) != 1:
            return None
        return extra[0]

    # ------------------------------------------------------------------
    def match_mask(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean match mask over row-aligned column arrays."""
        if not self.predicates:
            lengths = [len(a) for a in columns.values()]
            return np.ones(lengths[0] if lengths else 0, dtype=bool)
        mask: np.ndarray | None = None
        for predicate in self.predicates:
            if predicate.attribute not in columns:
                raise KeyError(
                    f"pattern attribute {predicate.attribute!r} missing from "
                    "the provided columns"
                )
            part = predicate.matches_array(columns[predicate.attribute])
            mask = part if mask is None else (mask & part)
            if not mask.any():
                break
        assert mask is not None
        return mask

    # ------------------------------------------------------------------
    def describe(self) -> str:
        if not self.predicates:
            return "(*)"
        return " ∧ ".join(p.describe() for p in self.predicates)

    def __str__(self) -> str:
        return self.describe()

    def __repr__(self) -> str:
        return f"Pattern({self.describe()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Pattern) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)
