"""Schema graphs (paper Definition 2).

A schema graph's vertices are the database relations; each undirected edge
carries a *set* of permissible equi-join conditions between the two
relations.  Self-edges are allowed (e.g. joining ``lineup_player`` with
itself on ``lineupid`` to find players sharing a lineup).

Schema graphs are an input to CaJaDE.  :meth:`SchemaGraph.from_database`
seeds one from foreign-key constraints; callers may add further conditions
(the paper: "also allows the user to provide additional join conditions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.database import Database
from ..db.errors import SchemaError


@dataclass(frozen=True)
class JoinConditionSpec:
    """One permissible join condition: a conjunction of attribute equalities.

    ``pairs`` holds ``(side_a_attr, side_b_attr)`` tuples oriented with the
    owning edge's ``table_a``/``table_b``.
    """

    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise SchemaError("join condition must have at least one pair")

    def flipped(self) -> "JoinConditionSpec":
        """The same condition oriented from side b to side a."""
        return JoinConditionSpec(tuple((b, a) for a, b in self.pairs))

    def describe(self, alias_a: str, alias_b: str) -> str:
        return " AND ".join(
            f"{alias_a}.{a} = {alias_b}.{b}" for a, b in self.pairs
        )

    def __str__(self) -> str:
        return " AND ".join(f"{a} = {b}" for a, b in self.pairs)


@dataclass(frozen=True)
class SchemaEdge:
    """An undirected schema-graph edge with its permissible conditions."""

    table_a: str
    table_b: str
    conditions: tuple[JoinConditionSpec, ...]

    def __post_init__(self) -> None:
        if not self.conditions:
            raise SchemaError("schema edge must carry at least one condition")

    @property
    def is_self_edge(self) -> bool:
        return self.table_a == self.table_b

    def other_side(self, table: str) -> str:
        if table == self.table_a:
            return self.table_b
        if table == self.table_b:
            return self.table_a
        raise SchemaError(f"{table!r} is not an endpoint of this edge")

    def conditions_from(self, table: str) -> list[JoinConditionSpec]:
        """Conditions oriented so their left side belongs to ``table``.

        For self-edges both orientations are returned (they differ when the
        condition is asymmetric).
        """
        if self.is_self_edge:
            oriented = []
            for cond in self.conditions:
                oriented.append(cond)
                flipped = cond.flipped()
                if flipped != cond:
                    oriented.append(flipped)
            return oriented
        if table == self.table_a:
            return list(self.conditions)
        if table == self.table_b:
            return [cond.flipped() for cond in self.conditions]
        raise SchemaError(f"{table!r} is not an endpoint of this edge")


class SchemaGraph:
    """The space of permissible joins over a database schema."""

    def __init__(self, tables: list[str] | None = None):
        self._tables: set[str] = set(tables or [])
        self._edges: list[SchemaEdge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_database(
        cls,
        db: Database,
        include_self_edges: bool = False,
    ) -> "SchemaGraph":
        """Seed a schema graph from the database's foreign keys.

        Each FK ``R.cols → S.ref_cols`` becomes an edge R—S whose single
        condition equates the column lists pairwise.  ``include_self_edges``
        additionally adds, for every many-to-many mapping table with a
        composite key, a self-join on its leading key column (the paper's
        ``lineup_player`` pattern for "entities sharing a group").
        """
        graph = cls(tables=db.table_names)
        for fk in db.foreign_keys:
            graph.add_edge(
                fk.table,
                fk.ref_table,
                [tuple(zip(fk.columns, fk.ref_columns))],
            )
        if include_self_edges:
            for name in db.table_names:
                schema = db.table(name).schema
                if len(schema.primary_key) >= 2:
                    lead = schema.primary_key[0]
                    graph.add_edge(name, name, [[(lead, lead)]])
        return graph

    def add_table(self, table: str) -> None:
        self._tables.add(table)

    def add_edge(
        self,
        table_a: str,
        table_b: str,
        conditions: list,
    ) -> SchemaEdge:
        """Add an edge; ``conditions`` is a list of pair-lists.

        If an edge between the two tables already exists the conditions are
        merged into it (the schema graph has at most one edge per table
        pair; multiple *conditions* live on that edge, per Definition 2).
        """
        self._tables.add(table_a)
        self._tables.add(table_b)
        specs = tuple(
            JoinConditionSpec(tuple((str(a), str(b)) for a, b in pairs))
            for pairs in conditions
        )
        for index, edge in enumerate(self._edges):
            if {edge.table_a, edge.table_b} == {table_a, table_b}:
                if edge.table_a == table_a:
                    merged = edge.conditions + specs
                else:
                    merged = edge.conditions + tuple(s.flipped() for s in specs)
                new_edge = SchemaEdge(edge.table_a, edge.table_b, merged)
                self._edges[index] = new_edge
                return new_edge
        edge = SchemaEdge(table_a, table_b, specs)
        self._edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tables(self) -> list[str]:
        return sorted(self._tables)

    @property
    def edges(self) -> list[SchemaEdge]:
        return list(self._edges)

    def edges_of(self, table: str) -> list[SchemaEdge]:
        """All edges with ``table`` as an endpoint."""
        return [
            e for e in self._edges if table in (e.table_a, e.table_b)
        ]

    def num_conditions(self) -> int:
        return sum(len(e.conditions) for e in self._edges)

    def __repr__(self) -> str:
        return (
            f"SchemaGraph({len(self._tables)} tables, {len(self._edges)} "
            f"edges, {self.num_conditions()} conditions)"
        )
