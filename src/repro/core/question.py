"""User questions over query results (paper §2.4).

CaJaDE supports *two-point* questions (compare two output tuples t1, t2)
and *single-point* questions (one outlier tuple t versus the rest of the
output).  Tuples are described by their group-by output values, e.g.
``{"season_name": "2015-16"}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..db.provenance import ProvenanceTable


@dataclass(frozen=True)
class ComparisonQuestion:
    """Why does output tuple t1 differ from output tuple t2?

    ``primary`` and ``secondary`` map group-by output names to values and
    must each identify exactly one output tuple.  Explanations are
    asymmetric: swapping the two tuples may change the top-k (paper §2.4).
    """

    primary: dict[str, Any]
    secondary: dict[str, Any]

    def resolve(self, pt: ProvenanceTable) -> "ResolvedQuestion":
        key1 = pt.group_key_for(self.primary)
        key2 = pt.group_key_for(self.secondary)
        if key1 == key2:
            raise ValueError("the two question tuples are the same output")
        return ResolvedQuestion(
            question=self,
            key1=key1,
            key2=key2,
            row_ids1=pt.row_ids_of(key1),
            row_ids2=pt.row_ids_of(key2),
        )

    def describe(self) -> str:
        return f"why {self.primary} compared to {self.secondary}?"


@dataclass(frozen=True)
class OutlierQuestion:
    """Why is output tuple t surprising, versus the rest of the output?

    Implemented as the paper prescribes: t is treated as t1, and all other
    output tuples together form t2 (false positives sum over
    PT(Q, D) \\ PT(Q, D, t)).
    """

    target: dict[str, Any]

    def resolve(self, pt: ProvenanceTable) -> "ResolvedQuestion":
        key = pt.group_key_for(self.target)
        return ResolvedQuestion(
            question=self,
            key1=key,
            key2=None,
            row_ids1=pt.row_ids_of(key),
            row_ids2=pt.row_ids_excluding(key),
        )

    def describe(self) -> str:
        return f"why {self.target} (vs the rest of the output)?"


@dataclass(frozen=True)
class ResolvedQuestion:
    """A question bound to provenance row ids of its output tuples.

    ``row_ids1``/``row_ids2`` index into the provenance table's synthetic
    ``__pt_row_id`` column; they are the universes over which Definition 7
    counts coverage.
    """

    question: ComparisonQuestion | OutlierQuestion
    key1: tuple[Any, ...]
    key2: tuple[Any, ...] | None
    row_ids1: np.ndarray
    row_ids2: np.ndarray

    @property
    def is_two_point(self) -> bool:
        return isinstance(self.question, ComparisonQuestion)

    def label_for_key(self, primary_is_t1: bool) -> str:
        if isinstance(self.question, ComparisonQuestion):
            source = (
                self.question.primary if primary_is_t1 else self.question.secondary
            )
            return ", ".join(f"{k}={v}" for k, v in source.items())
        if primary_is_t1:
            return ", ".join(f"{k}={v}" for k, v in self.question.target.items())
        return "rest of output"
