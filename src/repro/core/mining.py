"""Pattern mining over one APT — Algorithm 1 (MineAPT).

Phases, matching the paper's step names used in timing breakdowns:

1. *Sampling for F1*: build the (λF1-samp) sampled quality evaluator.
2. *Feature Selection*: §3.1 clustering + random-forest relevance.
3. *Gen. Pat. Cand.*: §3.2 LCA candidates over categorical attributes.
4. *F-score Calc.*: evaluate candidates, pickTopK (k_cat) by recall.
5. *Refine Patterns*: §3.4 numeric refinement with recall-monotonicity
   pruning (Proposition 3.1) and the λattrNum cap.
6. Final top-k with §3.5 diversity reranking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .apt import AugmentedProvenanceTable
from .attribute_filter import FilteredAttributes, filter_attributes
from .config import CajadeConfig
from .diversity import select_diverse_top_k
from .lca import lca_candidates, lca_candidates_codes, pick_top_candidates
from .pattern import Pattern
from .quality import QualityEvaluator, QualityStats
from .question import ResolvedQuestion
from .refinement import RefinementGenerator
from .timing import (
    F_SCORE_CALC,
    FEATURE_SELECTION,
    GEN_PATTERN_CANDIDATES,
    REFINE_PATTERNS,
    SAMPLING_FOR_F1,
    StepTimer,
)

# Keep more than top_k candidates around so the diversity reranking has
# genuine alternatives to choose from.
_CANDIDATE_POOL_FACTOR = 5


@dataclass
class MinedPattern:
    """One scored pattern: (Φ, primary tuple choice, sampled stats)."""

    pattern: Pattern
    primary: int
    stats: QualityStats

    @property
    def f_score(self) -> float:
        return self.stats.f_score

    def sort_key(self) -> tuple:
        return (-self.f_score, self.pattern.describe(), self.primary)


@dataclass
class MiningResult:
    """Output of MineAPT for one join graph."""

    patterns: list[MinedPattern]
    evaluator: QualityEvaluator
    filtered: FilteredAttributes
    candidates_examined: int


def mine_apt(
    apt: AugmentedProvenanceTable,
    question: ResolvedQuestion,
    config: CajadeConfig,
    rng: np.random.Generator,
    timer: StepTimer | None = None,
) -> MiningResult:
    """Run Algorithm 1 on one materialized APT."""
    timer = timer or StepTimer()

    # Candidate generation (feature selection, LCA, numeric fragment
    # boundaries) always sees the full APT so λF1-samp only affects the
    # *estimates* of pattern quality, not the candidate space itself —
    # otherwise sampled and exact runs would enumerate different
    # thresholds and the paper's Fig 10f NDCG comparison would be
    # meaningless.
    kernel_kwargs = dict(
        use_kernel=config.use_kernel,
        kernel_cache_mb=config.kernel_cache_mb,
        verify_kernel=config.kernel_verify,
    )
    full_evaluator = QualityEvaluator(
        apt, question.row_ids1, question.row_ids2, sample_rate=1.0, rng=rng,
        **kernel_kwargs,
    )
    if config.f1_sample_rate >= 1.0:
        evaluator = full_evaluator
    else:
        with timer.step(SAMPLING_FOR_F1):
            evaluator = QualityEvaluator(
                apt,
                question.row_ids1,
                question.row_ids2,
                sample_rate=config.f1_sample_rate,
                rng=rng,
                encoding_source=full_evaluator,
                **kernel_kwargs,
            )

    if config.use_feature_selection:
        with timer.step(FEATURE_SELECTION):
            filtered = filter_attributes(
                apt, full_evaluator, config, rng, timer=timer
            )
    else:
        # The paper's "w/o feature selection" arm reports N/A for this
        # step, so the passthrough is not timed under its label.
        filtered = filter_attributes(
            apt, full_evaluator, config, rng, timer=timer
        )

    with timer.step(GEN_PATTERN_CANDIDATES):
        # Code-based LCA (§3.2 on int32 dictionary codes) whenever the
        # kernel can encode every categorical candidate attribute; the
        # object-based reference path otherwise.  Both consume the rng
        # identically and yield the same deduplicated pattern set, so
        # the choice never changes ranked output.  Dtypes are probed
        # without gathering so a late-materialized APT's object columns
        # stay unmaterialized on the code path.
        columns = full_evaluator.columns()
        kernel = full_evaluator.kernel if config.use_code_lca else None
        if kernel is not None and all(
            kernel.match_codes(attr) is not None
            for attr in filtered.categorical
            if attr in columns and columns.dtype_of(attr) == object
        ):
            candidates = lca_candidates_codes(
                kernel, filtered.categorical, config, rng, timer=timer
            )
        else:
            candidates = lca_candidates(
                columns, filtered.categorical, config, rng, timer=timer
            )

    with timer.step(F_SCORE_CALC):
        recall_cache: dict[Pattern, tuple[int, int]] = {}

        def best_recall(pattern: Pattern) -> float:
            cov = evaluator.coverage_counts(pattern)
            recall_cache[pattern] = cov
            r1 = evaluator.stats_from_counts(*cov, primary=1).recall
            r2 = evaluator.stats_from_counts(*cov, primary=2).recall
            return max(r1, r2)

        threshold = config.recall_threshold if config.use_recall_pruning else 0.0
        todo_list = pick_top_candidates(
            candidates, best_recall, config.k_cat, threshold
        )

    pool: list[MinedPattern] = []
    pool_cap = max(config.top_k * _CANDIDATE_POOL_FACTOR, 25)
    # The all-* pattern (the LCA of two rows that agree nowhere) seeds
    # numeric-only refinements; it is refined but never reported itself.
    todo_list = [Pattern()] + todo_list
    # Each frontier entry carries its parent pattern: a child's mask is
    # parent_mask & predicate_mask when the parent's mask is still
    # resident in the kernel's LRU (full evaluation otherwise) — the
    # result is byte-identical either way.
    todo: deque[tuple[Pattern, Pattern | None]] = deque(
        (pattern, None) for pattern in todo_list
    )
    seen: set[Pattern] = set(todo_list)
    done: set[Pattern] = set()
    refiner = RefinementGenerator(
        full_evaluator.columns(), filtered.numeric, config
    )
    examined = 0

    while todo:
        pattern, parent = todo.popleft()
        done.add(pattern)
        examined += 1
        with timer.step(F_SCORE_CALC):
            coverage = recall_cache.pop(pattern, None)
            if coverage is None:
                coverage = evaluator.coverage_counts(pattern, parent=parent)
        refinable = not config.use_recall_pruning
        for primary in (1, 2):
            stats = evaluator.stats_from_counts(*coverage, primary=primary)
            if (
                config.use_recall_pruning
                and stats.recall > config.recall_threshold
            ):
                refinable = True
            if pattern.size > 0 and stats.f_score > 0.0 and (
                not config.use_recall_pruning
                or stats.recall > config.recall_threshold
            ):
                pool.append(
                    MinedPattern(pattern=pattern, primary=primary, stats=stats)
                )
        if len(pool) > pool_cap * 3:
            pool.sort(key=MinedPattern.sort_key)
            del pool[pool_cap:]
        if not refinable:
            # Proposition 3.1: every refinement has recall <= this
            # pattern's recall, so none can pass the threshold either.
            continue
        with timer.step(REFINE_PATTERNS):
            for refined in refiner.refinements(pattern):
                if refined not in seen and refined not in done:
                    seen.add(refined)
                    todo.append((refined, pattern))

    pool.sort(key=MinedPattern.sort_key)
    del pool[pool_cap:]

    for counter, value in evaluator.kernel_counters().items():
        timer.count(counter, value)

    if config.use_diversity:
        triples = [(mp.pattern, mp.f_score, mp) for mp in pool]
        chosen = select_diverse_top_k(triples, config.top_k)
        top = [payload for _, _, payload in chosen]
    else:
        top = pool[: config.top_k]

    return MiningResult(
        patterns=top,
        evaluator=evaluator,
        filtered=filtered,
        candidates_examined=examined,
    )
