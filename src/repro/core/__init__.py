"""CaJaDE core: join-graph based rich explanations for query answers."""

from .apt import APTAttribute, AugmentedProvenanceTable, materialize_apt
from .attribute_filter import FilteredAttributes, filter_attributes
from .config import CajadeConfig
from .diversity import dissimilarity, match_score, select_diverse_top_k, wscore
from .enumeration import (
    EnumerationStats,
    enumerate_join_graphs,
    estimate_apt_cost,
    extend_join_graph,
    has_pk_connectivity,
    is_valid,
)
from .explainer import CajadeExplainer, Explanation, ExplanationResult
from .join_discovery import (
    JoinCandidate,
    augment_schema_graph,
    discover_join_candidates,
)
from .join_graph import PT_LABEL, JGEdge, JGNode, JoinGraph
from .kernel import MaskCache, MiningKernel
from .lca import lca_candidates, lca_candidates_codes, pick_top_candidates
from .mining import MinedPattern, MiningResult, mine_apt
from .narrative import explanation_sentence, pattern_phrase, predicate_phrase
from .pattern import OP_EQ, OP_GE, OP_LE, Pattern, PatternPredicate
from .quality import PatternSupport, QualityEvaluator, QualityStats
from .question import ComparisonQuestion, OutlierQuestion, ResolvedQuestion
from .refinement import RefinementGenerator, numeric_fragments
from .schema_graph import JoinConditionSpec, SchemaEdge, SchemaGraph
from .timing import StepTimer

__all__ = [
    "APTAttribute",
    "AugmentedProvenanceTable",
    "CajadeConfig",
    "CajadeExplainer",
    "ComparisonQuestion",
    "dissimilarity",
    "enumerate_join_graphs",
    "EnumerationStats",
    "estimate_apt_cost",
    "Explanation",
    "ExplanationResult",
    "explanation_sentence",
    "extend_join_graph",
    "filter_attributes",
    "FilteredAttributes",
    "has_pk_connectivity",
    "is_valid",
    "JGEdge",
    "JGNode",
    "JoinCandidate",
    "augment_schema_graph",
    "discover_join_candidates",
    "JoinConditionSpec",
    "JoinGraph",
    "lca_candidates",
    "lca_candidates_codes",
    "MaskCache",
    "match_score",
    "MiningKernel",
    "materialize_apt",
    "mine_apt",
    "MinedPattern",
    "MiningResult",
    "numeric_fragments",
    "OP_EQ",
    "OP_GE",
    "OP_LE",
    "OutlierQuestion",
    "Pattern",
    "pattern_phrase",
    "predicate_phrase",
    "PatternPredicate",
    "PatternSupport",
    "pick_top_candidates",
    "PT_LABEL",
    "QualityEvaluator",
    "QualityStats",
    "RefinementGenerator",
    "ResolvedQuestion",
    "SchemaEdge",
    "SchemaGraph",
    "select_diverse_top_k",
    "StepTimer",
    "wscore",
]
