"""Dictionary-encoded columnar scoring kernel for pattern mining.

MineAPT's profile weight sits in scoring: every candidate pattern used to
re-scan the APT through ``PatternPredicate.matches_array`` (a per-row
Python list comprehension for object-dtype columns) and coverage counting
finished with a Python dict loop over covered provenance ids.  The kernel
removes both costs for one APT:

- **Dictionary encoding** — each categorical (object-dtype) column is
  encoded once into an ``int32`` code array; every later equality test is
  one vectorized integer comparison.  NULL cells (``None`` or a float
  NaN) get the sentinel code ``-1`` which never equals a looked-up value
  code, preserving the "NULLs never match" semantics exactly.  The same
  pass also produces a *varclus-compatible* encoding (NULLs keep their
  first-occurrence code) so feature selection can reuse it for the
  random-forest feature matrix.
- **Dense coverage slots** — ``__pt_row_id`` values are mapped once to
  dense slot indices with side-1 slots in ``[0, m1)`` and side-2 slots in
  ``[m1, m1+m2)``.  Coverage of a match mask is then a boolean scatter
  into a reusable slot buffer plus two contiguous non-zero counts — no
  ``np.unique``, no dict lookups.
- **Memoized masks with incremental reuse** — single-predicate masks and
  multi-predicate pattern masks live in one byte-bounded LRU shared
  across all candidates of the APT.  A refinement Φ' = Φ ∧ p is evaluated
  as ``mask(Φ) & mask(p)`` when Φ's mask is still resident (the
  delta-evaluation structure of the refinement lattice; cf. Berkholz et
  al.'s FO+MOD delta views), falling back to a full AND over memoized
  single-predicate masks on eviction.  Boolean AND is associative, so the
  incremental and full paths produce byte-identical masks.

The kernel never consumes randomness and never reorders rows, so kernel
on/off is byte-identical by construction; :mod:`tests.test_core_kernel`
asserts this against the retained naive reference implementation in
:class:`repro.core.quality.QualityEvaluator`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Mapping

import numpy as np

from ..db.relation import encode_object_column
from .pattern import OP_EQ, OP_LE, Pattern, PatternPredicate
from .timing import (
    KERNEL_FULL_EVALS,
    KERNEL_INCREMENTAL_EVALS,
    KERNEL_MASK_EVICTIONS,
    KERNEL_MASK_HITS,
    KERNEL_MASK_MISSES,
)


def _is_null_value(value: Any) -> bool:
    """NULL under pattern-match semantics: ``None`` or a float NaN."""
    return value is None or (isinstance(value, float) and value != value)


def _first_occurrence_renumber(codes: np.ndarray) -> np.ndarray:
    """Relabel int codes to first-occurrence numbering, vectorized.

    Produces exactly the codes the per-row dict loop assigns when it
    walks the rows in order: the first distinct code seen becomes 0, the
    next 1, and so on.  Used to turn gathered *base-table* codes into
    the varclus-compatible ml encoding without touching object values.
    """
    if len(codes) == 0:
        return codes.astype(np.int32, copy=False)
    _, first_idx, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(order), dtype=np.int32)
    rank[order] = np.arange(len(order), dtype=np.int32)
    return rank[inverse]


class MaskCache:
    """A byte-bounded LRU of boolean mask arrays.

    Entries whose own size exceeds the budget are simply not stored (the
    caller recomputes on demand), so a tiny budget degrades to
    recompute-always instead of thrashing.
    """

    def __init__(self, budget_bytes: int):
        self._budget = max(0, int(budget_bytes))
        self._entries: "OrderedDict[Any, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_in_use(self) -> int:
        return self._bytes

    def get(self, key: Any) -> np.ndarray | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Any, mask: np.ndarray) -> None:
        if self._budget <= 0 or mask.nbytes > self._budget:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = mask
        self._bytes += mask.nbytes
        while self._bytes > self._budget:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1


class MiningKernel:
    """Vectorized pattern evaluation over one (possibly sampled) APT.

    Parameters:
        columns: row-aligned minable columns of the evaluator's universe.
        row_slot: per-row dense slot index of the row's provenance id
            (side-1 slots first, then side-2 — see module docstring).
        m1: number of side-1 slots.
        m2: number of side-2 slots.
        cache_mb: byte budget of the shared mask LRU; 0 keeps the kernel
            vectorized but disables memoization (and therefore
            incremental reuse).
        encodings: optional per-attribute ``(ColumnEncoding, rows)``
            pairs supplying *table-level* dictionary codes gathered
            through the APT's index vectors (``rows`` maps kernel rows
            into the encoding's code arrays; ``None`` = identity).
            Attributes covered here skip the per-row encoding pass
            entirely — their code arrays are int32 gathers of codes
            built once at load time, and the value → code dictionary is
            shared with the base table.  Masks, coverage and LCA
            candidates are byte-identical to per-APT re-encoding (codes
            are a bijection of the same value grouping with the same
            ``-1`` NULL sentinel); the varclus ml encoding is recovered
            exactly by a vectorized first-occurrence renumbering.
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        row_slot: np.ndarray,
        m1: int,
        m2: int,
        cache_mb: float = 64.0,
        encodings: Mapping[str, tuple[Any, np.ndarray | None]] | None = None,
    ):
        if cache_mb < 0:
            raise ValueError("cache_mb must be >= 0 (0 disables memoization)")
        self._row_slot = np.asarray(row_slot, dtype=np.int64)
        self._m1 = int(m1)
        self._m2 = int(m2)
        self._num_rows = len(self._row_slot)
        self._covered = np.zeros(self._m1 + self._m2, dtype=bool)
        self._ones = np.ones(self._num_rows, dtype=bool)
        self._cache = MaskCache(int(cache_mb * 1024 * 1024))

        # Encoded storage: match codes (-1 = NULL, never matches), the
        # value -> code dictionary, ml codes (varclus first-occurrence
        # compatible — base-table-numbered for gathered attributes, see
        # ``_gathered``), float64 numeric views with validity masks, and
        # a fallback of raw columns whose values defeated dict encoding.
        self._codes: dict[str, np.ndarray] = {}
        self._dicts: dict[str, dict[Any, int]] = {}
        self._ml_codes: dict[str, np.ndarray] = {}
        self._none_code: dict[str, int] = {}
        self._counting_codes: dict[str, np.ndarray] = {}
        self._numeric: dict[str, np.ndarray] = {}
        self._numeric_valid: dict[str, np.ndarray | None] = {}
        self._fallback: dict[str, np.ndarray] = {}
        self._code_values_cache: dict[str, list] = {}
        # Attributes whose codes were gathered from a table-level
        # encoding: their _ml_codes carry base numbering and are
        # renumbered (lazily, vectorized) when varclus asks.
        self._gathered: set[str] = set()
        self._ml_renumbered: dict[str, np.ndarray] = {}
        self._derived = False

        self.mask_hits = 0
        self.mask_misses = 0
        self.incremental_evals = 0
        self.full_evals = 0

        encodings = encodings or {}
        for name in columns.keys():
            source = encodings.get(name)
            if source is not None:
                self._gather_categorical(name, *source)
                continue
            arr = columns[name]
            if arr.dtype != object:
                values = arr.astype(np.float64, copy=False)
                self._numeric[name] = values
                invalid = np.isnan(values)
                self._numeric_valid[name] = (
                    ~invalid if invalid.any() else None
                )
                continue
            self._encode_categorical(name, arr)

    def _gather_categorical(
        self, name: str, encoding: Any, rows: np.ndarray | None
    ) -> None:
        """Adopt a table-level encoding gathered through index vectors.

        Subset gathers route through ``ColumnEncoding.gather_match`` and
        copy only the gathered slice, so a disk-backed (memmap) code
        array never forces a whole-table match-code temporary just to
        serve one APT's rows.
        """
        if rows is None:
            base_codes = np.asarray(encoding.codes)
            match_codes = np.asarray(encoding.match_codes)
        else:
            base_codes = np.asarray(encoding.codes[rows])
            match_codes = encoding.gather_match(rows)
        self._codes[name] = match_codes
        self._ml_codes[name] = base_codes
        self._dicts[name] = encoding.code_of
        none_code = encoding.none_code
        if none_code is not None:
            self._none_code[name] = none_code
        self._gathered.add(name)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @classmethod
    def derived(
        cls,
        source: "MiningKernel",
        selector: np.ndarray,
        row_slot: np.ndarray,
        m1: int,
        m2: int,
        cache_mb: float = 64.0,
    ) -> "MiningKernel":
        """A kernel over a row-subset of ``source``'s universe.

        ``selector`` is a boolean mask over ``source``'s rows.  Encoding
        dictionaries are shared and code arrays sliced, so a λF1-samp
        evaluator skips the per-row encoding pass entirely (its rows are
        a subset of the exact evaluator's — same APT, smaller sampled
        provenance universe).
        """
        self = cls.__new__(cls)
        self._row_slot = np.asarray(row_slot, dtype=np.int64)
        self._m1 = int(m1)
        self._m2 = int(m2)
        self._num_rows = len(self._row_slot)
        self._covered = np.zeros(self._m1 + self._m2, dtype=bool)
        self._ones = np.ones(self._num_rows, dtype=bool)
        self._cache = MaskCache(int(cache_mb * 1024 * 1024))
        self._codes = {k: v[selector] for k, v in source._codes.items()}
        self._dicts = dict(source._dicts)
        self._ml_codes = {
            k: v[selector] for k, v in source._ml_codes.items()
        }
        self._none_code = dict(source._none_code)
        self._counting_codes = {}
        self._numeric = {k: v[selector] for k, v in source._numeric.items()}
        self._numeric_valid = {
            k: (None if v is None else v[selector])
            for k, v in source._numeric_valid.items()
        }
        self._fallback = {
            k: v[selector] for k, v in source._fallback.items()
        }
        self._code_values_cache = {}
        self._gathered = set(source._gathered)
        self._ml_renumbered = {}
        self._derived = True
        self.mask_hits = 0
        self.mask_misses = 0
        self.incremental_evals = 0
        self.full_evals = 0
        return self

    def _encode_categorical(self, name: str, arr: np.ndarray) -> None:
        encoding = encode_object_column(arr)
        if encoding is None:
            # Unhashable values (not produced by the db layer, but the
            # kernel must not be less general than ``matches_array``):
            # keep the raw column and evaluate such predicates naively.
            self._fallback[name] = arr
            return
        self._dicts[name] = encoding.code_of
        self._codes[name] = encoding.match_codes
        self._ml_codes[name] = encoding.codes
        none_code = encoding.none_code
        if none_code is not None:
            self._none_code[name] = none_code

    def match_codes(self, attr: str) -> np.ndarray | None:
        """``int32`` codes of a categorical column; ``-1`` marks NULLs.
        ``None`` when the attribute is numeric or not dict-encodable."""
        return self._codes.get(attr)

    def ml_codes(self, attr: str) -> np.ndarray | None:
        """First-occurrence label encoding including NULLs — exactly what
        :func:`repro.ml.varclus.encode_columns` produces for the column,
        so feature selection can skip re-encoding.

        Attributes gathered from a table-level encoding carry base-table
        numbering internally; they are renumbered here (vectorized,
        memoized) to the first-occurrence ordering the per-row dict loop
        would assign — code *numbering* matters for the random-forest
        feature matrix, unlike for matching or counting.

        Returns ``None`` on :meth:`derived` kernels: their sliced codes
        are no longer first-occurrence-numbered over the subset, so
        callers must fall back to encoding from the raw column."""
        if self._derived:
            return None
        codes = self._ml_codes.get(attr)
        if codes is None or attr not in self._gathered:
            return codes
        renumbered = self._ml_renumbered.get(attr)
        if renumbered is None:
            renumbered = _first_occurrence_renumber(codes)
            self._ml_renumbered[attr] = renumbered
        return renumbered

    def code_values(self, attr: str) -> list | None:
        """The inverse dictionary of a categorical column: a list whose
        index ``code`` holds the value that encoded to ``code``.

        Decoded values are the exact objects stored at first occurrence
        (NULL cells included — each distinct NaN object keeps its own
        code, matching Python identity-then-equality dict semantics), so
        patterns reconstructed from codes compare equal to patterns
        built from the raw column.  ``None`` when the attribute is
        numeric or not dict-encodable.
        """
        code_of = self._dicts.get(attr)
        if code_of is None:
            return None
        cached = self._code_values_cache.get(attr)
        if cached is not None:
            return cached
        inverse: list = [None] * len(code_of)
        for value, code in code_of.items():
            inverse[code] = value
        self._code_values_cache[attr] = inverse
        return inverse

    def code_matrix(
        self,
        attrs: list[str],
        kind: str = "match",
        indices: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """A ``(num_rows, len(attrs))`` int32 code-matrix view.

        ``kind="match"`` stacks :meth:`match_codes` (NULLs are ``-1``
        and never agree — the pairwise-LCA encoding); ``kind="counting"``
        stacks :meth:`counting_codes` (only ``None`` is ``-1``; NaN
        cells keep their identity-distinct codes — the singleton-LCA
        encoding, mirroring the object path's ``is not None`` test).
        ``indices`` selects a row subset *before* stacking, so a small
        λpat-samp sample over a large APT never materializes the full
        matrix.  Returns ``None`` if any attribute lacks dictionary
        codes, so callers can fall back to the object-based path
        wholesale.
        """
        getter = self.match_codes if kind == "match" else self.counting_codes
        columns = []
        for attr in attrs:
            codes = getter(attr)
            if codes is None:
                return None
            columns.append(codes if indices is None else codes[indices])
        if not columns:
            rows = self._num_rows if indices is None else len(indices)
            return np.empty((rows, 0), dtype=np.int32)
        return np.stack(columns, axis=1)

    def counting_codes(self, attr: str) -> np.ndarray | None:
        """Codes for value-frequency counting: ``None`` cells are ``-1``
        but NaN cells keep their codes — mirroring the historical
        semantics of the feature-selection recall bound, which skipped
        only ``None``."""
        codes = self._counting_codes.get(attr)
        if codes is not None:
            return codes
        ml = self._ml_codes.get(attr)
        if ml is None:
            return None
        none_code = self._none_code.get(attr)
        if none_code is None:
            codes = ml
        else:
            codes = ml.copy()
            codes[ml == none_code] = -1
        self._counting_codes[attr] = codes
        return codes

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def predicate_mask(self, attr: str, op: str, value: Any) -> np.ndarray:
        """The (memoized) boolean match mask of one predicate.

        Byte-identical to ``PatternPredicate(attr, op, value)
        .matches_array(columns[attr])``; treat the result as immutable.
        """
        key = (attr, op, value)
        cached = self._cache.get(key)
        if cached is not None:
            self.mask_hits += 1
            return cached
        self.mask_misses += 1
        mask = self._compute_predicate_mask(attr, op, value)
        self._cache.put(key, mask)
        return mask

    def _compute_predicate_mask(
        self, attr: str, op: str, value: Any
    ) -> np.ndarray:
        codes = self._codes.get(attr)
        if codes is not None:
            if op != OP_EQ:
                raise ValueError(
                    f"operator {op} not allowed on categorical "
                    f"attribute {attr}"
                )
            if _is_null_value(value):
                # NULL compares equal to nothing (and NaN != NaN).
                return np.zeros(self._num_rows, dtype=bool)
            code = self._dicts[attr].get(value)
            if code is None:
                return np.zeros(self._num_rows, dtype=bool)
            return codes == np.int32(code)
        if attr in self._fallback:
            return PatternPredicate(attr, op, value).matches_array(
                self._fallback[attr]
            )
        if attr not in self._numeric:
            raise KeyError(
                f"pattern attribute {attr!r} missing from the kernel's "
                "columns"
            )
        numeric = self._numeric[attr]
        with np.errstate(invalid="ignore"):
            if op == OP_EQ:
                mask = numeric == float(value)
            elif op == OP_LE:
                mask = numeric <= float(value)
            else:
                mask = numeric >= float(value)
        valid = self._numeric_valid[attr]
        if valid is not None:
            mask = mask & valid
        return mask

    def _resident_mask(self, pattern: Pattern) -> np.ndarray | None:
        """A pattern's mask if obtainable without a full evaluation."""
        predicates = pattern.predicates
        if not predicates:
            return self._ones
        if len(predicates) == 1:
            p = predicates[0]
            return self.predicate_mask(p.attribute, p.op, p.value)
        cached = self._cache.get(pattern)
        if cached is not None:
            self.mask_hits += 1
        else:
            self.mask_misses += 1
        return cached

    def pattern_mask(
        self, pattern: Pattern, parent: Pattern | None = None
    ) -> np.ndarray:
        """The conjunction mask of ``pattern``; treat as immutable.

        When ``parent`` is a one-predicate-smaller ancestor whose mask is
        still resident, the result is computed incrementally as
        ``parent_mask & predicate_mask`` (identical output, one AND).
        """
        predicates = pattern.predicates
        if len(predicates) <= 1:
            return self._resident_mask(pattern)
        cached = self._cache.get(pattern)
        if cached is not None:
            self.mask_hits += 1
            return cached
        self.mask_misses += 1

        mask: np.ndarray | None = None
        if parent is not None:
            delta = pattern.delta_from(parent)
            if delta is not None:
                parent_mask = self._resident_mask(parent)
                if parent_mask is not None:
                    part = self.predicate_mask(
                        delta.attribute, delta.op, delta.value
                    )
                    mask = parent_mask & part
                    self.incremental_evals += 1
        if mask is None:
            self.full_evals += 1
            aliased = True  # mask still aliases a cached predicate mask
            for predicate in predicates:
                part = self.predicate_mask(
                    predicate.attribute, predicate.op, predicate.value
                )
                if mask is None:
                    mask = part
                else:
                    # `mask & part` (not `&=`): cached arrays are shared.
                    mask = mask & part
                    aliased = False
                if not mask.any():
                    # All-False stays all-False under further ANDs, so
                    # the early exit still yields the exact full mask.
                    break
            if aliased:
                # Early exit on the first predicate: copy before caching
                # under the pattern key, or the LRU would account the
                # same array's bytes twice (once per key).
                mask = mask.copy()
        assert mask is not None
        self._cache.put(pattern, mask)
        return mask

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def coverage(
        self, pattern: Pattern, parent: Pattern | None = None
    ) -> tuple[int, int]:
        """Distinct covered provenance rows per side, Definition 7.

        A provenance row is covered iff at least one of its APT rows
        matches — the scatter into dense slots deduplicates fan-out.
        """
        mask = self.pattern_mask(pattern, parent)
        if not mask.any():
            return 0, 0
        covered = self._covered
        covered[:] = False
        covered[self._row_slot[mask]] = True
        cov1 = int(np.count_nonzero(covered[: self._m1]))
        cov2 = int(np.count_nonzero(covered[self._m1 :]))
        return cov1, cov2

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache(self) -> MaskCache:
        return self._cache

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def counters(self) -> dict[str, int]:
        """Canonical StepTimer counter labels -> values."""
        return {
            KERNEL_MASK_HITS: self.mask_hits,
            KERNEL_MASK_MISSES: self.mask_misses,
            KERNEL_INCREMENTAL_EVALS: self.incremental_evals,
            KERNEL_FULL_EVALS: self.full_evals,
            KERNEL_MASK_EVICTIONS: self._cache.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"MiningKernel({self._num_rows} rows, "
            f"{len(self._codes)} encoded + {len(self._numeric)} numeric "
            f"columns, {self._cache.bytes_in_use} cache bytes)"
        )
