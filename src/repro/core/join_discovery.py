"""Join-condition discovery (paper §8 future work).

The paper builds its schema graph from foreign keys plus user-provided
conditions and names automatic *join discovery* (Aurum [18], JOSIE [53])
as the way to "automatically find datasets to be used as context".  This
module implements a lightweight inclusion-dependency profiler in that
spirit: candidate equi-join conditions are column pairs with

- compatible types (numeric↔numeric or text↔text),
- an inclusion coefficient |values(A) ∩ values(B)| / |values(A)| above a
  threshold (how much of A's active domain joins into B),
- enough distinct values on the contained side to be a meaningful key
  (filters out tiny enums like booleans and status flags).

Discovered conditions can be added to a :class:`SchemaGraph` with
:func:`augment_schema_graph`, widening the space of join graphs CaJaDE
explores — exactly the §8 integration.

Caveat: dense integer surrogate keys (0..n ids) satisfy inclusion against
each other spuriously; production join-discovery systems (Aurum, JOSIE)
add name/semantic signals to filter those.  Review candidates before
augmenting the schema graph, or restrict to text columns via
``text_only=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.database import Database
from .schema_graph import SchemaGraph


@dataclass(frozen=True)
class JoinCandidate:
    """A discovered candidate join condition between two columns."""

    table_a: str
    column_a: str
    table_b: str
    column_b: str
    inclusion: float
    """Fraction of table_a's distinct values present in table_b."""

    def describe(self) -> str:
        return (
            f"{self.table_a}.{self.column_a} ⊆ "
            f"{self.table_b}.{self.column_b} "
            f"(inclusion {self.inclusion:.2f})"
        )


def _distinct_values(db: Database, table: str, column: str) -> set:
    values = set()
    for value in db.table(table).column(column):
        if value is None:
            continue
        if isinstance(value, (float, np.floating)) and np.isnan(value):
            continue
        values.add(value)
    return values


def discover_join_candidates(
    db: Database,
    min_inclusion: float = 0.95,
    min_distinct: int = 3,
    max_distinct_values: int = 100_000,
    text_only: bool = False,
) -> list[JoinCandidate]:
    """Profile the database for inclusion-dependency join candidates.

    Returns candidates ordered by descending inclusion coefficient.
    Pairs already covered by a declared foreign key are skipped (they are
    in the schema graph anyway); self-pairs of the same column are
    skipped too.
    """
    declared = set()
    for fk in db.foreign_keys:
        for col, ref_col in zip(fk.columns, fk.ref_columns):
            declared.add((fk.table, col, fk.ref_table, ref_col))
            declared.add((fk.ref_table, ref_col, fk.table, col))

    profiles: list[tuple[str, str, bool, set]] = []
    for table in db.table_names:
        relation = db.table(table)
        for name in relation.column_names:
            is_text = relation.column_type(name).is_categorical
            if text_only and not is_text:
                continue
            values = _distinct_values(db, table, name)
            if not (min_distinct <= len(values) <= max_distinct_values):
                continue
            profiles.append((table, name, is_text, values))

    candidates: list[JoinCandidate] = []
    for i, (ta, ca, text_a, va) in enumerate(profiles):
        for j, (tb, cb, text_b, vb) in enumerate(profiles):
            if i == j or text_a != text_b:
                continue
            if ta == tb and ca == cb:
                continue
            if (ta, ca, tb, cb) in declared:
                continue
            inclusion = len(va & vb) / len(va)
            if inclusion >= min_inclusion:
                candidates.append(
                    JoinCandidate(
                        table_a=ta,
                        column_a=ca,
                        table_b=tb,
                        column_b=cb,
                        inclusion=inclusion,
                    )
                )
    candidates.sort(
        key=lambda c: (-c.inclusion, c.table_a, c.column_a, c.table_b, c.column_b)
    )
    return candidates


def augment_schema_graph(
    graph: SchemaGraph,
    candidates: list[JoinCandidate],
    limit: int | None = None,
) -> int:
    """Add discovered conditions to a schema graph.

    Deduplicates symmetric candidates (A⊆B and B⊆A produce one edge
    condition).  Returns the number of conditions added.
    """
    added = 0
    seen: set[frozenset] = set()
    for candidate in candidates:
        if limit is not None and added >= limit:
            break
        key = frozenset(
            {
                (candidate.table_a, candidate.column_a),
                (candidate.table_b, candidate.column_b),
            }
        )
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(
            candidate.table_a,
            candidate.table_b,
            [[(candidate.column_a, candidate.column_b)]],
        )
        added += 1
    return added
