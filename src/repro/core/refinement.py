"""Numeric refinement of categorical patterns (paper §3.4).

Refinements add one numeric predicate at a time.  Numeric domains are
split into λ#frag fragments; only fragment boundaries serve as thresholds,
with both ``<=`` and ``>=`` comparisons (the paper's example explanations
use both directions, e.g. ``pts >= 23``).  Refinement can only lower
recall (Proposition 3.1), so candidates below λrecall are pruned together
with all of their refinements.
"""

from __future__ import annotations

import numpy as np

from .config import CajadeConfig
from .pattern import OP_GE, OP_LE, Pattern


def numeric_fragments(
    values: np.ndarray, num_fragments: int
) -> list[float]:
    """Fragment boundaries of a numeric column's active domain.

    For λ#frag = k the boundaries are the k quantiles at
    ``linspace(0, 1, k)`` — e.g. min/median/max for k = 3, matching the
    paper's example.  NaNs (NULLs) are ignored; constant or empty columns
    yield no boundaries.
    """
    numeric = values.astype(np.float64, copy=False)
    finite = numeric[~np.isnan(numeric)]
    if len(finite) == 0:
        return []
    if num_fragments == 1:
        candidates = [float(np.median(finite))]
    else:
        qs = np.linspace(0.0, 1.0, num_fragments)
        candidates = [float(v) for v in np.quantile(finite, qs)]
    unique: list[float] = []
    for value in candidates:
        if not unique or value != unique[-1]:
            unique.append(value)
    if len(unique) == 1:
        return []
    return unique


class RefinementGenerator:
    """Enumerates one-step numeric refinements of a pattern.

    Fragment boundaries — and the resulting ``(op, value)`` extension
    list of every attribute — are computed once per APT and reused across
    all patterns, so the BFS inner loop only filters by attribute usage
    and instantiates patterns.
    """

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        numeric_attrs: list[str],
        config: CajadeConfig,
    ):
        self.config = config
        self.numeric_attrs = [a for a in numeric_attrs if a in columns]
        self._numeric_set = frozenset(self.numeric_attrs)
        self._fragments: dict[str, list[float]] = {}
        self._extensions: list[tuple[str, tuple[tuple[str, float], ...]]] = []
        for attr in self.numeric_attrs:
            boundaries = numeric_fragments(
                columns[attr], config.num_fragments
            )
            self._fragments[attr] = boundaries
            if not boundaries:
                continue
            # The lowest boundary with <= matches (almost) nothing beyond
            # the minimum and the highest with >= only the maximum; use
            # every boundary with both operators except the two vacuous
            # extremes (<= max and >= min match everything).
            extensions = tuple(
                (op, boundary)
                for op in (OP_LE, OP_GE)
                for boundary in boundaries
                if not (op == OP_LE and boundary == boundaries[-1])
                and not (op == OP_GE and boundary == boundaries[0])
            )
            if extensions:
                self._extensions.append((attr, extensions))

    def fragments_of(self, attr: str) -> list[float]:
        return list(self._fragments.get(attr, []))

    def refinements(self, pattern: Pattern) -> list[Pattern]:
        """All one-predicate numeric extensions permitted by λattrNum."""
        if (
            pattern.num_numeric_predicates(self._numeric_set)
            >= self.config.max_numeric_predicates
        ):
            return []
        out: list[Pattern] = []
        for attr, extensions in self._extensions:
            if pattern.uses(attr):
                continue
            out.extend(
                pattern.refined(attr, op, boundary)
                for op, boundary in extensions
            )
        return out
