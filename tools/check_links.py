#!/usr/bin/env python
"""Markdown link checker for the repo docs (stdlib only).

Checks every ``[text](target)`` link and ``<http(s)://...>`` autolink
in the given markdown files:

- relative targets must resolve to an existing file or directory
  (anchors are stripped; an anchor into another file is checked against
  that file's headings, with GitHub's ``-1``/``-2`` duplicate-heading
  suffixes);
- same-file ``#anchor`` targets must match a heading slug;
- ``http(s)`` targets are validated syntactically only (CI must not
  depend on third-party uptime).

Exit code 0 when every link resolves, 1 otherwise (each failure is
printed as ``file:line: message``).

Usage:
    python tools/check_links.py README.md ROADMAP.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path
from urllib.parse import urlparse

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)|<(https?://[^>\s]+)>")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def heading_slug(text: str) -> str:
    """GitHub-style anchor slug of a heading line."""
    text = re.sub(r"[`*_]", "", text.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@lru_cache(maxsize=None)
def heading_slugs(path: Path) -> frozenset[str]:
    """All anchor slugs of a file, with GitHub's ``-N`` suffixes for
    duplicate headings (the second ``## Example`` is ``#example-1``)."""
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slug = heading_slug(match.group(1))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            slugs.add(slug if count == 0 else f"{slug}-{count}")
    return frozenset(slugs)


def check_file(path: Path) -> list[str]:
    failures: list[str] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1) or match.group(2)
            problem = check_target(path, target)
            if problem:
                failures.append(f"{path}:{lineno}: {problem}")
    return failures


def check_target(source: Path, target: str) -> str | None:
    parsed = urlparse(target)
    if parsed.scheme in ("http", "https"):
        if not parsed.netloc:
            return f"malformed URL {target!r}"
        return None
    if parsed.scheme:  # mailto:, etc. — out of scope
        return None
    base, _, anchor = target.partition("#")
    if not base:  # same-file anchor
        if anchor and heading_slug(anchor) not in heading_slugs(source):
            return f"anchor #{anchor} not found in {source.name}"
        return None
    resolved = (source.parent / base).resolve()
    if not resolved.exists():
        return f"broken relative link {target!r} -> {resolved}"
    if anchor and resolved.is_file() and resolved.suffix == ".md":
        if heading_slug(anchor) not in heading_slugs(resolved):
            return f"anchor #{anchor} not found in {base}"
    return None


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]")
        return 2
    failures: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            failures.append(f"{name}: file not found")
            continue
        checked += 1
        failures.extend(check_file(path))
    for failure in failures:
        print(failure)
    print(f"checked {checked} file(s): "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
