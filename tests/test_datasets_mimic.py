"""Tests for the synthetic MIMIC dataset generator."""

import pytest

from repro.datasets import generate_mimic, load_mimic


class TestSchema:
    def test_figure6_tables_present(self, mimic_small):
        db, _ = mimic_small
        expected = {
            "admissions", "patients", "patients_admit_info",
            "diagnoses", "procedures", "icustays",
        }
        assert set(db.table_names) == expected

    def test_foreign_keys(self, mimic_small):
        db, _ = mimic_small
        pairs = {(fk.table, fk.ref_table) for fk in db.foreign_keys}
        assert ("admissions", "patients") in pairs
        assert ("icustays", "admissions") in pairs
        assert ("diagnoses", "admissions") in pairs

    def test_fk_integrity(self, mimic_small):
        db, _ = mimic_small
        for fk in db.foreign_keys:
            child = db.table(fk.table)
            parent = db.table(fk.ref_table)
            parent_keys = {
                tuple(parent.column(c)[i] for c in fk.ref_columns)
                for i in range(parent.num_rows)
            }
            for i in range(child.num_rows):
                key = tuple(child.column(c)[i] for c in fk.columns)
                assert key in parent_keys


class TestSignals:
    def death_rates(self, db) -> dict:
        result = db.sql(
            "SELECT insurance, 1.0 * SUM(hospital_expire_flag) / COUNT(*) "
            "AS death_rate FROM admissions GROUP BY insurance"
        )
        return {d["insurance"]: d["death_rate"] for d in result.to_dicts()}

    def test_medicare_death_rate_above_private(self, mimic_small):
        db, _ = mimic_small
        rates = self.death_rates(db)
        assert rates["Medicare"] > rates["Private"] * 1.5

    def test_death_rates_roughly_match_paper(self):
        db = generate_mimic(scale=1.0, seed=3)
        rates = self.death_rates(db)
        assert rates["Medicare"] == pytest.approx(0.14, abs=0.04)
        assert rates["Private"] == pytest.approx(0.06, abs=0.03)

    def test_medicare_patients_older(self, mimic_small):
        db, _ = mimic_small
        result = db.sql(
            "SELECT a.insurance, AVG(pai.age) AS avg_age "
            "FROM admissions a, patients_admit_info pai "
            "WHERE a.hadm_id = pai.hadm_id GROUP BY a.insurance"
        )
        ages = {d["insurance"]: d["avg_age"] for d in result.to_dicts()}
        assert ages["Medicare"] > ages["Private"] + 10

    def test_emergency_skew_for_medicare(self, mimic_small):
        db, _ = mimic_small
        rows = db.sql(
            "SELECT insurance, admission_type, COUNT(*) AS n "
            "FROM admissions GROUP BY insurance, admission_type"
        ).to_dicts()
        def frac(ins):
            total = sum(r["n"] for r in rows if r["insurance"] == ins)
            emer = sum(
                r["n"]
                for r in rows
                if r["insurance"] == ins
                and r["admission_type"] == "EMERGENCY"
            )
            return emer / total
        assert frac("Medicare") > frac("Private")

    def test_icu_los_groups_consistent(self, mimic_small):
        db, _ = mimic_small
        rows = db.sql(
            "SELECT los, los_group FROM icustays"
        ).to_dicts()
        for r in rows:
            if r["los_group"] == "0-1":
                assert r["los"] <= 1.0
            if r["los_group"] == "x>8":
                assert r["los"] > 8.0

    def test_long_stays_get_chapter16_procedures(self, mimic_small):
        db, _ = mimic_small
        rows = db.sql(
            "SELECT a.hospital_stay_length AS stay, p.chapter "
            "FROM admissions a, procedures p WHERE a.hadm_id = p.hadm_id"
        ).to_dicts()
        long_stay = [r for r in rows if r["stay"] > 9]
        if long_stay:
            frac16 = sum(1 for r in long_stay if r["chapter"] == "16") / len(
                long_stay
            )
            assert frac16 > 0.2

    def test_hispanic_catholic_skew(self):
        # Needs a few hundred Hispanic admissions for the skew to show
        # above sampling noise; the tiny shared fixture has ~12.
        db = generate_mimic(scale=0.4, seed=5)
        rows = db.sql(
            "SELECT ethnicity, religion, COUNT(*) AS n "
            "FROM patients_admit_info GROUP BY ethnicity, religion"
        ).to_dicts()

        def catholic_frac(eth):
            total = sum(r["n"] for r in rows if r["ethnicity"] == eth)
            cath = sum(
                r["n"]
                for r in rows
                if r["ethnicity"] == eth and r["religion"] == "Catholic"
            )
            return cath / total if total else 0.0

        assert catholic_frac("Hispanic") > catholic_frac("White")


class TestScaling:
    def test_scale_changes_admissions(self):
        small = generate_mimic(scale=0.05, seed=2)
        larger = generate_mimic(scale=0.1, seed=2)
        assert (
            larger.table("admissions").num_rows
            > small.table("admissions").num_rows
        )

    def test_deterministic(self):
        a = generate_mimic(scale=0.05, seed=8)
        b = generate_mimic(scale=0.05, seed=8)
        assert list(a.table("admissions").iter_rows()) == list(
            b.table("admissions").iter_rows()
        )

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            generate_mimic(scale=-1)

    def test_load_returns_graph(self):
        db, graph = load_mimic(scale=0.05, seed=5)
        assert set(graph.tables) == set(db.table_names)
