"""Unit tests for repro.db.types."""

import math

import numpy as np
import pytest

from repro.db.types import (
    ColumnType,
    coerce_value,
    infer_column_type,
    is_null,
    parse_literal,
)


class TestColumnType:
    def test_int_is_numeric(self):
        assert ColumnType.INT.is_numeric
        assert not ColumnType.INT.is_categorical

    def test_float_is_numeric(self):
        assert ColumnType.FLOAT.is_numeric

    def test_text_is_categorical(self):
        assert ColumnType.TEXT.is_categorical
        assert not ColumnType.TEXT.is_numeric

    def test_numpy_dtypes(self):
        assert ColumnType.INT.numpy_dtype() == np.dtype(np.int64)
        assert ColumnType.FLOAT.numpy_dtype() == np.dtype(np.float64)
        assert ColumnType.TEXT.numpy_dtype() == np.dtype(object)


class TestInferColumnType:
    def test_all_ints(self):
        assert infer_column_type([1, 2, 3]) == ColumnType.INT

    def test_mixed_int_float(self):
        assert infer_column_type([1, 2.5]) == ColumnType.FLOAT

    def test_any_string_forces_text(self):
        assert infer_column_type([1, "x", 3]) == ColumnType.TEXT

    def test_nones_ignored(self):
        assert infer_column_type([None, 4, None]) == ColumnType.INT

    def test_all_null_defaults_to_text(self):
        assert infer_column_type([None, None]) == ColumnType.TEXT

    def test_nan_ignored_like_null(self):
        assert infer_column_type([float("nan"), 3]) == ColumnType.INT

    def test_bools_count_as_ints(self):
        assert infer_column_type([True, False]) == ColumnType.INT


class TestIsNull:
    def test_none(self):
        assert is_null(None)

    def test_nan(self):
        assert is_null(float("nan"))
        assert is_null(np.nan)

    def test_regular_values(self):
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(1.5)


class TestCoerceValue:
    def test_int(self):
        assert coerce_value("42", ColumnType.INT) == 42

    def test_float(self):
        assert coerce_value(3, ColumnType.FLOAT) == 3.0

    def test_text(self):
        assert coerce_value(42, ColumnType.TEXT) == "42"

    def test_null_passthrough(self):
        assert coerce_value(None, ColumnType.INT) is None

    def test_nan_becomes_none(self):
        assert coerce_value(float("nan"), ColumnType.FLOAT) is None

    def test_bad_int_raises(self):
        with pytest.raises(ValueError):
            coerce_value("abc", ColumnType.INT)


class TestParseLiteral:
    def test_int(self):
        assert parse_literal("17") == 17

    def test_float(self):
        assert parse_literal("17.5") == 17.5

    def test_text(self):
        assert parse_literal("GSW") == "GSW"

    def test_empty_is_null(self):
        assert parse_literal("") is None
        assert parse_literal("  ") is None

    def test_null_token(self):
        assert parse_literal("NULL") is None
        assert parse_literal("null") is None

    def test_whitespace_stripped(self):
        assert parse_literal(" 5 ") == 5
