"""Unit tests for the CAPE counterbalance baseline."""

import numpy as np
import pytest

from repro.baselines import CapeExplainer
from repro.db import ColumnType, Relation, TableSchema


def result_relation(values: list[float]) -> Relation:
    schema = TableSchema.build(
        "result", {"season": ColumnType.TEXT, "win": ColumnType.FLOAT}
    )
    rows = [(f"s{i:02d}", v) for i, v in enumerate(values)]
    return Relation.from_rows(schema, rows)


class TestCape:
    def test_high_outlier_gets_low_counterbalances(self):
        # Flat trend with one high spike and one low dip.
        values = [10, 10, 30, 10, 10, 2, 10]
        cape = CapeExplainer(result_relation(values), "season", "win")
        out = cape.explain("s02", "high")
        assert out.is_outlier
        assert out.counterbalances
        assert out.counterbalances[0].group_value == "s05"
        assert all(c.residual < 0 for c in out.counterbalances)

    def test_low_direction(self):
        values = [10, 10, 30, 10, 10, 2, 10]
        cape = CapeExplainer(result_relation(values), "season", "win")
        out = cape.explain("s05", "low")
        assert out.is_outlier
        assert out.counterbalances[0].group_value == "s02"

    def test_non_outlier_flagged(self):
        values = [10, 11, 12, 13, 14, 15]
        cape = CapeExplainer(result_relation(values), "season", "win")
        out = cape.explain("s03", "high")
        assert not out.is_outlier

    def test_trend_slope_estimated(self):
        values = [10, 12, 14, 16, 18, 20]
        cape = CapeExplainer(result_relation(values), "season", "win")
        assert cape.slope == pytest.approx(2.0)

    def test_k_limits_output(self):
        values = [10, 30, 5, 6, 7, 8, 9]
        cape = CapeExplainer(result_relation(values), "season", "win")
        out = cape.explain("s01", "high", k=2)
        assert len(out.counterbalances) <= 2

    def test_unknown_group_raises(self):
        cape = CapeExplainer(result_relation([1, 2, 3]), "season", "win")
        with pytest.raises(KeyError):
            cape.explain("nope", "high")

    def test_bad_direction_raises(self):
        cape = CapeExplainer(result_relation([1, 2, 3]), "season", "win")
        with pytest.raises(ValueError):
            cape.explain("s00", "sideways")

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            CapeExplainer(result_relation([1, 2]), "season", "win")

    def test_describe(self):
        values = [10, 10, 30, 10, 10]
        cape = CapeExplainer(result_relation(values), "season", "win")
        out = cape.explain("s02", "high")
        text = out.counterbalances[0].describe()
        assert "residual" in text

    def test_gsw_wins_question(self, nba_small):
        """The paper's UQcape1 on the generated NBA data."""
        db, _ = nba_small
        result = db.sql(
            "SELECT COUNT(*) AS win, s.season_name FROM team t, game g, "
            "season s WHERE t.team_id = g.winner_id AND "
            "g.season_id = s.season_id AND t.team = 'GSW' "
            "GROUP BY s.season_name"
        )
        cape = CapeExplainer(result, "season_name", "win")
        out = cape.explain("2015-16", "high", k=3)
        # Counterbalances are the low-win seasons.
        lows = {c.group_value for c in out.counterbalances}
        assert lows <= {
            "2009-10", "2010-11", "2011-12", "2012-13", "2013-14",
            "2017-18", "2018-19",
        }
